"""Synchronous in-process driver for a FRESQUE deployment.

Wires dispatcher, computing nodes, checking node, merger and cloud together
and delivers their messages through a FIFO queue until quiescence.  This
driver is the *functional* reference — it executes exactly the logic the
threaded runtime and the discrete-event simulator run, without concurrency
or timing, so tests can assert end-to-end correctness deterministically.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from dataclasses import dataclass

from repro.client.query_client import ClientResult, QueryClient
from repro.cloud.node import FresqueCloud
from repro.core.checking import CheckingNode
from repro.core.computing_node import ComputingNode
from repro.core.config import FresqueConfig
from repro.core.dispatcher import Dispatcher
from repro.core.merger import Merger
from repro.core.messages import (
    AlSnapshot,
    AnnouncePublication,
    BufferFlush,
    CnPublishing,
    CreditGrant,
    DoneMsg,
    MembershipMsg,
    MergedPublication,
    NewPublication,
    NodeDown,
    Pair,
    PairBatch,
    PublishingMsg,
    RawBatch,
    RawData,
    RemovedRecord,
    TemplateMsg,
    ToCloudBatch,
    ToCloudPair,
)
from repro.crypto.cipher import RecordCipher
from repro.records.record import EncryptedRecord
from repro.telemetry.clock import WALL_CLOCK
from repro.telemetry.context import coalesce


class CloudAdapter:
    """Adapts the protocol messages onto :class:`FresqueCloud` calls.

    Receipt arrival is signalled through a :class:`threading.Condition`
    so a driver thread can block in :meth:`wait_for_receipt` instead of
    busy-polling :attr:`receipts`.
    """

    def __init__(self, cloud: FresqueCloud):
        self.cloud = cloud
        self.receipts = []
        self._receipts_cond = threading.Condition()

    def handle(self, message) -> list[tuple[str, object]]:
        """Apply one protocol message to the cloud."""
        if isinstance(message, AnnouncePublication):
            self.cloud.announce_publication(message.publication)
        elif isinstance(message, ToCloudPair):
            self.cloud.receive_pair(
                message.publication, message.leaf_offset, message.encrypted
            )
        elif isinstance(message, (ToCloudBatch, BufferFlush)):
            self.cloud.receive_pairs(message.publication, message.pairs)
        elif isinstance(message, MergedPublication):
            self._deliver_receipt(
                self.cloud.receive_publication(
                    message.publication, message.tree, message.overflow
                )
            )
        else:
            raise TypeError(f"cloud cannot handle {type(message).__name__}")
        return []

    def _deliver_receipt(self, receipt) -> None:
        with self._receipts_cond:
            self.receipts.append(receipt)
            self._receipts_cond.notify_all()

    def receipt_for(self, publication: int):
        """The matching receipt of ``publication``, or ``None``."""
        with self._receipts_cond:
            return next(
                (r for r in self.receipts if r.publication == publication),
                None,
            )

    def wait_for_receipt(self, publication: int, timeout: float):
        """Block until ``publication``'s receipt arrives (or ``timeout``
        elapses — returns ``None``).  Wakes promptly on delivery; no
        polling."""
        deadline = WALL_CLOCK.now() + timeout
        with self._receipts_cond:
            while True:
                receipt = next(
                    (
                        r
                        for r in self.receipts
                        if r.publication == publication
                    ),
                    None,
                )
                if receipt is not None:
                    return receipt
                remaining = deadline - WALL_CLOCK.now()
                if remaining <= 0:
                    return None
                self._receipts_cond.wait(remaining)


class CollectorAwareQueryTarget:
    """Query facade covering the cloud *and* the trusted collector.

    Section 5.3(c): records matching a query that currently sit at the
    cloud, in the randomer buffer, or at the merger (removed records) are
    all returned to the client.  This facade extends the cloud's result
    with the collector-resident ciphertexts.
    """

    def __init__(self, cloud: FresqueCloud, checking, merger):
        self._cloud = cloud
        self._checking = checking
        self._merger = merger

    def query(self, query):
        from repro.cloud.query_engine import QueryResult

        base = self._cloud.query(query)
        domain = self._cloud.domain
        overlapping = set(domain.leaves_overlapping(query.low, query.high))
        extra = [
            encrypted
            for _, leaf_offset, encrypted in (
                self._checking.buffered_pairs() + self._merger.pending_removed()
            )
            if leaf_offset in overlapping
        ]
        return QueryResult(
            indexed=base.indexed,
            overflow=base.overflow,
            unindexed=base.unindexed + tuple(extra),
            nodes_visited=base.nodes_visited,
        )


@dataclass(frozen=True)
class PublicationSummary:
    """Statistics of one completed FRESQUE publication."""

    publication: int
    real_records: int
    dummies: int
    removed: int
    published_pairs: int


class FresqueSystem:
    """A complete single-process FRESQUE deployment.

    Parameters
    ----------
    config:
        Deployment configuration.
    cipher:
        Record cipher shared between collector and client.
    seed:
        Seed for all randomness (noise, randomer, dummy values).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` shared by every
        component; when omitted telemetry is disabled (null facade).
    cloud:
        Pre-built cloud node to drive instead of a fresh in-memory
        :class:`FresqueCloud` — e.g. one backed by a durable
        :class:`~repro.cloud.filestore.FileBackedStore`, or the
        surviving cloud of a crashed collector during recovery.
    """

    def __init__(
        self,
        config: FresqueConfig,
        cipher: RecordCipher,
        seed: int | None = None,
        telemetry=None,
        cloud: FresqueCloud | None = None,
    ):
        self.config = config
        self.cipher = cipher
        self.telemetry = coalesce(telemetry)
        rng = random.Random(seed)
        self.dispatcher = Dispatcher(
            config, rng=random.Random(rng.random()), telemetry=telemetry
        )
        self.computing_nodes = [
            ComputingNode(i, config, cipher, telemetry=telemetry)
            for i in range(config.num_computing_nodes)
        ]
        # Routing map keyed by node id: elastic membership can admit ids
        # past the initial fleet and replace crashed incarnations.
        self._nodes: dict[int, ComputingNode] = {
            node.node_id: node for node in self.computing_nodes
        }
        self.checking = CheckingNode(
            config, rng=random.Random(rng.random()), telemetry=telemetry
        )
        self.merger = Merger(
            config, cipher, rng=random.Random(rng.random()), telemetry=telemetry
        )
        self.cloud = (
            cloud
            if cloud is not None
            else FresqueCloud(config.domain, telemetry=telemetry)
        )
        self._cloud_adapter = CloudAdapter(self.cloud)
        self._queue: deque[tuple[str, object]] = deque()
        self._started = False

    # ------------------------------------------------------------------
    # Message routing
    # ------------------------------------------------------------------

    def _deliver(self, destination: str, message) -> list[tuple[str, object]]:
        if destination.startswith("cn-"):
            node = self._nodes[int(destination[3:])]
            if isinstance(message, RawBatch):
                return node.on_raw_batch(message)
            if isinstance(message, RawData):
                return node.on_raw(message)
            if isinstance(message, PublishingMsg):
                return node.on_publishing(message.publication)
            if isinstance(message, DoneMsg):
                return node.on_done(message)
        elif destination == "checking":
            if isinstance(message, PairBatch):
                return self.checking.on_pair_batch(message)
            if isinstance(message, NewPublication):
                return self.checking.on_new_publication(message)
            if isinstance(message, Pair):
                return self.checking.on_pair(message)
            if isinstance(message, PublishingMsg):
                return self.checking.on_publishing(message)
            if isinstance(message, CnPublishing):
                return self.checking.on_cn_publishing(message)
            if isinstance(message, NodeDown):
                return self.checking.on_node_down(message)
            if isinstance(message, MembershipMsg):
                return self.checking.on_membership(message)
        elif destination == "merger":
            if isinstance(message, TemplateMsg):
                return self.merger.on_template(message)
            if isinstance(message, RemovedRecord):
                return self.merger.on_removed(message)
            if isinstance(message, AlSnapshot):
                return self.merger.on_al(message)
        elif destination == "cloud":
            return self._cloud_adapter.handle(message)
        elif destination == "dispatcher":
            if isinstance(message, CreditGrant):
                return self.dispatcher.on_credit(message)
        raise TypeError(
            f"no handler for {type(message).__name__} at {destination!r}"
        )

    def _pump(self, outbox: list[tuple[str, object]]) -> None:
        self._queue.extend(outbox)
        while self._queue:
            destination, message = self._queue.popleft()
            self._queue.extend(self._deliver(destination, message))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Open the first publication."""
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        self._pump(self.dispatcher.start_publication())

    def ingest(self, line: str) -> None:
        """Feed one raw line into the current publication.

        With ``config.batch_size > 1`` the line may sit in the
        dispatcher's in-flight batch until a flush triggers (size, delay
        or interval close); :meth:`flush_ingest` forces it through.
        """
        if not self._started:
            raise RuntimeError("call start() first")
        self._pump(self.dispatcher.on_raw(line))

    def ingest_batch(self, lines: list[str]) -> None:
        """Feed many raw lines into the current publication, in order."""
        if not self._started:
            raise RuntimeError("call start() first")
        on_raw = self.dispatcher.on_raw
        pump = self._pump
        for line in lines:
            pump(on_raw(line))

    def offer(self, line: str) -> bool:
        """Admission-controlled :meth:`ingest`; False means shed.

        With ``config.ingest_queue_limit`` set, the dispatcher's
        :class:`~repro.core.flow.SheddingPolicy` may reject the line (or
        evict an older unflushed record to admit it) instead of letting
        the backlog grow without bound.
        """
        if not self._started:
            raise RuntimeError("call start() first")
        outbox = self.dispatcher.offer_raw(line)
        if outbox is None:
            return False
        self._pump(outbox)
        return True

    def flush_ingest(self) -> None:
        """Flush the dispatcher's in-flight batch through the pipeline."""
        self._pump(self.dispatcher.flush_batch())

    def poll_flush(self) -> None:
        """Fire the delay flush if the in-flight batch outlived its bound.

        The synchronous counterpart of the runtime clusters'
        :class:`~repro.runtime.poller.FlushPoller`: drivers with idle
        periods call this periodically so a trickle below the batch size
        never stalls past ``max_batch_delay``.
        """
        self._pump(self.dispatcher.flush_due())

    def run_publication(self, lines: list[str]) -> PublicationSummary:
        """Ingest ``lines``, interleave the scheduled dummies uniformly,
        close the publication and open the next one.

        Returns a summary of what was published.
        """
        if not self._started:
            self.start()
        publication = self.dispatcher.publication
        dummies_before = self.checking.dummies_passed
        removed_before = self.checking.records_removed
        total = max(1, len(lines))
        for position, line in enumerate(lines):
            self._pump(
                self.dispatcher.due_dummies((position + 1) / (total + 1))
            )
            self.ingest(line)
        self._pump(self.dispatcher.end_publication())
        self._pump(self.dispatcher.start_publication())
        receipt = next(
            r
            for r in self._cloud_adapter.receipts
            if r.publication == publication
        )
        return PublicationSummary(
            publication=publication,
            real_records=len(lines),
            dummies=self.checking.dummies_passed - dummies_before,
            removed=self.checking.records_removed - removed_before,
            published_pairs=receipt.records_matched,
        )

    def pump_dummies(self, fraction: float) -> None:
        """Release every dummy scheduled before ``fraction`` of the
        interval (the chaos harness's dummy-pacing hook; matches the
        :meth:`run_publication` loop)."""
        self._pump(self.dispatcher.due_dummies(fraction))

    def close_publication(self) -> None:
        """Close the current publication and open the next one."""
        self._pump(self.dispatcher.end_publication())
        self._pump(self.dispatcher.start_publication())

    def settle(self, publication: int, timeout: float = 120.0) -> None:
        """No-op: the synchronous driver is always quiescent."""

    # ------------------------------------------------------------------
    # Elastic membership (docs/PROTOCOL.md)
    # ------------------------------------------------------------------

    def admit_node(self, node_id: int | None = None) -> int:
        """Admit a new computing node into the live fleet.

        Flushes the in-flight batch under the old epoch, rebuilds the
        dispatch rotation, and broadcasts the membership snapshot.
        Returns the admitted node's id.
        """
        node_id, outbox = self.dispatcher.admit_node(node_id)
        node = ComputingNode(
            node_id, self.config, self.cipher, telemetry=self.telemetry
        )
        self.computing_nodes.append(node)
        self._nodes[node_id] = node
        self._pump(outbox)
        return node_id

    def retire_node(self, node_id: int) -> None:
        """Gracefully drain ``node_id`` out of the dispatch rotation.

        The node stays reachable until the current publication closes
        (it still reports *publishing* and receives *done*); it simply
        receives no further batches.
        """
        self._pump(self.dispatcher.retire_node(node_id))

    def crash_node(self, node_id: int) -> None:
        """Simulate a computing-node crash.

        The node object is discarded (its held state dies with it) and
        the dispatcher takes it out of rotation; the checking node hears
        :class:`NodeDown` and stops waiting for its reports.  The
        synchronous driver pumps to quiescence between ingests, so no
        in-flight batch is lost — matching the concurrent runtimes,
        which redispatch the backlog to the survivors.
        """
        self._pump(self.dispatcher.mark_node_down(node_id))

    def rejoin_node(self, node_id: int) -> None:
        """Bring a crashed node back as a fresh incarnation.

        The replacement starts from empty state under the new epoch;
        the membership broadcast raises its join-epoch floor so any
        straggler output of the dead incarnation is discarded.
        """
        node = ComputingNode(
            node_id, self.config, self.cipher, telemetry=self.telemetry
        )
        self._nodes[node_id] = node
        self.computing_nodes = [
            existing if existing.node_id != node_id else node
            for existing in self.computing_nodes
        ]
        self._pump(self.dispatcher.rejoin_node(node_id))

    def make_client(self, schema=None) -> QueryClient:
        """A query client bound to this deployment.

        Queries cover the cloud plus the collector-resident records (the
        randomer buffer and the merger's removed records, Section 5.3(c)).
        """
        return QueryClient(
            schema if schema is not None else self.config.schema,
            self.cipher,
            CollectorAwareQueryTarget(self.cloud, self.checking, self.merger),
        )

    def query(self, low: float, high: float) -> ClientResult:
        """Convenience end-to-end range query."""
        return self.make_client().range_query(low, high)

    @property
    def unpublished_pairs(self) -> list[tuple[int, EncryptedRecord]]:
        """Pairs of the in-flight publication already at the cloud."""
        return self.cloud.engine.in_flight_pairs()
