"""Adaptive flow control for the ingestion path (docs/BATCHING.md).

Three cooperating mechanisms keep ingestion fast under bursty,
sustained traffic without letting latency or memory run away:

``AdaptiveBatchController``
    AIMD (additive-increase / multiplicative-decrease) over the
    dispatcher's *effective* batch size and flush delay.  Sustained
    size-triggered flushes probe the batch size upward while measured
    throughput holds; a measured throughput regression (the batch-256
    cliff in BENCH_batching.json) halves it.  Consecutive delay-
    triggered flushes — the trickle regime — halve the flush delay so
    sparse traffic publishes promptly, and busy windows grow the delay
    back toward the configured ceiling.

``CreditGate``
    Credit-based backpressure between the checking node and the
    dispatcher.  Flushing a batch consumes one credit per record; the
    checking node grants credits back as it processes each
    :class:`~repro.core.messages.PairBatch`
    (:class:`~repro.core.messages.CreditGrant`).  When credits run dry
    the dispatcher parks flushed batches, in order, in a deferred queue
    instead of releasing them — bounding the records in flight toward
    the trusted checking node.  The publication-close drain releases
    everything, so credit loss (a dropped grant, records rejected as
    malformed at a computing node) can defer work but never lose it.

``AdmissionController`` / ``SheddingPolicy``
    Bounded ingest queue with load shedding at the source.  When the
    dispatcher's backlog (in-flight batch plus credit-deferred records)
    exceeds ``config.ingest_queue_limit``, the policy either rejects
    the arriving record (``drop-newest``) or evicts the oldest
    not-yet-flushed record (``drop-oldest``), counting every shed.

The :class:`FlowController` bundles the three behind the two knobs the
dispatcher reads — ``batch_size`` and ``max_batch_delay`` — and
participates in ``snapshot()``/``restore()`` so crash recovery is
equivalent for the controller state too.  With
``config.adaptive_batching`` false the controller is *pinned*: it
always returns the static configuration values, never consults the
clock, and the dispatcher behaves exactly as before this module
existed (the batch-equivalence harness pins it this way).

The credit protocol is unsupported on :class:`ProcessCluster` (its
address book has no ``dispatcher`` route); every other runtime routes
grants back to the parent/driver.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.core.messages import RawBatch
from repro.records.codec import decode_record, encode_record
from repro.telemetry.clock import WALL_CLOCK
from repro.telemetry.context import coalesce

#: Flush triggers, as reported by the ``dispatcher_batch_flush_total``
#: counter's ``reason`` label (re-exported by ``repro.core.dispatcher``).
FLUSH_SIZE, FLUSH_DELAY, FLUSH_CLOSE, FLUSH_MANUAL = (
    "size",
    "delay",
    "close",
    "manual",
)

#: Admission decisions (:meth:`AdmissionController.decide`).
ADMIT, SHED_NEWEST, SHED_OLDEST = "admit", "shed-newest", "shed-oldest"

DROP_NEWEST = "drop-newest"
DROP_OLDEST = "drop-oldest"


class SheddingPolicy:
    """What to shed, and when, at the ingest source.

    Parameters
    ----------
    queue_limit:
        Records the dispatcher may hold back before shedding; 0
        disables admission control entirely.
    mode:
        ``"drop-newest"`` rejects the arriving record; ``"drop-oldest"``
        evicts the oldest unflushed record to admit the new one.
    """

    def __init__(self, queue_limit: int = 0, mode: str = DROP_NEWEST):
        if queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {queue_limit}")
        if mode not in (DROP_NEWEST, DROP_OLDEST):
            raise ValueError(f"unknown shed mode {mode!r}")
        self.queue_limit = queue_limit
        self.mode = mode

    @property
    def enabled(self) -> bool:
        """Whether admission control is active at all."""
        return self.queue_limit > 0


class AdmissionController:
    """Bounded ingest queue: admit, or shed per the policy.

    The controller only *decides*; the dispatcher owns the backlog and
    performs the eviction, then reports it back via
    :meth:`record_shed` so the shed counters live in one place.
    """

    def __init__(self, policy: SheddingPolicy, telemetry=None):
        self.policy = policy
        self.admitted = 0
        self.shed = {DROP_NEWEST: 0, DROP_OLDEST: 0}
        tel = coalesce(telemetry)
        self._admitted_counter = tel.counter("dispatcher_admitted_total")
        self._shed_counters = {
            mode: tel.counter("dispatcher_shed_total", mode=mode)
            for mode in (DROP_NEWEST, DROP_OLDEST)
        }

    def decide(self, backlog: int) -> str:
        """``ADMIT``, ``SHED_NEWEST`` or ``SHED_OLDEST`` for one arrival."""
        if not self.policy.enabled or backlog < self.policy.queue_limit:
            self.admitted += 1
            self._admitted_counter.inc()
            return ADMIT
        if self.policy.mode == DROP_OLDEST:
            return SHED_OLDEST
        return SHED_NEWEST

    def record_shed(self, mode: str) -> None:
        """Count one shed record (called by the dispatcher post-eviction)."""
        self.shed[mode] += 1
        self._shed_counters[mode].inc()

    @property
    def shed_total(self) -> int:
        """Records shed under either mode since construction/restore."""
        return sum(self.shed.values())


class AdaptiveBatchController:
    """AIMD over the dispatcher's batch size and flush delay.

    Measurement: only *size*-triggered flushes advance the throughput
    estimate — the interval between two consecutive size flushes spans
    one whole batch's pipeline cost under load, while delay/close
    flushes mark idle gaps and reset the interval.  Once a window
    accumulates enough records (or flushes), the controller adjusts:

    * trickle regime (delay flushes dominate the window, or a streak of
      consecutive delay flushes): multiplicative decrease of the flush
      delay toward its floor — sparse traffic should not wait the full
      configured delay;
    * throughput regressed below ``(1 - tolerance) ×`` the best
      observed rate: multiplicative decrease of the batch size (this is
      what steps back off the batch-256 cliff), and the remembered best
      decays so the controller keeps re-probing;
    * otherwise: additive increase of the batch size (accelerated while
      the observed queue depth is high) and of the delay, probing for
      more throughput.

    Pinned (``config.adaptive_batching`` false) the controller returns
    the static configuration values and never reads the clock.
    """

    WINDOW_RECORDS = 1024
    WINDOW_FLUSHES = 16
    GROWTH_STEP = 16
    TOLERANCE = 0.10
    BEST_DECAY = 0.7
    DELAY_STREAK = 2

    def __init__(self, config, telemetry=None, clock=None):
        self.pinned = not config.adaptive_batching
        self._min_size = config.min_batch_size
        self._max_size = config.max_batch_size
        self._size = config.batch_size
        self._delay_max = config.max_batch_delay
        self._delay_min = config.max_batch_delay / 16.0
        self._delay = config.max_batch_delay
        self._clock = clock if clock is not None else WALL_CLOCK
        tel = coalesce(telemetry)
        self._size_gauge = tel.gauge("flow_batch_size")
        self._delay_gauge = tel.gauge("flow_batch_delay_seconds")
        self._adjust_counters = {
            direction: tel.counter("flow_adjust_total", direction=direction)
            for direction in ("grow", "shrink", "trickle")
        }
        self._best_rate = 0.0
        self._depth = 0
        self._delay_streak = 0
        self._last_size_flush: float | None = None
        self._win_records = 0
        self._win_flushes = 0
        self._win_delay_flushes = 0
        self._win_seconds = 0.0
        self._publish_knobs()

    @property
    def batch_size(self) -> int:
        """Effective batch size the dispatcher flushes at."""
        return self._size

    @property
    def max_batch_delay(self) -> float:
        """Effective delay bound before a partial batch flushes."""
        return self._delay

    def observe_depth(self, depth: int) -> None:
        """Feed the latest downstream queue depth (inbox/ring gauges)."""
        if self.pinned:
            return
        self._depth = max(0, int(depth))

    def observe_flush(self, reason: str, records: int) -> None:
        """Account one flush; adjust the knobs when a window completes."""
        if self.pinned:
            return
        now = self._clock.now()
        self._win_flushes += 1
        if reason == FLUSH_SIZE:
            self._delay_streak = 0
            if self._last_size_flush is not None:
                self._win_seconds += now - self._last_size_flush
                self._win_records += records
            self._last_size_flush = now
        else:
            # Delay/close/manual flushes break the busy sequence; their
            # inter-flush gaps are idle time, not pipeline cost.
            self._last_size_flush = None
            if reason == FLUSH_DELAY:
                self._win_delay_flushes += 1
                self._delay_streak += 1
                if self._delay_streak >= self.DELAY_STREAK:
                    self._shrink_delay()
        if (
            self._win_records >= self.WINDOW_RECORDS
            or self._win_flushes >= self.WINDOW_FLUSHES
        ):
            self._adjust()

    def _shrink_delay(self) -> None:
        """Trickle reaction: halve the flush delay toward its floor."""
        self._delay = max(self._delay_min, self._delay * 0.5)
        self._adjust_counters["trickle"].inc()
        self._publish_knobs()

    def _adjust(self) -> None:
        """Close one measurement window and apply the AIMD step."""
        records, seconds = self._win_records, self._win_seconds
        flushes, delay_flushes = self._win_flushes, self._win_delay_flushes
        self._win_records = 0
        self._win_flushes = 0
        self._win_delay_flushes = 0
        self._win_seconds = 0.0
        if 2 * delay_flushes >= flushes:
            # Trickle-dominated window: latency matters, size does not.
            self._delay = max(self._delay_min, self._delay * 0.5)
            self._adjust_counters["trickle"].inc()
            self._publish_knobs()
            return
        if seconds <= 0.0 or records == 0:
            return
        rate = records / seconds
        if self._best_rate and rate < self._best_rate * (1 - self.TOLERANCE):
            # Throughput regressed past the sweet spot: back off
            # multiplicatively and decay the remembered best so the
            # controller keeps re-probing instead of chasing a stale
            # optimum.
            self._size = max(self._min_size, self._size // 2)
            self._best_rate *= self.BEST_DECAY
            self._adjust_counters["shrink"].inc()
        else:
            self._best_rate = max(self._best_rate, rate)
            step = self.GROWTH_STEP
            if self._depth > 2 * self._size:
                step *= 4  # deep backlog: probe upward faster
            self._size = min(self._max_size, self._size + step)
            self._delay = min(self._delay_max, self._delay + self._delay_max / 8.0)
            self._adjust_counters["grow"].inc()
        self._publish_knobs()

    def _publish_knobs(self) -> None:
        self._size_gauge.set(float(self._size))
        self._delay_gauge.set(self._delay)

    def snapshot(self) -> dict:
        """JSON-able controller state (crash recovery)."""
        return {
            "size": self._size,
            "delay": self._delay,
            "best_rate": self._best_rate,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`; in-window accounting resets."""
        self._size = int(state["size"])
        self._delay = float(state["delay"])
        self._best_rate = float(state["best_rate"])
        self._depth = 0
        self._delay_streak = 0
        self._last_size_flush = None
        self._win_records = 0
        self._win_flushes = 0
        self._win_delay_flushes = 0
        self._win_seconds = 0.0
        self._publish_knobs()


class CreditGate:
    """Credit-based backpressure from the checking node.

    Thread-safe: grants arrive on runtime threads (the threaded
    cluster's dispatcher inbox, a TCP node worker) while the driver
    thread flushes.  Credits may overdraw by up to one batch — a send
    is allowed whenever *any* credit is available — so a batch larger
    than the window still makes progress.  Grants are capped back to
    the window, so over-generous grants (dummies are granted back too)
    cannot grow the window without bound.
    """

    def __init__(self, window: int, telemetry=None):
        self.window = window
        self.enabled = window > 0
        self._available = window
        self._lock = threading.Lock()
        self._deferred: deque[tuple[str, RawBatch]] = deque()
        tel = coalesce(telemetry)
        self._available_gauge = tel.gauge("flow_credits_available")
        self._deferred_gauge = tel.gauge("flow_deferred_records")
        self._deferrals_counter = tel.counter("flow_deferrals_total")
        if self.enabled:
            self._available_gauge.set(float(window))

    @property
    def available(self) -> int:
        """Credits currently available (may be briefly negative)."""
        with self._lock:
            return self._available

    @property
    def deferred_records(self) -> int:
        """Records parked behind exhausted credits."""
        with self._lock:
            return sum(len(batch.items) for _, batch in self._deferred)

    @property
    def deferred_batches(self) -> int:
        """Batches parked behind exhausted credits."""
        with self._lock:
            return len(self._deferred)

    def try_send(self, destination: str, batch: RawBatch) -> bool:
        """Consume credits for ``batch`` or park it; True means *send now*.

        FIFO: while anything is deferred, new batches defer behind it
        regardless of available credits, so seq order is preserved.
        """
        if not self.enabled:
            return True
        with self._lock:
            if self._deferred or self._available <= 0:
                self._deferred.append((destination, batch))
                self._deferrals_counter.inc()
                self._publish()
                return False
            self._available -= len(batch.items)
            self._publish()
            return True

    def grant(self, records: int) -> list[tuple[str, RawBatch]]:
        """Credit ``records`` back; return deferred batches now sendable."""
        if not self.enabled:
            return []
        released: list[tuple[str, RawBatch]] = []
        with self._lock:
            self._available = min(self.window, self._available + records)
            while self._deferred and self._available > 0:
                destination, batch = self._deferred.popleft()
                self._available -= len(batch.items)
                released.append((destination, batch))
            self._publish()
        return released

    def refund(self, records: int) -> list[tuple[str, RawBatch]]:
        """Return the credits of a batch whose node died before reading it.

        ``try_send`` charged the window when the batch first left; if
        the destination crashed, the checking node may never see the
        batch (dropped inbox frames, torn rings), so the grant that
        would have repaid those credits never arrives.  The redispatch
        path refunds them instead — without this, a dry window after
        ``mark_node_down`` deadlocks the dispatcher (deferred batches
        wait on grants that are never coming).  If the batch *does*
        reach the checking node through a survivor, the extra grant is
        absorbed by the window cap, so refunding can only unstick the
        pipeline, never grow the window.  Returns the deferred batches
        the refund released.
        """
        return self.grant(records)

    def drain(self) -> list[tuple[str, RawBatch]]:
        """Release every deferred batch and refill the window.

        Called at publication close: the close flush must reach the
        computing nodes before the *publishing* broadcast, credits or
        not, and the window resets at the publication boundary (which
        also repairs any credits leaked to malformed records).
        """
        if not self.enabled:
            return []
        with self._lock:
            released = list(self._deferred)
            self._deferred.clear()
            self._available = self.window
            self._publish()
        return released

    def _publish(self) -> None:
        # Callers hold self._lock; gauges are themselves thread-safe.
        self._available_gauge.set(float(self._available))
        self._deferred_gauge.set(
            float(sum(len(batch.items) for _, batch in self._deferred))
        )

    def snapshot(self) -> dict:
        """JSON-able gate state, deferred batches included."""
        with self._lock:
            return {
                "available": self._available,
                "deferred": [
                    [
                        destination,
                        batch.publication,
                        batch.seq,
                        batch.ordinal,
                        [
                            ["line", item]
                            if isinstance(item, str)
                            else ["record", encode_record(item)]
                            for item in batch.items
                        ],
                    ]
                    for destination, batch in self._deferred
                ],
            }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`."""
        with self._lock:
            self._available = int(state["available"])
            self._deferred = deque(
                (
                    destination,
                    RawBatch(
                        publication,
                        tuple(
                            payload
                            if kind == "line"
                            else decode_record(payload)
                            for kind, payload in items
                        ),
                        seq=seq,
                        ordinal=ordinal,
                    ),
                )
                for destination, publication, seq, ordinal, items in state[
                    "deferred"
                ]
            )
            self._publish()


class FlowController:
    """The dispatcher's flow-control bundle (adaptive + credits + shed)."""

    def __init__(self, config, telemetry=None, clock=None):
        self.controller = AdaptiveBatchController(
            config, telemetry=telemetry, clock=clock
        )
        self.credits = CreditGate(config.credit_window, telemetry=telemetry)
        self.admission = AdmissionController(
            SheddingPolicy(config.ingest_queue_limit, config.shed_policy),
            telemetry=telemetry,
        )

    @property
    def batch_size(self) -> int:
        """Effective batch size (static unless adaptive mode is on)."""
        return self.controller.batch_size

    @property
    def max_batch_delay(self) -> float:
        """Effective flush-delay bound."""
        return self.controller.max_batch_delay

    def snapshot(self) -> dict:
        """JSON-able flow state for the dispatcher's snapshot."""
        return {
            "controller": self.controller.snapshot(),
            "credits": self.credits.snapshot(),
        }

    def restore(self, state: dict | None) -> None:
        """Inverse of :meth:`snapshot`; ``None`` (pre-flow snapshot) resets
        nothing — construction defaults already match the config."""
        if state is None:
            return
        self.controller.restore(state["controller"])
        self.credits.restore(state["credits"])
