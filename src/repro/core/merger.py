"""The merger (Section 5.3).

Runs independently of the ingestion path — this is what makes FRESQUE's
publication *asynchronous*.  Per publication it receives:

1. the index template (noise plan) at interval start;
2. removed records from the checker, as negative noise is consumed;
3. the final AL snapshot at interval end — the trigger for the merging job:
   combine template noise with AL into the complete secure index, seal the
   removed records into fixed-size overflow arrays (padded with encrypted
   dummies, randomly ordered), and ship everything to the cloud under the
   publication number.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import FresqueConfig
from repro.core.messages import (
    AlSnapshot,
    MergedPublication,
    RemovedRecord,
    TemplateMsg,
)
from repro.crypto.cipher import RecordCipher, padding_nonce
from repro.index.overflow import OverflowArray
from repro.index.perturb import NoisePlan
from repro.index.template import IndexTemplate, merge_template_and_counts
from repro.records.record import EncryptedRecord
from repro.records.codec import (
    decode_encrypted,
    decode_plan,
    encode_encrypted,
    encode_plan,
)
from repro.records.serialize import DummyRecordSerializer
from repro.telemetry.context import coalesce


@dataclass
class _MergeState:
    """Per-publication material accumulated before the merge job."""

    plan: NoisePlan
    removed: dict[int, list[EncryptedRecord]] = field(default_factory=dict)


@dataclass(frozen=True)
class MergeReport:
    """What one merge job did (inputs to the cost model)."""

    publication: int
    index_nodes: int
    removed_records: int
    overflow_capacity: int
    padding_encrypts: int


class Merger:
    """Publishing-task worker: index assembly and overflow arrays.

    Parameters
    ----------
    config:
        Deployment configuration.
    cipher:
        Record cipher, needed to encrypt overflow-array padding dummies.
    rng:
        Seeded randomness for padding values and shuffles.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; times the
        ``merge`` stage per publication.
    """

    def __init__(
        self,
        config: FresqueConfig,
        cipher: RecordCipher,
        rng: random.Random | None = None,
        telemetry=None,
    ):
        self.config = config
        self.cipher = cipher
        self._rng = rng if rng is not None else random.Random()
        self._dummy_serializer = DummyRecordSerializer(config.schema)
        self._states: dict[int, _MergeState] = {}
        self._early_removed: dict[int, list[RemovedRecord]] = {}
        self.reports: list[MergeReport] = []
        self._tel = coalesce(telemetry)
        self._padding_counter = self._tel.counter(
            "merger_padding_encrypts_total"
        )
        self._removed_counter = self._tel.counter(
            "merger_removed_records_total"
        )

    def pending_removed(self) -> list[tuple[int, int, EncryptedRecord]]:
        """Removed records held for unfinished publications.

        Query processing must cover them (Section 5.3(c)).  Returns
        ``(publication, leaf offset, encrypted record)`` triples.
        """
        held = []
        for publication, state in self._states.items():
            for leaf_offset, records in state.removed.items():
                for record in records:
                    held.append((publication, leaf_offset, record))
        return held

    def on_template(self, message: TemplateMsg) -> list[tuple[str, object]]:
        """Store the publication's template until the AL arrives."""
        self._states[message.publication] = _MergeState(plan=message.plan)
        for early in self._early_removed.pop(message.publication, ()):
            self.on_removed(early)
        return []

    def on_removed(self, message: RemovedRecord) -> list[tuple[str, object]]:
        """Buffer one removed record for its leaf's overflow array."""
        state = self._states.get(message.publication)
        if state is None:
            self._early_removed.setdefault(message.publication, []).append(
                message
            )
            return []
        state.removed.setdefault(message.leaf_offset, []).append(
            message.encrypted
        )
        return []

    def snapshot(self) -> dict:
        """JSON-able snapshot of per-publication merge material.

        Captures each unfinished publication's template plan and the
        removed records buffered for its overflow arrays, plus the
        early-arrival buffer.
        """

        def _encode_removed(message: RemovedRecord) -> dict:
            return {
                "leaf": message.leaf_offset,
                "enc": encode_encrypted(message.encrypted),
            }

        return {
            "publications": {
                str(publication): {
                    "plan": encode_plan(state.plan),
                    "removed": {
                        str(leaf): [
                            encode_encrypted(record) for record in records
                        ]
                        for leaf, records in state.removed.items()
                    },
                }
                for publication, state in self._states.items()
            },
            "early_removed": {
                str(publication): [
                    _encode_removed(message) for message in messages
                ]
                for publication, messages in self._early_removed.items()
            },
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` (crash recovery)."""
        self._states = {}
        for key, saved in state["publications"].items():
            merge_state = _MergeState(plan=decode_plan(saved["plan"]))
            merge_state.removed = {
                int(leaf): [
                    decode_encrypted(payload) for payload in records
                ]
                for leaf, records in saved["removed"].items()
            }
            self._states[int(key)] = merge_state
        self._early_removed = {
            int(key): [
                RemovedRecord(
                    int(key),
                    payload["leaf"],
                    decode_encrypted(payload["enc"]),
                )
                for payload in messages
            ]
            for key, messages in state["early_removed"].items()
        }

    def _encrypted_dummy(
        self, leaf_offset: int, publication: int, counter: int
    ):
        low, high = self.config.domain.leaf_range(leaf_offset)
        value = low if high <= low else low + self._rng.random() * (high - low)
        plaintext = self._dummy_serializer.serialize(value)
        if self.config.deterministic_ivs:
            # Keyed on (publication, padding index): the merge job seals
            # leaves in a fixed order, so the counter sequence — and with
            # it every padding IV — is identical in every runtime.
            ciphertext = self.cipher.encrypt_seeded(
                plaintext, padding_nonce(publication, counter)
            )
        else:
            ciphertext = self.cipher.encrypt(plaintext)
        return EncryptedRecord(
            leaf_offset=None,
            ciphertext=ciphertext,
            publication=publication,
        )

    def on_al(self, message: AlSnapshot) -> list[tuple[str, object]]:
        """The merge job: build the secure index and overflow arrays."""
        start = self._tel.now()
        state = self._states.pop(message.publication, None)
        if state is None:
            raise KeyError(
                f"AL for unknown publication {message.publication}"
            )
        template = IndexTemplate(
            self.config.domain, fanout=self.config.fanout, plan=state.plan
        )
        tree = merge_template_and_counts(template, list(message.al))

        capacity = self.config.overflow_capacity
        padding_encrypts = 0
        removed_total = 0
        overflow: dict[int, OverflowArray] = {}
        for offset in range(self.config.domain.num_leaves):
            array = OverflowArray(offset, capacity=capacity)
            for record in state.removed.get(offset, ())[:capacity]:
                array.add_removed(record)
                removed_total += 1

            def padding(offset=offset):
                nonlocal padding_encrypts
                counter = padding_encrypts
                padding_encrypts += 1
                return self._encrypted_dummy(
                    offset, message.publication, counter
                )

            array.seal(padding, rng=self._rng)
            overflow[offset] = array

        self.reports.append(
            MergeReport(
                publication=message.publication,
                index_nodes=tree.num_nodes,
                removed_records=removed_total,
                overflow_capacity=capacity * self.config.domain.num_leaves,
                padding_encrypts=padding_encrypts,
            )
        )
        self._padding_counter.inc(padding_encrypts)
        self._removed_counter.inc(removed_total)
        self._tel.observe_stage("merge", message.publication, start)
        return [
            (
                "cloud",
                MergedPublication(
                    publication=message.publication,
                    tree=tree,
                    overflow=overflow,
                ),
            )
        ]
