"""The randomer (Section 5.2).

A fixed-size buffer that *mixes* real and dummy records so an informed
online attacker — who knows the time distribution of real arrivals — cannot
tell dummy insertions or real-record removals from the stream the cloud
observes.  Behaviour:

* every arriving pair is buffered;
* once the buffer exceeds its capacity, one *uniformly random* resident is
  evicted and released downstream (the trigger function);
* at publishing time the whole buffer is shuffled and flushed.

The capacity must exceed the publication's dummy count with high
probability while not depending on the actual draw — it is computed from
the inverse Laplace CDF in :class:`~repro.core.config.FresqueConfig`.
"""

from __future__ import annotations

import random

from repro.core.messages import Pair


class Randomer:
    """Fixed-size mixing buffer with uniform random eviction.

    Parameters
    ----------
    capacity:
        Buffer size ``S`` (``α · Σ s_i`` in the paper).
    rng:
        Randomness for evictions and the final shuffle.
    """

    def __init__(self, capacity: int, rng: random.Random | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._rng = rng if rng is not None else random.Random()
        self._buffer: list[Pair] = []
        self.released = 0

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def residents(self) -> tuple[Pair, ...]:
        """Pairs currently buffered (trusted-side view, for query serving)."""
        return tuple(self._buffer)

    @property
    def is_full(self) -> bool:
        """Whether the next insert will trigger an eviction."""
        return len(self._buffer) >= self.capacity

    def insert(self, pair: Pair) -> Pair | None:
        """Buffer ``pair``; return the evicted resident if the buffer was full.

        Eviction is uniform over the buffer (including the new arrival),
        implemented as an O(1) swap-pop.
        """
        self._buffer.append(pair)
        if len(self._buffer) <= self.capacity:
            return None
        victim_index = self._rng.randrange(len(self._buffer))
        last = len(self._buffer) - 1
        self._buffer[victim_index], self._buffer[last] = (
            self._buffer[last],
            self._buffer[victim_index],
        )
        victim = self._buffer.pop()
        self.released += 1
        return victim

    def restore(self, pairs: list[Pair], released: int = 0) -> None:
        """Reload buffered residents from a checkpoint (crash recovery).

        The mixing rng restarts fresh — eviction choices after a restart
        differ from the lost process's would-have-been draws, which is
        fine: any uniform eviction sequence satisfies Section 5.2.
        """
        if len(pairs) > self.capacity:
            raise ValueError(
                f"{len(pairs)} residents exceed capacity {self.capacity}"
            )
        self._buffer = list(pairs)
        self.released = released

    def flush(self) -> list[Pair]:
        """Shuffle and empty the buffer (end-of-interval publication)."""
        self._rng.shuffle(self._buffer)
        drained = self._buffer
        self._buffer = []
        self.released += len(drained)
        return drained
