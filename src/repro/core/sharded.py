"""Extension: sharded checking nodes.

The paper's evaluation shows the sequential checking node becoming the
bottleneck once enough computing nodes are deployed (Gowalla saturates at
~165k records/s after 8 nodes, Figure 9).  Because FRESQUE's checker state
is two flat arrays indexed by leaf offset, it shards naturally: partition
the leaves over ``c`` checking shards (``shard = leaf_offset mod c``), give
each shard its own randomer (sized from the noise bounds of *its* leaves)
and its own AL/ALN slices, and let the merger reassemble the full AL from
the per-shard snapshots.  No cross-shard coordination is needed on the
ingest path — a record touches exactly one leaf, hence one shard.

This module is a faithful "future work" extension, not part of the paper's
measured system; the ablation benchmark quantifies the ceiling it removes.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field

from repro.cloud.node import FresqueCloud
from repro.core.computing_node import ComputingNode
from repro.core.config import FresqueConfig
from repro.core.dispatcher import Dispatcher
from repro.core.membership import stale_for
from repro.core.merger import Merger
from repro.core.messages import (
    AlSnapshot,
    AnnouncePublication,
    BufferFlush,
    CnPublishing,
    DoneMsg,
    MembershipMsg,
    NewPublication,
    Pair,
    PairBatch,
    PublishingMsg,
    RawBatch,
    RawData,
    RemovedRecord,
    TemplateMsg,
    ToCloudPair,
)
from repro.core.randomer import Randomer
from repro.core.system import CloudAdapter
from repro.crypto.cipher import RecordCipher
from repro.index.template import LeafArrays
from repro.privacy.laplace import laplace_inverse_cdf


def shard_of(leaf_offset: int, num_shards: int) -> int:
    """The checking shard responsible for ``leaf_offset``."""
    return leaf_offset % num_shards


def shard_buffer_size(config: FresqueConfig, shard: int, num_shards: int) -> int:
    """Randomer capacity of one shard: ``α · Σ s_i`` over its own leaves.

    The per-leaf bound is uniform, so each shard's buffer is proportional
    to its leaf count; the total across shards equals the unsharded size.
    """
    owned = len(range(shard, config.domain.num_leaves, num_shards))
    bound = max(
        0, math.ceil(laplace_inverse_cdf(config.delta_prime, config.noise_scale))
    )
    return max(1, math.ceil(config.alpha * bound * owned))


@dataclass
class _ShardState:
    randomer: Randomer
    arrays: LeafArrays
    cn_reported: set[int] = field(default_factory=set)
    closed: bool = False


@dataclass(frozen=True)
class PartialAl:
    """Checking shard → merger: this shard's slice of the final AL."""

    publication: int
    shard: int
    counts: dict[int, int]  # leaf offset -> true count


class CheckingShard:
    """One of ``c`` checking nodes, owning ``leaf mod c == shard_id``.

    Mirrors :class:`~repro.core.checking.CheckingNode` but emits
    :class:`PartialAl` instead of the full AL and a shard-tagged *done*.
    """

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        config: FresqueConfig,
        rng: random.Random | None = None,
    ):
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.config = config
        self._rng = rng if rng is not None else random.Random()
        self._states: dict[int, _ShardState] = {}
        self.pairs_processed = 0
        self.dummies_passed = 0
        self.records_removed = 0
        # Per-producer join-epoch floors (elastic membership,
        # docs/PROTOCOL.md); dormant until a MembershipMsg arms them.
        self._node_epochs: dict[int, int] = {}
        self.stale_batches_discarded = 0

    @property
    def name(self) -> str:
        """Routing address of this shard."""
        return f"checking-{self.shard_id}"

    def owns(self, leaf_offset: int) -> bool:
        """Whether this shard is responsible for ``leaf_offset``."""
        return shard_of(leaf_offset, self.num_shards) == self.shard_id

    def on_new_publication(
        self, message: NewPublication
    ) -> list[tuple[str, object]]:
        """Initialise this shard's arrays and randomer."""
        self._states[message.publication] = _ShardState(
            randomer=Randomer(
                shard_buffer_size(self.config, self.shard_id, self.num_shards),
                rng=self._rng,
            ),
            arrays=LeafArrays(message.plan.leaf_noise),
        )
        out: list[tuple[str, object]] = []
        if self.shard_id == 0:
            # Exactly one shard forwards the template and announces the PN.
            out.append(("merger", TemplateMsg(message.publication, message.plan)))
            out.append(("cloud", AnnouncePublication(message.publication)))
        return out

    def _check(self, pair: Pair) -> tuple[str, object]:
        self.pairs_processed += 1
        if pair.dummy:
            self.dummies_passed += 1
            return (
                "cloud",
                ToCloudPair(pair.publication, pair.leaf_offset, pair.encrypted),
            )
        state = self._states[pair.publication]
        result = state.arrays.check_and_update(pair.leaf_offset)
        if result.removed:
            self.records_removed += 1
            return (
                "merger",
                RemovedRecord(pair.publication, pair.leaf_offset, pair.encrypted),
            )
        return (
            "cloud",
            ToCloudPair(pair.publication, pair.leaf_offset, pair.encrypted),
        )

    def on_membership(self, message: MembershipMsg) -> list[tuple[str, object]]:
        """Track join-epoch floors for the staleness check (monotone)."""
        for node, epoch in message.joined:
            if epoch > self._node_epochs.get(node, 0):
                self._node_epochs[node] = epoch
        return []

    def _admit_epoch(self, message) -> bool:
        """Membership-epoch staleness check (mirrors
        :meth:`CheckingNode._admit_epoch`); unstamped messages — all of
        them until a sharded deployment stamps its split batches — pass."""
        if not stale_for(self._node_epochs, message):
            return True
        self.stale_batches_discarded += 1
        return False

    def on_pair(self, pair: Pair) -> list[tuple[str, object]]:
        """Buffer one owned pair; process whatever the randomer evicts."""
        if not self._admit_epoch(pair):
            return []
        if not self.owns(pair.leaf_offset):
            raise ValueError(
                f"pair for leaf {pair.leaf_offset} routed to shard "
                f"{self.shard_id} of {self.num_shards}"
            )
        state = self._states[pair.publication]
        evicted = state.randomer.insert(pair)
        if evicted is None:
            return []
        return [self._check(evicted)]

    def on_pair_batch(self, message: PairBatch) -> list[tuple[str, object]]:
        """Buffer one shard-split batch; process every eviction in order."""
        if not self._admit_epoch(message):
            return []
        state = self._states[message.publication]
        insert = state.randomer.insert
        out: list[tuple[str, object]] = []
        for pair in message.pairs:
            if not self.owns(pair.leaf_offset):
                raise ValueError(
                    f"pair for leaf {pair.leaf_offset} routed to shard "
                    f"{self.shard_id} of {self.num_shards}"
                )
            evicted = insert(pair)
            if evicted is not None:
                out.append(self._check(evicted))
        return out

    def on_cn_publishing(
        self, message: CnPublishing
    ) -> list[tuple[str, object]]:
        """Finalise this shard once every computing node reported."""
        state = self._states[message.publication]
        state.cn_reported.add(message.node_id)
        if len(state.cn_reported) < self.config.num_computing_nodes:
            return []
        return self._finalise(message.publication)

    def _finalise(self, publication: int) -> list[tuple[str, object]]:
        state = self._states[publication]
        state.closed = True
        out: list[tuple[str, object]] = []
        flush_pairs = []
        for pair in state.randomer.flush():
            destination, message = self._check(pair)
            if destination == "merger":
                out.append((destination, message))
            else:
                flush_pairs.append((message.leaf_offset, message.encrypted))
        counts = {
            offset: state.arrays.al[offset]
            for offset in range(
                self.shard_id, self.config.domain.num_leaves, self.num_shards
            )
        }
        # Flush before the partial AL (see CheckingNode._finalise: the
        # cloud must hold every pair before the merger can publish).
        out.append(("cloud", BufferFlush(publication, tuple(flush_pairs))))
        out.append(("merger", PartialAl(publication, self.shard_id, counts)))
        done = DoneMsg(publication)
        out.extend(
            (f"cn-{i}", done) for i in range(self.config.num_computing_nodes)
        )
        del self._states[publication]
        return out


class ShardedMerger(Merger):
    """Merger variant assembling the AL from per-shard partial snapshots."""

    def __init__(
        self,
        config: FresqueConfig,
        cipher: RecordCipher,
        num_shards: int,
        rng: random.Random | None = None,
    ):
        super().__init__(config, cipher, rng=rng)
        self.num_shards = num_shards
        self._partials: dict[int, dict[int, dict[int, int]]] = {}

    def on_partial_al(self, message: PartialAl) -> list[tuple[str, object]]:
        """Collect one shard's AL slice; merge once all shards reported."""
        shards = self._partials.setdefault(message.publication, {})
        shards[message.shard] = message.counts
        if len(shards) < self.num_shards:
            return []
        counts = [0] * self.config.domain.num_leaves
        for shard_counts in shards.values():
            for offset, count in shard_counts.items():
                counts[offset] = count
        del self._partials[message.publication]
        return self.on_al(
            AlSnapshot(message.publication, tuple(counts))
        )


class _RoutingComputingNode(ComputingNode):
    """Computing node that routes pairs to the owning checking shard."""

    def __init__(self, node_id, config, cipher, num_shards: int):
        super().__init__(node_id, config, cipher)
        self.num_shards = num_shards
        self._done_counts: dict[int, int] = {}

    def _destination(self, pair: Pair) -> str:
        return f"checking-{shard_of(pair.leaf_offset, self.num_shards)}"

    def _broadcast_publishing(self, publication: int) -> list[tuple[str, object]]:
        return [
            (
                f"checking-{shard}",
                CnPublishing(publication, self.node_id),
            )
            for shard in range(self.num_shards)
        ]

    def _split_batch(self, batch: PairBatch) -> list[tuple[str, object]]:
        """Split one pair batch into per-shard batches, order preserved."""
        by_shard: dict[int, list[Pair]] = {}
        for pair in batch.pairs:
            by_shard.setdefault(
                shard_of(pair.leaf_offset, self.num_shards), []
            ).append(pair)
        return [
            (
                f"checking-{shard}",
                PairBatch(batch.publication, tuple(pairs)),
            )
            for shard, pairs in sorted(by_shard.items())
        ]

    def on_raw(self, message: RawData) -> list[tuple[str, object]]:
        out = super().on_raw(message)
        return [(self._destination(pair), pair) for _, pair in out]

    def on_raw_batch(self, message: RawBatch) -> list[tuple[str, object]]:
        out = super().on_raw_batch(message)
        routed: list[tuple[str, object]] = []
        for _, payload in out:
            routed.extend(self._split_batch(payload))
        return routed

    def on_publishing(self, publication: int) -> list[tuple[str, object]]:
        if self._waiting_done:
            self._held.append(("publishing", publication))
            return []
        self._waiting_done = True
        return self._broadcast_publishing(publication)

    def on_done(self, message: DoneMsg) -> list[tuple[str, object]]:
        # Wait for *every* shard's done before replaying held events.
        count = self._done_counts.get(message.publication, 0) + 1
        self._done_counts[message.publication] = count
        if count < self.num_shards:
            return []
        del self._done_counts[message.publication]
        self._waiting_done = False
        out: list[tuple[str, object]] = []
        while self._held:
            kind, payload = self._held.pop(0)
            if kind == "pair":
                out.append((self._destination(payload), payload))
                continue
            if kind == "batch":
                out.extend(self._split_batch(payload))
                continue
            out.extend(self._broadcast_publishing(payload))
            self._waiting_done = True
            break
        return out


class ShardedFresqueSystem:
    """FRESQUE with ``num_checking_shards`` parallel checking nodes.

    Same public surface as :class:`~repro.core.system.FresqueSystem` for
    the operations the tests and benchmarks use.
    """

    def __init__(
        self,
        config: FresqueConfig,
        cipher: RecordCipher,
        num_checking_shards: int = 2,
        seed: int | None = None,
    ):
        if num_checking_shards < 1:
            raise ValueError("need at least one checking shard")
        self.config = config
        self.cipher = cipher
        self.num_shards = num_checking_shards
        rng = random.Random(seed)
        self.dispatcher = Dispatcher(config, rng=random.Random(rng.random()))
        self.computing_nodes = [
            _RoutingComputingNode(i, config, cipher, num_checking_shards)
            for i in range(config.num_computing_nodes)
        ]
        self.shards = [
            CheckingShard(
                shard, num_checking_shards, config,
                rng=random.Random(rng.random()),
            )
            for shard in range(num_checking_shards)
        ]
        self.merger = ShardedMerger(
            config, cipher, num_checking_shards, rng=random.Random(rng.random())
        )
        self.cloud = FresqueCloud(config.domain)
        self._cloud_adapter = CloudAdapter(self.cloud)
        self._queue: deque[tuple[str, object]] = deque()
        self._started = False

    def _deliver(self, destination: str, message) -> list[tuple[str, object]]:
        if destination.startswith("cn-"):
            node = self.computing_nodes[int(destination[3:])]
            if isinstance(message, RawBatch):
                return node.on_raw_batch(message)
            if isinstance(message, RawData):
                return node.on_raw(message)
            if isinstance(message, PublishingMsg):
                return node.on_publishing(message.publication)
            if isinstance(message, DoneMsg):
                return node.on_done(message)
        elif destination == "checking":
            # Dispatcher broadcasts go to every shard.
            out: list[tuple[str, object]] = []
            for shard in self.shards:
                if isinstance(message, NewPublication):
                    out.extend(shard.on_new_publication(message))
                elif isinstance(message, PublishingMsg):
                    pass  # informational; shards wait for CnPublishing
                else:
                    raise TypeError(
                        f"checking broadcast cannot carry "
                        f"{type(message).__name__}"
                    )
            return out
        elif destination.startswith("checking-"):
            shard = self.shards[int(destination.split("-", 1)[1])]
            if isinstance(message, PairBatch):
                return shard.on_pair_batch(message)
            if isinstance(message, Pair):
                return shard.on_pair(message)
            if isinstance(message, CnPublishing):
                return shard.on_cn_publishing(message)
        elif destination == "merger":
            if isinstance(message, TemplateMsg):
                return self.merger.on_template(message)
            if isinstance(message, RemovedRecord):
                return self.merger.on_removed(message)
            if isinstance(message, PartialAl):
                return self.merger.on_partial_al(message)
        elif destination == "cloud":
            return self._cloud_adapter.handle(message)
        raise TypeError(
            f"no handler for {type(message).__name__} at {destination!r}"
        )

    def _pump(self, outbox) -> None:
        self._queue.extend(outbox)
        while self._queue:
            destination, message = self._queue.popleft()
            self._queue.extend(self._deliver(destination, message))

    def start(self) -> None:
        """Open the first publication."""
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        self._pump(self.dispatcher.start_publication())

    def run_publication(self, lines: list[str]) -> int:
        """Ingest ``lines``, close the publication, open the next one.

        Returns the number of pairs matched at the cloud.
        """
        if not self._started:
            self.start()
        publication = self.dispatcher.publication
        total = max(1, len(lines))
        for position, line in enumerate(lines):
            self._pump(self.dispatcher.due_dummies((position + 1) / (total + 1)))
            self._pump(self.dispatcher.on_raw(line))
        self._pump(self.dispatcher.end_publication())
        self._pump(self.dispatcher.start_publication())
        receipt = next(
            r
            for r in self._cloud_adapter.receipts
            if r.publication == publication
        )
        return receipt.records_matched

    def query(self, low: float, high: float):
        """End-to-end range query over the published data."""
        from repro.client.query_client import QueryClient

        return QueryClient(self.config.schema, self.cipher, self.cloud).range_query(
            low, high
        )


def sharded_capacity(costs, computing_nodes: int, shards: int) -> float:
    """Analytic throughput with ``shards`` checking nodes.

    The sequential-checker term scales by the shard count; dispatcher and
    computing nodes are unchanged.
    """
    if computing_nodes < 1 or shards < 1:
        raise ValueError("need at least one computing node and one shard")
    return min(
        1.0 / costs.t_dispatch,
        computing_nodes / costs.t_computing_node,
        shards / costs.t_check_array,
    )
