"""FRESQUE deployment configuration.

Gathers every knob of Section 7.1 — domain and bin interval, fanout,
privacy budget ε, the δ/δ' probabilities, the randomer coefficient α, the
publishing time interval and the computing-node count — and derives the
quantities the components need: the per-level noise scale, the per-leaf
noise bound ``s_i``, the overflow-array capacity and the randomer buffer
size ``S = α · Σ s_i`` (Section 5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.index.domain import AttributeDomain
from repro.index.tree import expected_height
from repro.privacy.laplace import laplace_inverse_cdf
from repro.records.schema import Schema


class ConfigError(ValueError):
    """Raised for inconsistent FRESQUE configurations."""


@dataclass(frozen=True)
class FresqueConfig:
    """Static configuration of a FRESQUE deployment.

    Parameters
    ----------
    schema:
        Relation schema of the ingested records.
    domain:
        Binned domain of the indexed attribute.
    num_computing_nodes:
        Number of parser/encrypter workers (the paper sweeps 2–12).
    epsilon:
        Privacy budget per publication (paper default 1.0).
    alpha:
        Randomer buffer coefficient α ≥ 2 (paper default 2).
    delta:
        Probability that overflow arrays are large enough (paper: 99%).
    delta_prime:
        Probability used for the buffer-size bound δ' (paper: 99%).
    fanout:
        Index branching factor (paper: 16).
    publish_interval:
        Publishing time interval in seconds (paper: 60).
    batch_size:
        Records the dispatcher accumulates before forwarding one
        :class:`~repro.core.messages.RawBatch` (1 = per-record
        dispatch, today's behaviour, through the same code path).
    max_batch_delay:
        Seconds a partially filled batch may wait before it is flushed
        anyway, bounding the ingest latency batching adds.
    adaptive_batching:
        When true, the dispatcher's :class:`~repro.core.flow.FlowController`
        adapts the effective batch size and flush delay (AIMD, between
        ``min_batch_size``/``max_batch_size`` and the delay floor/
        ``max_batch_delay``) to the observed flush throughput and queue
        depth.  Off by default: the controller is *pinned* and the
        dispatcher behaves exactly as the static configuration dictates
        (the batch-equivalence harness relies on this).
    min_batch_size / max_batch_size:
        Bounds of the adaptive controller's batch-size excursion.
        ``batch_size`` is the starting point and must lie inside the
        bounds when ``adaptive_batching`` is on.
    credit_window:
        Records the dispatcher may have in flight towards the checking
        node before it stops releasing flushed batches (credit-based
        backpressure; the checking node grants credits back per
        processed batch).  0 disables the gate.
    ingest_queue_limit:
        Records the dispatcher may hold back (in-flight batch plus
        credit-deferred batches) before admission control sheds load at
        the source.  0 disables admission control.
    shed_policy:
        What to shed when the ingest queue is over its limit:
        ``"drop-newest"`` rejects the arriving record, ``"drop-oldest"``
        evicts the oldest not-yet-flushed record to admit the new one.
    deterministic_ivs:
        When true, computing nodes and the merger derive every IV from
        the record's pipeline-wide identity (the dispatch ordinal stamped
        on :class:`~repro.core.messages.RawBatch`, or the merger's
        per-publication padding counter) via the cipher's seeded-encrypt
        API instead of a process-local counter.  The ciphertext stream
        then no longer depends on which process encrypted which record —
        the property the shared-memory runtime's byte-identity
        equivalence harness relies on (docs/RUNTIMES.md).  Off by
        default: single-process runtimes keep the historical counter
        IVs.
    """

    schema: Schema
    domain: AttributeDomain
    num_computing_nodes: int = 4
    epsilon: float = 1.0
    alpha: float = 2.0
    delta: float = 0.99
    delta_prime: float = 0.99
    fanout: int = 16
    publish_interval: float = 60.0
    batch_size: int = 1
    max_batch_delay: float = 0.05
    adaptive_batching: bool = False
    min_batch_size: int = 1
    max_batch_size: int = 1024
    credit_window: int = 0
    ingest_queue_limit: int = 0
    shed_policy: str = "drop-newest"
    deterministic_ivs: bool = False
    _height: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if self.num_computing_nodes < 1:
            raise ConfigError("at least one computing node is required")
        if self.epsilon <= 0:
            raise ConfigError(f"epsilon must be positive, got {self.epsilon}")
        if self.alpha < 2:
            raise ConfigError(
                f"the paper requires alpha >= 2, got {self.alpha} "
                "(a smaller buffer can leak dummy positions, Section 5.2)"
            )
        if not 0 < self.delta < 1 or not 0 < self.delta_prime < 1:
            raise ConfigError("delta and delta_prime must lie in (0, 1)")
        if self.publish_interval <= 0:
            raise ConfigError("publish interval must be positive")
        if self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be at least 1, got {self.batch_size}"
            )
        if self.max_batch_delay <= 0:
            raise ConfigError(
                f"max_batch_delay must be positive, got {self.max_batch_delay}"
            )
        if not 1 <= self.min_batch_size <= self.max_batch_size:
            raise ConfigError(
                "batch-size bounds must satisfy 1 <= min <= max, got "
                f"[{self.min_batch_size}, {self.max_batch_size}]"
            )
        if self.adaptive_batching and not (
            self.min_batch_size <= self.batch_size <= self.max_batch_size
        ):
            raise ConfigError(
                f"adaptive batching starts from batch_size={self.batch_size}, "
                "which must lie inside "
                f"[{self.min_batch_size}, {self.max_batch_size}]"
            )
        if self.credit_window < 0:
            raise ConfigError(
                f"credit_window must be >= 0, got {self.credit_window}"
            )
        if self.ingest_queue_limit < 0:
            raise ConfigError(
                "ingest_queue_limit must be >= 0, got "
                f"{self.ingest_queue_limit}"
            )
        if self.shed_policy not in ("drop-newest", "drop-oldest"):
            raise ConfigError(
                f"unknown shed_policy {self.shed_policy!r} "
                "(expected 'drop-newest' or 'drop-oldest')"
            )
        object.__setattr__(
            self,
            "_height",
            expected_height(self.domain.num_leaves, self.fanout),
        )

    @property
    def index_height(self) -> int:
        """Levels of the index tree (leaves included)."""
        return self._height

    @property
    def per_level_epsilon(self) -> float:
        """Budget each index level receives (ε / height)."""
        return self.epsilon / self._height

    @property
    def noise_scale(self) -> float:
        """Laplace scale b = 1 / (ε / height) of every count's noise."""
        return 1.0 / self.per_level_epsilon

    @property
    def per_leaf_noise_bound(self) -> int:
        """``s_i``: |noise| of one leaf, exceeded with probability 1 - δ'."""
        return max(
            0,
            math.ceil(laplace_inverse_cdf(self.delta_prime, self.noise_scale)),
        )

    @property
    def overflow_capacity(self) -> int:
        """Fixed capacity of each leaf's overflow array (bound at δ)."""
        return max(
            0, math.ceil(laplace_inverse_cdf(self.delta, self.noise_scale))
        )

    @property
    def max_dummy_bound(self) -> int:
        """``T = Σ s_i``: probabilistic bound on a publication's dummies."""
        return self.per_leaf_noise_bound * self.domain.num_leaves

    @property
    def randomer_buffer_size(self) -> int:
        """``S = α · T``: the randomer's fixed buffer capacity.

        Never depends on the actual number of dummies drawn (requirement
        (*) of Section 5.2) and exceeds it with probability ≥ δ'
        (requirement (**)).
        """
        return max(1, math.ceil(self.alpha * self.max_dummy_bound))
