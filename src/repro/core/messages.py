"""Messages exchanged between FRESQUE components.

Every component is transport-agnostic: handlers consume these dataclasses
and return ``(destination, message)`` pairs.  The same message flow is
executed by the synchronous driver (``repro.core.system``), the threaded
runtime (``repro.runtime``) and the discrete-event simulator
(``repro.simulation``).

Destinations are string names: ``"dispatcher"``, ``"cn-<i>"``,
``"checking"``, ``"merger"``, ``"cloud"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.index.perturb import NoisePlan
from repro.records.record import EncryptedRecord, Record


@dataclass(frozen=True)
class NewPublication:
    """Dispatcher → checking node: a publication starts.

    Carries the publication number and the index template's noise plan
    (the checking node seeds ALN from the leaf noise and forwards the
    template to the merger).
    """

    publication: int
    plan: NoisePlan


@dataclass(frozen=True)
class TemplateMsg:
    """Checking node → merger: the (noise-only) index template."""

    publication: int
    plan: NoisePlan


@dataclass(frozen=True)
class AnnouncePublication:
    """Checking node → cloud: the new publication number."""

    publication: int


@dataclass(frozen=True)
class RawData:
    """Dispatcher → computing node: one raw line (or pre-built record).

    ``record`` is set for dummy records the dispatcher generated itself;
    real arrivals carry the unparsed ``line``.
    """

    publication: int
    line: str | None = None
    record: Record | None = None


@dataclass(frozen=True)
class RawBatch:
    """Dispatcher → computing node: an ordered batch of records.

    The batched counterpart of :class:`RawData` — one message (and, on
    the TCP transport, one frame) carries up to ``batch_size`` records.
    ``items`` preserves arrival order; each element is either an unparsed
    raw line (``str``) or a pre-built :class:`Record` (dispatcher-made
    dummies).  Every item belongs to ``publication`` — the dispatcher
    flushes the accumulator at interval close, so a batch never straddles
    a publication boundary (see docs/BATCHING.md).

    ``seq`` is the dispatcher's global flush sequence number (gap-free,
    never reset across publications) and ``ordinal`` is the global
    dispatch ordinal of the batch's first item (its position in the
    arrival stream).  Both are -1 on transports that predate them; the
    shared-memory runtime requires them — ``seq`` lets the checking
    worker restore dispatch order across parallel computing nodes (and
    deduplicate crash redispatches), ``ordinal`` keys the deterministic
    per-record IVs of ``config.deterministic_ivs`` (docs/RUNTIMES.md).

    ``epoch`` is the membership epoch the batch was dispatched under
    (:class:`~repro.core.membership.Membership`; -1 when unstamped).  A
    crash redispatch forwards the same message object, so the stamp
    survives rerouting — epochs version the *membership*, never the
    data (docs/PROTOCOL.md).
    """

    publication: int
    items: tuple[str | Record, ...]
    seq: int = -1
    ordinal: int = -1
    epoch: int = -1


@dataclass(frozen=True)
class Pair:
    """Computing node → checking node: a ``<leaf offset, e-record>`` pair.

    ``dummy`` is trusted-side metadata (the paper's flag hidden inside the
    ciphertext): the checker uses it to skip AL/ALN updates, and it is
    stripped before the pair leaves the collector.
    """

    publication: int
    leaf_offset: int
    encrypted: EncryptedRecord
    dummy: bool = False


@dataclass(frozen=True)
class PairBatch:
    """Computing node → checking node: a batch of pairs, in batch order.

    Produced by :meth:`ComputingNode.on_raw_batch` from one
    :class:`RawBatch`; the checking node feeds the pairs through the
    randomer in order, so the released stream is identical to what the
    same pairs delivered one-by-one would produce.

    ``seq`` carries the originating :class:`RawBatch`'s flush sequence
    number through the computing node (-1 on transports that do not
    stamp it); multiprocess runtimes use it to re-serialise batches into
    dispatch order before the randomer sees them.

    ``epoch`` propagates the RawBatch's membership epoch and ``node``
    identifies the producing computing node (-1 when unstamped).
    Together they let the checking side discard *stale* batches — the
    output of a crashed node's previous incarnation, already covered by
    the crash redispatch — once the node's rejoin epoch is known
    (docs/PROTOCOL.md).
    """

    publication: int
    pairs: tuple[Pair, ...]
    seq: int = -1
    epoch: int = -1
    node: int = -1


@dataclass(frozen=True)
class ToCloudPair:
    """Checking node → cloud: a released pair (dummy flag stripped)."""

    publication: int
    leaf_offset: int
    encrypted: EncryptedRecord


@dataclass(frozen=True)
class ToCloudBatch:
    """Checking node → cloud: the released pairs of one checked batch.

    Same shape as :class:`BufferFlush` (dummy flags already stripped) but
    emitted mid-interval, once per processed :class:`PairBatch`, so the
    cloud receives one message per batch instead of one per pair.
    """

    publication: int
    pairs: tuple[tuple[int, EncryptedRecord], ...]


@dataclass(frozen=True)
class RemovedRecord:
    """Checking node → merger: a record consumed by negative noise."""

    publication: int
    leaf_offset: int
    encrypted: EncryptedRecord


@dataclass(frozen=True)
class PublishingMsg:
    """Dispatcher → computing nodes and checking node: interval over.

    ``last_seq`` is the dispatcher's highest flushed :class:`RawBatch`
    sequence number at interval close (-1 when unstamped).  Reordering
    consumers hold the message until every batch with ``seq <= last_seq``
    has been processed, restoring the synchronous runtime's guarantee
    that *publishing* arrives after the publication's final batch.

    ``nodes`` is the exact set of computing nodes the dispatcher
    broadcast this notice to — every node that participated in the
    interval (including nodes retired mid-interval, excluding nodes
    down at close).  The checking node finalises against this set
    instead of the static configured fleet; an empty tuple falls back
    to the pre-membership counting rule.  ``epoch`` is the membership
    epoch at interval close (-1 when unstamped).
    """

    publication: int
    last_seq: int = -1
    epoch: int = -1
    nodes: tuple[int, ...] = ()


@dataclass(frozen=True)
class CnPublishing:
    """Computing node → checking node: this node flushed the publication."""

    publication: int
    node_id: int


@dataclass(frozen=True)
class CreditGrant:
    """Checking node → dispatcher: backpressure credits replenished.

    Emitted once per processed :class:`PairBatch` when
    ``config.credit_window > 0``, crediting the dispatcher's
    :class:`~repro.core.flow.CreditGate` with the records it just got
    through the randomer.  Dispatching consumes one credit per record,
    so the window bounds the records in flight toward the checking
    node; the grant stream is what lets the dispatcher resume releasing
    deferred batches (docs/BATCHING.md).
    """

    publication: int
    records: int


@dataclass(frozen=True)
class NodeDown:
    """Dispatcher → checking node: a computing node died mid-publication.

    Degraded mode (shared-nothing lets the survivors absorb the load):
    the checking node stops waiting for the dead node's *publishing*
    message — for the carried publication and every later one — so the
    publication-consistency condition is evaluated over live nodes only.
    """

    publication: int
    node_id: int


@dataclass(frozen=True)
class MembershipMsg:
    """Dispatcher → checking node: the fleet changed (admit/retire/rejoin).

    Full-state and versioned: carries the complete membership under
    ``epoch`` — the active ``members``, the drained ``retired`` set, the
    crashed ``down`` set and the per-node join epochs (``joined`` is a
    tuple of ``(node_id, epoch)`` pairs).  Consumers apply it only when
    ``epoch`` is newer than what they have, so duplicated or delayed
    copies are harmless.  The join epochs are the staleness floors for
    the crash+rejoin discard rule (docs/PROTOCOL.md).
    """

    epoch: int
    members: tuple[int, ...] = ()
    retired: tuple[int, ...] = ()
    down: tuple[int, ...] = ()
    joined: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True)
class RingAttach:
    """Shm parent → checking worker: a new computing node's rings exist.

    Runtime-admission plumbing for the shared-memory cluster: the parent
    creates the rings for an admitted (or rejoined) node, then tells the
    checking worker which ring names to attach — ``inbound`` for the
    node's pair stream, ``outbound`` for the *done* channel back to it.
    Other runtimes never see this message.
    """

    node_id: int
    inbound: str
    outbound: str


@dataclass(frozen=True)
class AlSnapshot:
    """Checking node → merger: the final AL of the publication."""

    publication: int
    al: tuple[int, ...]


@dataclass(frozen=True)
class BufferFlush:
    """Checking node → cloud: the shuffled randomer buffer contents."""

    publication: int
    pairs: tuple[tuple[int, EncryptedRecord], ...]


@dataclass(frozen=True)
class DoneMsg:
    """Checking node → computing nodes: publishing tasks handed off."""

    publication: int


@dataclass(frozen=True)
class MergedPublication:
    """Merger → cloud: the secure index and sealed overflow arrays."""

    publication: int
    tree: object  # IndexTree; typed loosely to avoid an import cycle
    overflow: dict = field(default_factory=dict)
