"""Collector observability.

Aggregates the per-component counters every node already maintains into a
single snapshot an operator can log each publishing interval — the kind of
instrumentation the paper's throughput plots were produced from.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CollectorStats:
    """Point-in-time counters of a FRESQUE deployment.

    Parameters mirror the pipeline: what the dispatcher forwarded, what
    the computing nodes parsed/encrypted/rejected, what the checking node
    processed (dummies passed, records removed), and what reached the
    cloud.
    """

    records_dispatched: int
    dummies_generated: int
    lines_parsed: int
    records_encrypted: int
    records_rejected: int
    pairs_checked: int
    dummies_passed: int
    records_removed: int
    cloud_records: int
    cloud_bytes: int
    publications_done: int

    def ingest_accounting_consistent(self) -> bool:
        """Sanity invariants across the pipeline's accounting:

        * the checker never processes more pairs than the computing nodes
          encrypted;
        * it never passes more dummies than the dispatcher generated;
        * the cloud never stores more records than the checker forwarded
          (checked pairs that were not removed, counting the removed
          records that re-enter via the merger's overflow arrays).
        """
        return (
            self.pairs_checked <= self.records_encrypted
            and self.dummies_passed <= self.dummies_generated
            and self.cloud_records <= self.pairs_checked + self.records_removed
        )

    def render(self) -> str:
        """Human-readable one-block summary."""
        lines = [
            "collector stats",
            f"  dispatched:   {self.records_dispatched} records "
            f"({self.dummies_generated} dummies generated)",
            f"  computing:    {self.lines_parsed} parsed, "
            f"{self.records_encrypted} encrypted, "
            f"{self.records_rejected} rejected",
            f"  checking:     {self.pairs_checked} pairs "
            f"({self.dummies_passed} dummies, "
            f"{self.records_removed} removed)",
            f"  cloud:        {self.cloud_records} records, "
            f"{self.cloud_bytes} bytes, "
            f"{self.publications_done} publications",
        ]
        return "\n".join(lines)


def collect_stats(system) -> CollectorStats:
    """Snapshot a :class:`~repro.core.system.FresqueSystem` (or the
    threaded runtime, which exposes the same components)."""
    return CollectorStats(
        records_dispatched=system.dispatcher.records_dispatched,
        dummies_generated=system.dispatcher.dummies_generated,
        lines_parsed=sum(node.parsed for node in system.computing_nodes),
        records_encrypted=sum(
            node.encrypted for node in system.computing_nodes
        ),
        records_rejected=sum(
            node.rejected for node in system.computing_nodes
        ),
        pairs_checked=system.checking.pairs_processed,
        dummies_passed=system.checking.dummies_passed,
        records_removed=system.checking.records_removed,
        cloud_records=system.cloud.store.write_ops,
        cloud_bytes=system.cloud.store.bytes_written,
        publications_done=len(system.cloud.engine.published),
    )
