"""The dispatcher (Section 5.3).

The only ingestion-path work left on this node is round-robin forwarding —
every heavy job (parsing, encrypting, checking) moved elsewhere, which is
what lets FRESQUE's intake scale.  At the start of each publishing time
interval the dispatcher creates the index template (noise plan), the dummy
records and the publication number; at the end it broadcasts *publishing*
and immediately opens the next publication (asynchronous publishing).

Forwarding is batched (docs/BATCHING.md): arriving records — raw lines
and released dummies alike — accumulate, in order, in a single in-flight
batch that is flushed to the next computing node as one
:class:`~repro.core.messages.RawBatch` when it reaches the effective
batch size (*size*), when it has waited longer than the effective flush
delay (*delay*), or when the publication interval closes (*close*) — the
close flush is what guarantees a batch never straddles a publication
boundary.  ``batch_size=1`` degenerates to per-record dispatch through
the exact same path.  The effective size/delay come from the
:class:`~repro.core.flow.FlowController` — the static config values when
pinned, the AIMD controller's when ``config.adaptive_batching`` is on —
which also houses credit-based backpressure (flushed batches park in a
deferred queue when the checking node's credits run dry) and admission
control (``config.ingest_queue_limit`` + :meth:`Dispatcher.offer_raw`).
"""

from __future__ import annotations

import random
from collections import deque

from repro.core.config import FresqueConfig
from repro.core.flow import (
    ADMIT,
    DROP_NEWEST,
    DROP_OLDEST,
    FLUSH_CLOSE,
    FLUSH_DELAY,
    FLUSH_MANUAL,
    FLUSH_SIZE,
    FlowController,
    SHED_OLDEST,
)
from repro.core.membership import Membership
from repro.core.messages import (
    CreditGrant,
    MembershipMsg,
    NewPublication,
    NodeDown,
    PublishingMsg,
    RawBatch,
    RawData,
)
from repro.index.perturb import NoisePlan, draw_noise_plan
from repro.index.tree import IndexTree
from repro.records.record import Record, make_dummy
from repro.records.codec import decode_record, encode_record
from repro.telemetry.clock import WALL_CLOCK
from repro.telemetry.context import coalesce

# FLUSH_* reason labels are defined in repro.core.flow (the controller
# consumes them too) and re-exported here for their historical home.
__all__ = [
    "Dispatcher",
    "FLUSH_SIZE",
    "FLUSH_DELAY",
    "FLUSH_CLOSE",
    "FLUSH_MANUAL",
]


class Dispatcher:
    """Round-robin record distribution plus publication lifecycle.

    Parameters
    ----------
    config:
        The deployment configuration.
    rng:
        Seeded randomness (noise plans, dummy values, dummy schedule).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; opens the
        per-publication root span and times the ``dispatch`` stage.
    clock:
        Time source for the ``max_batch_delay`` flush; defaults to the
        telemetry clock when telemetry is enabled, else the shared wall
        clock.  Tests inject a
        :class:`~repro.telemetry.clock.SimulatedClock` so delay flushes
        fire without sleeping.
    """

    def __init__(
        self,
        config: FresqueConfig,
        rng: random.Random | None = None,
        telemetry=None,
        clock=None,
    ):
        self.config = config
        self._rng = rng if rng is not None else random.Random()
        self._tree_shape = IndexTree(config.domain, fanout=config.fanout)
        self._publication = -1
        #: Versioned node set + round-robin cursor (docs/PROTOCOL.md);
        #: every membership transition bumps its epoch, and every
        #: RawBatch is stamped with the epoch it was dispatched under.
        self.membership = Membership(config.num_computing_nodes)
        #: Nodes that participated in the current interval (received or
        #: could have received batches): the *publishing* broadcast set.
        #: Retirement keeps a node here — it must still report — while
        #: nodes down at close are excluded at broadcast time.
        self._participants: set[int] = set(self.membership.active_ids)
        # A deque: due_dummies pops from the front as the interval
        # advances, and list.pop(0) would shift the whole schedule per
        # dummy (O(n²) across one publication).
        self._dummy_schedule: deque[tuple[float, Record]] = deque()
        self.records_dispatched = 0
        self.records_rerouted = 0
        self.dummies_generated = 0
        self._tel = coalesce(telemetry)
        self._records_counter = self._tel.counter("dispatcher_records_total")
        self._dummies_counter = self._tel.counter("dispatcher_dummies_total")
        if clock is None:
            clock = self._tel.clock if self._tel.enabled else WALL_CLOCK
        self._clock = clock
        #: Flow control: effective batch size/delay (pinned or adaptive),
        #: the credit gate and admission control (repro.core.flow).
        self.flow = FlowController(config, telemetry=telemetry, clock=clock)
        #: The in-flight batch: raw lines and dummy Records, arrival order.
        self._batch: list[str | Record] = []
        self._batch_opened: float | None = None
        # Global flush sequence (next RawBatch.seq) and the dispatch
        # ordinal of the in-flight batch's first item; both are stamped
        # onto RawBatch so order-restoring transports (runtime/shm) can
        # re-serialise batches and key deterministic IVs.
        self._seq = 0
        self._batch_ordinal = 0
        self._batch_histogram = self._tel.histogram(
            "dispatcher_batch_records",
            buckets=(
                1.0,
                2.0,
                4.0,
                8.0,
                16.0,
                32.0,
                64.0,
                128.0,
                256.0,
                512.0,
                1024.0,
                2048.0,
            ),
        )
        self._flush_counters = {
            reason: self._tel.counter(
                "dispatcher_batch_flush_total", reason=reason
            )
            for reason in (FLUSH_SIZE, FLUSH_DELAY, FLUSH_CLOSE, FLUSH_MANUAL)
        }

    @property
    def publication(self) -> int:
        """Current publication number (-1 before the first interval)."""
        return self._publication

    @property
    def num_computing_nodes(self) -> int:
        """Workers records are spread over."""
        return self.config.num_computing_nodes

    def _make_dummies(self, plan) -> list[Record]:
        dummies = []
        for offset, noise in enumerate(plan.leaf_noise):
            if noise <= 0:
                continue
            low, high = self.config.domain.leaf_range(offset)
            for _ in range(noise):
                value = low if high <= low else low + self._rng.random() * (
                    high - low
                )
                dummies.append(make_dummy(self.config.schema, value))
        return dummies

    def start_publication(
        self, plan: NoisePlan | None = None
    ) -> list[tuple[str, object]]:
        """Open a new publication: draw the template, schedule the dummies.

        Dummy records are assigned release times *uniformly at random* over
        the interval (Section 5.2) — exposed as fractions in [0, 1) so the
        driver can map them to wall-clock or record-count positions.

        ``plan`` injects a pre-drawn noise plan instead of drawing one
        here — the durable driver journals the plan before opening the
        publication, and crash recovery replays the journaled plan so the
        rebuilt publication spends the exact ε (and schedules the exact
        dummy counts) of the original.
        """
        self._publication += 1
        self._participants = set(self.membership.active_ids)
        self._tel.open_publication(self._publication)
        if plan is None:
            # fresque-lint: disable=FRQ-P311 -- non-durable fallback: the durable driver injects a granted, journaled plan (durability/system.py); this in-memory path spends config epsilon without a ledger by design
            plan = draw_noise_plan(
                self._tree_shape, self.config.epsilon, rng=self._rng
            )
        dummies = self._make_dummies(plan)
        self.dummies_generated += len(dummies)
        self._dummies_counter.inc(len(dummies))
        self._dummy_schedule = deque(
            sorted(
                ((self._rng.random(), dummy) for dummy in dummies),
                key=lambda item: item[0],
            )
        )
        return [("checking", NewPublication(self._publication, plan))]

    def due_dummies(self, fraction: float) -> list[tuple[str, object]]:
        """Release every dummy scheduled before ``fraction`` of the interval.

        Dummies join the same in-flight batch as raw lines (the randomer's
        mixing guarantee needs them interleaved in arrival order), so the
        returned messages are whatever batch flushes the releases trigger.
        """
        out: list[tuple[str, object]] = []
        while self._dummy_schedule and self._dummy_schedule[0][0] <= fraction:
            _, dummy = self._dummy_schedule.popleft()
            out.extend(self._enqueue(dummy))
        return out

    @property
    def pending_dummies(self) -> int:
        """Dummies not yet released into the stream."""
        return len(self._dummy_schedule)

    @property
    def dead_nodes(self) -> frozenset[int]:
        """Computing nodes reported down (skipped by the round robin)."""
        return frozenset(self.membership.down_ids)

    @property
    def live_computing_nodes(self) -> list[int]:
        """Computing nodes still in the rotation."""
        return self.membership.active_ids

    @property
    def epoch(self) -> int:
        """Current membership epoch (stamped onto every RawBatch)."""
        return self.membership.epoch

    def mark_node_down(self, node_id: int) -> list[tuple[str, object]]:
        """Take a crashed computing node out of the rotation.

        Degraded mode: shared-nothing means the surviving nodes can
        absorb the dead node's share of the stream.  Returns the
        :class:`NodeDown` notice for the checking node so publication
        finalisation stops waiting for the dead node (idempotent).
        """
        if self.membership.state_of(node_id) == "down":
            return []
        self.membership.mark_down(node_id)
        return [("checking", NodeDown(self._publication, node_id))]

    def admit_node(
        self, node_id: int | None = None
    ) -> tuple[int, list[tuple[str, object]]]:
        """Admit a computing node into the fleet at runtime.

        Returns ``(node_id, outbox)``.  The in-flight batch flushes
        first, stamped and routed under the *old* epoch — admission
        never perturbs batches already sequenced — then the rotation is
        rebuilt around the grown fleet and the credit window reopens
        (deferred batches release; they too keep their old stamps and
        addresses).  The checking node learns the new fleet from the
        :class:`MembershipMsg`.
        """
        out = self._flush(FLUSH_MANUAL)
        node_id = self.membership.admit(node_id)
        self._participants.add(node_id)
        out.extend(self.flow.credits.drain())
        out.append(("checking", self._membership_msg()))
        return node_id, out

    def retire_node(self, node_id: int) -> list[tuple[str, object]]:
        """Drain a computing node out of the rotation (planned removal).

        The in-flight batch flushes under the old epoch (if it was
        routed to the retiring node it still goes there — drain, not
        drop), then the node leaves the rotation.  Its share of the
        dummy schedule needs no reassignment: dummies are scheduled
        centrally and routed at release time, so the survivors absorb
        them through the ordinary rotation.  The retired node stays
        reachable until the interval closes — it reports *publishing*
        for the records it processed and receives its final *done*.
        """
        out = self._flush(FLUSH_MANUAL)
        self.membership.retire(node_id)
        out.append(("checking", self._membership_msg()))
        return out

    def rejoin_node(self, node_id: int) -> list[tuple[str, object]]:
        """A crashed node returns to the rotation under a fresh epoch.

        The new join epoch is the staleness floor the checking side
        uses to discard the previous incarnation's late pair batches
        (the crash redispatch already re-covered them).
        """
        out = self._flush(FLUSH_MANUAL)
        self.membership.rejoin(node_id)
        self._participants.add(node_id)
        out.append(("checking", self._membership_msg()))
        return out

    def _membership_msg(self) -> MembershipMsg:
        m = self.membership
        return MembershipMsg(
            epoch=m.epoch,
            members=tuple(m.active_ids),
            retired=tuple(m.retired_ids),
            down=tuple(m.down_ids),
            joined=tuple(sorted(m.join_epochs.items())),
        )

    def redispatch(
        self, message: RawData | RawBatch
    ) -> list[tuple[str, object]]:
        """Re-route a message whose computing node died before reading it.

        The message object is forwarded unchanged — its seq/ordinal/
        epoch stamps must survive the reroute (the ordering gate dedups
        by seq, deterministic IVs key off the ordinal).  The dead node's
        credits are refunded (its batches may never reach the checking
        node to be granted back), which can release deferred batches —
        they follow the rerouted one in the returned outbox.
        """
        if isinstance(message, RawBatch):
            self.records_rerouted += len(message.items)
            released = self.flow.credits.refund(len(message.items))
        else:
            self.records_rerouted += 1
            released = self.flow.credits.refund(1)
        out = [(self._next_node(), message)]
        out.extend(released)
        return out

    def _next_node(self) -> str:
        return self.membership.next_destination()

    def on_raw(self, line: str) -> list[tuple[str, object]]:
        """Accumulate one raw line; forward a batch when a flush triggers."""
        return self._enqueue(line)

    def offer_raw(self, line: str) -> list[tuple[str, object]] | None:
        """Admission-controlled ingest: ``None`` means the record was shed.

        With ``config.ingest_queue_limit`` unset this is exactly
        :meth:`on_raw`.  Over the limit, ``drop-newest`` rejects ``line``
        (returns ``None``) while ``drop-oldest`` evicts the oldest
        unflushed record to admit it — falling back to rejection when
        nothing is evictable (the whole backlog is already flushed and
        credit-deferred).
        """
        decision = self.flow.admission.decide(self.backlog_records)
        if decision is not ADMIT:
            if decision == SHED_OLDEST and self._evict_oldest():
                self.flow.admission.record_shed(DROP_OLDEST)
                return self._enqueue(line)
            self.flow.admission.record_shed(DROP_NEWEST)
            return None
        return self._enqueue(line)

    def _evict_oldest(self) -> bool:
        """Drop the in-flight batch's oldest record; False when empty."""
        if not self._batch:
            return False
        self._batch.pop(0)
        # The evicted record keeps its dispatch ordinal (it was counted);
        # the batch's first item is now one ordinal later, preserving the
        # restore invariant ordinal == records_dispatched - len(batch).
        self._batch_ordinal += 1
        if not self._batch:
            self._batch_opened = None
        return True

    @property
    def backlog_records(self) -> int:
        """Records held back: in-flight batch plus credit-deferred."""
        return len(self._batch) + self.flow.credits.deferred_records

    def on_credit(self, message: CreditGrant) -> list[tuple[str, object]]:
        """Apply a checking-node credit grant; release deferred batches."""
        return list(self.flow.credits.grant(message.records))

    def observe_queue_depth(self, depth: int) -> None:
        """Feed a downstream queue-depth sample to the adaptive controller."""
        self.flow.controller.observe_depth(depth)

    def _enqueue(self, item: str | Record) -> list[tuple[str, object]]:
        """Append one item to the in-flight batch; flush if due."""
        batch = self._batch
        if not batch:
            self._batch_ordinal = self.records_dispatched
        batch.append(item)
        self.records_dispatched += 1
        self._records_counter.inc()
        if len(batch) >= self.flow.batch_size:
            return self._flush(FLUSH_SIZE)
        now = self._clock.now()
        if self._batch_opened is None:
            self._batch_opened = now
            return []
        if now - self._batch_opened >= self.flow.max_batch_delay:
            return self._flush(FLUSH_DELAY)
        return []

    def _flush(self, reason: str) -> list[tuple[str, object]]:
        """Ship the in-flight batch as one RawBatch; no-op when empty.

        The batch is routed (round robin) and sequenced unconditionally;
        the credit gate then decides whether it leaves now or waits,
        already addressed, in the deferred queue until the checking node
        grants credits back (an empty return with a non-empty deferred
        queue, not a dropped batch).
        """
        if not self._batch:
            return []
        start = self._tel.now()
        items = tuple(self._batch)
        self._batch = []
        self._batch_opened = None
        seq = self._seq
        self._seq += 1
        destination = self._next_node()
        message = RawBatch(
            self._publication,
            items,
            seq=seq,
            ordinal=self._batch_ordinal,
            epoch=self.membership.epoch,
        )
        self._flush_counters[reason].inc()
        self._batch_histogram.observe(float(len(items)))
        self.flow.controller.observe_flush(reason, len(items))
        self._tel.observe_stage("dispatch", self._publication, start)
        if not self.flow.credits.try_send(destination, message):
            return []
        return [(destination, message)]

    def flush_batch(
        self, reason: str = FLUSH_MANUAL
    ) -> list[tuple[str, object]]:
        """Flush the in-flight batch now (driver-initiated)."""
        return self._flush(reason)

    def flush_due(self, now: float | None = None) -> list[tuple[str, object]]:
        """Flush iff the in-flight batch outlived the effective delay.

        Called periodically by every runtime's flush poller — the
        threaded/TCP/shm clusters run a
        :class:`~repro.runtime.poller.FlushPoller` thread, and the
        synchronous :meth:`FresqueSystem.poll_flush` delegates here — so
        a trickle of records below the batch size never waits longer
        than the configured delay for its flush.
        """
        if not self._batch:
            return []
        if now is None:
            now = self._clock.now()
        if self._batch_opened is None:
            self._batch_opened = now
            return []
        if now - self._batch_opened >= self.flow.max_batch_delay:
            return self._flush(FLUSH_DELAY)
        return []

    @property
    def batch_size(self) -> int:
        """Effective batch size (static, or the adaptive controller's)."""
        return self.flow.batch_size

    @property
    def max_batch_delay(self) -> float:
        """Effective flush-delay bound."""
        return self.flow.max_batch_delay

    @property
    def pending_batch_records(self) -> int:
        """Records accumulated but not yet flushed to a computing node."""
        return len(self._batch)

    def snapshot(self) -> dict:
        """JSON-able snapshot of the dispatcher's durable state.

        Captures everything replay cannot re-derive: the publication
        counter, the round-robin cursor, the dead set, the not-yet-
        released dummy schedule and the ingest counters.
        """
        return {
            "publication": self._publication,
            # next_cn/dead_nodes are derived from the membership state;
            # kept for downgrade-readability of the journal.
            "next_cn": self.membership.snapshot()["cursor"],
            "dead_nodes": self.membership.down_ids,
            "membership": self.membership.snapshot(),
            "participants": sorted(self._participants),
            "dummy_schedule": [
                [fraction, encode_record(dummy)]
                for fraction, dummy in self._dummy_schedule
            ],
            "batch": [
                ["line", item]
                if isinstance(item, str)
                else ["record", encode_record(item)]
                for item in self._batch
            ],
            "records_dispatched": self.records_dispatched,
            "records_rerouted": self.records_rerouted,
            "dummies_generated": self.dummies_generated,
            "seq": self._seq,
            "flow": self.flow.snapshot(),
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` (crash recovery)."""
        self._publication = state["publication"]
        self.membership = Membership(self.config.num_computing_nodes)
        if "membership" in state:
            self.membership.restore(state["membership"])
        else:
            # Pre-membership snapshot: cursor + dead set over the
            # configured fleet.
            self.membership.restore_legacy(
                state["next_cn"], set(state["dead_nodes"])
            )
        self._participants = set(
            state.get("participants", self.membership.active_ids)
        )
        self._dummy_schedule = deque(
            (fraction, decode_record(payload))
            for fraction, payload in state["dummy_schedule"]
        )
        self._batch = [
            payload if kind == "line" else decode_record(payload)
            for kind, payload in state.get("batch", [])
        ]
        # Absolute flush deadlines do not survive a restart; the restored
        # batch's delay window re-arms from the next enqueue or poll.
        self._batch_opened = None
        self.records_dispatched = state["records_dispatched"]
        self.records_rerouted = state["records_rerouted"]
        self.dummies_generated = state["dummies_generated"]
        self._seq = state.get("seq", 0)
        # records_dispatched already counts the restored in-flight batch,
        # so its first item's ordinal is derivable.
        self._batch_ordinal = self.records_dispatched - len(self._batch)
        # Pre-flow snapshots carry no "flow" key; construction defaults
        # already match the config in that case.
        self.flow.restore(state.get("flow"))

    def end_publication(self) -> list[tuple[str, object]]:
        """Broadcast *publishing*; the caller immediately starts the next.

        Any dummies still scheduled are released first, then the in-flight
        batch is flushed (the *close* flush) — both strictly before the
        *publishing* broadcast, so the checking node sees the complete
        publication and no record crosses into the next one.
        """
        out = self.due_dummies(1.0)
        out.extend(self._flush(FLUSH_CLOSE))
        # Credits or not, the complete publication must reach the
        # computing nodes before the broadcast: release every deferred
        # batch and reset the credit window at the boundary.
        out.extend(self.flow.credits.drain())
        down = set(self.membership.down_ids)
        nodes = tuple(
            i for i in sorted(self._participants) if i not in down
        )
        message = PublishingMsg(
            self._publication,
            last_seq=self._seq - 1,
            epoch=self.membership.epoch,
            nodes=nodes,
        )
        out.extend((f"cn-{i}", message) for i in nodes)
        out.append(("checking", message))
        return out
