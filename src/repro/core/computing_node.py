"""A computing node (Section 5.3).

Performs the heavy per-record work in parallel with its ``k - 1`` siblings:
parse the raw line, compute the O(1) leaf offset, encrypt, and ship the
``<leaf offset, e-record>`` pair to the checking node.  While waiting for
the checking node's *done* message at a publication boundary, freshly
arriving records of the next publication are still processed but buffered
locally, so no ingest capacity is lost during publishing.
"""

from __future__ import annotations

from repro.core.config import FresqueConfig
from repro.core.messages import (
    CnPublishing,
    DoneMsg,
    Pair,
    PairBatch,
    RawBatch,
    RawData,
)
from repro.crypto.cipher import RecordCipher, record_nonce
from repro.index.domain import DomainError
from repro.records.record import EncryptedRecord, Record, RecordError
from repro.records.serialize import parse_raw_line, serialize_record
from repro.telemetry.context import coalesce


class ComputingNode:
    """One parser/encrypter worker.

    Parameters
    ----------
    node_id:
        Index of this node (0-based; its address is ``cn-<node_id>``).
    config:
        Deployment configuration.
    cipher:
        Record cipher shared with the client.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; times the
        ``parse`` and ``encrypt`` stages per record.
    """

    def __init__(
        self,
        node_id: int,
        config: FresqueConfig,
        cipher: RecordCipher,
        telemetry=None,
    ):
        self.node_id = node_id
        self.config = config
        self.cipher = cipher
        self.parsed = 0
        self.encrypted = 0
        self.bytes_out = 0
        self.rejected = 0
        self._tel = coalesce(telemetry)
        node_label = f"cn-{node_id}"
        self._rejected_counter = self._tel.counter(
            "cn_rejected_total", node=node_label
        )
        self._bytes_counter = self._tel.counter(
            "cn_bytes_total", node=node_label
        )
        self._held_gauge = self._tel.gauge("cn_held_pairs", node=node_label)
        self._waiting_done = False
        #: The publication whose *done* is awaited (``None`` otherwise).
        self._publishing: int | None = None
        # While waiting for *done*, events are held in arrival order:
        # ("pair", Pair) entries and ("publishing", publication) markers.
        # Order matters — a publishing acknowledgement must not overtake
        # the pairs of its own publication, or the checking node would
        # finalise before receiving them (the Section 5.3 consistency
        # condition).  The one exception is a pair *of the awaited
        # publication itself* (a crash redispatch absorbed from a dead
        # sibling): its acknowledgement is already out, finalisation is
        # waiting on exactly these pairs, and holding them would
        # deadlock — they ship immediately.
        self._held: list[tuple[str, object]] = []

    @property
    def waiting_for_done(self) -> bool:
        """Whether the node is between *publishing* and *done*."""
        return self._waiting_done

    @property
    def held_pairs(self) -> int:
        """Pairs buffered locally while waiting for *done*."""
        total = 0
        for kind, payload in self._held:
            if kind == "pair":
                total += 1
            elif kind == "batch":
                total += len(payload.pairs)
        return total

    def _process(self, message: RawData) -> Pair:
        tel = self._tel
        if message.record is not None:
            record: Record = message.record
        else:
            start = tel.now()
            record = parse_raw_line(message.line, self.config.schema)
            self.parsed += 1
            tel.observe_stage("parse", message.publication, start)
        leaf_offset = self.config.domain.leaf_offset(
            record.indexed_value(self.config.schema)
        )
        start = tel.now()
        ciphertext = self.cipher.encrypt(
            serialize_record(record, self.config.schema)
        )
        tel.observe_stage("encrypt", message.publication, start)
        self.encrypted += 1
        self.bytes_out += len(ciphertext)
        self._bytes_counter.inc(len(ciphertext))
        return Pair(
            publication=message.publication,
            leaf_offset=leaf_offset,
            encrypted=EncryptedRecord(
                leaf_offset=leaf_offset,
                ciphertext=ciphertext,
                publication=message.publication,
            ),
            dummy=record.is_dummy,
        )

    def on_raw(self, message: RawData) -> list[tuple[str, object]]:
        """Parse + offset + encrypt one record; forward or hold the pair.

        Malformed lines and out-of-domain values are dropped (counted in
        :attr:`rejected`): one bad data source must not take down a
        computing node or poison the publication.
        """
        try:
            pair = self._process(message)
        except (RecordError, DomainError, ValueError):
            self.rejected += 1
            self._rejected_counter.inc()
            return []
        if self._waiting_done and pair.publication != self._publishing:
            self._held.append(("pair", pair))
            if self._tel.enabled:
                self._held_gauge.set(self.held_pairs)
            return []
        return [("checking", pair)]

    def on_raw_batch(self, message: RawBatch) -> list[tuple[str, object]]:
        """Process one dispatched batch into one :class:`PairBatch`.

        The batched hot path: every item is parsed and offset-computed
        first, then the whole batch is encrypted through the cipher's
        multi-block fast path — one ``encrypt_batch`` call instead of one
        cipher call per record.  Per-item rejection semantics match
        :meth:`on_raw`: a malformed or out-of-domain item is dropped (and
        counted) without poisoning the rest of its batch, and — because a
        dropped item never reaches the cipher — without perturbing the IV
        sequence of the surviving records.
        """
        tel = self._tel
        schema = self.config.schema
        leaf_offset_of = self.config.domain.leaf_offset
        publication = message.publication
        start = tel.now()
        # ``index`` is the item's position within the dispatched batch;
        # with the batch's first-item ordinal it identifies the record
        # pipeline-wide, which keys its deterministic IV.  Rejected items
        # never reach the cipher, so (as in the counter path) they do not
        # perturb the IVs of the survivors — and because the ordinal is
        # global, neither does the batch layout (batch-size invariance).
        prepared: list[tuple[Record, int, bytes, int]] = []
        parsed = rejected = 0
        for index, item in enumerate(message.items):
            try:
                if isinstance(item, str):
                    record = parse_raw_line(item, schema)
                    parsed += 1
                else:
                    record = item
                leaf_offset = leaf_offset_of(record.indexed_value(schema))
                prepared.append(
                    (
                        record,
                        leaf_offset,
                        serialize_record(record, schema),
                        index,
                    )
                )
            except (RecordError, DomainError, ValueError):
                rejected += 1
        self.parsed += parsed
        if rejected:
            self.rejected += rejected
            self._rejected_counter.inc(rejected)
        tel.observe_stage("parse", publication, start)
        if not prepared:
            # Stamped transports still need the (empty) batch: the
            # checking-side reorder gate waits for every sequence number,
            # and an all-rejected batch must not stall it.
            if message.seq < 0:
                return []
            return self._ship(
                PairBatch(
                    publication,
                    (),
                    seq=message.seq,
                    epoch=message.epoch,
                    node=self.node_id,
                )
            )
        start = tel.now()
        plaintexts = [plaintext for _, _, plaintext, _ in prepared]
        if self.config.deterministic_ivs and message.ordinal >= 0:
            ciphertexts = self.cipher.encrypt_batch_seeded(
                plaintexts,
                [
                    record_nonce(message.ordinal + index)
                    for _, _, _, index in prepared
                ],
            )
        else:
            ciphertexts = self.cipher.encrypt_batch(plaintexts)
        tel.observe_stage("encrypt", publication, start)
        pairs = []
        bytes_out = 0
        for (record, leaf_offset, _, _), ciphertext in zip(
            prepared, ciphertexts
        ):
            bytes_out += len(ciphertext)
            pairs.append(
                Pair(
                    publication=publication,
                    leaf_offset=leaf_offset,
                    encrypted=EncryptedRecord(
                        leaf_offset=leaf_offset,
                        ciphertext=ciphertext,
                        publication=publication,
                    ),
                    dummy=record.is_dummy,
                )
            )
        self.encrypted += len(pairs)
        self.bytes_out += bytes_out
        self._bytes_counter.inc(bytes_out)
        return self._ship(
            PairBatch(
                publication,
                tuple(pairs),
                seq=message.seq,
                epoch=message.epoch,
                node=self.node_id,
            )
        )

    def _ship(self, batch: PairBatch) -> list[tuple[str, object]]:
        """Forward a pair batch, or hold it while waiting for *done*."""
        if self._waiting_done and batch.publication != self._publishing:
            self._held.append(("batch", batch))
            if self._tel.enabled:
                self._held_gauge.set(self.held_pairs)
            return []
        return [("checking", batch)]

    def on_publishing(self, publication: int) -> list[tuple[str, object]]:
        """The dispatcher closed ``publication``: tell the checking node.

        If the node is still waiting for a previous publication's *done*,
        the acknowledgement is queued behind the held pairs so the
        checking node never finalises a publication whose pairs this node
        has not yet forwarded.
        """
        if self._waiting_done:
            self._held.append(("publishing", publication))
            return []
        self._waiting_done = True
        self._publishing = publication
        return [("checking", CnPublishing(publication, self.node_id))]

    def on_done(self, message: DoneMsg) -> list[tuple[str, object]]:
        """The checking node finished publishing: replay held events.

        Pairs flush in order; the first queued *publishing* marker re-arms
        the wait (back-to-back publications pipeline correctly).

        A done for an *older* publication than the one currently waited
        on is a straggler addressed to a previous incarnation (elastic
        membership: the checking node releases every node the dispatcher
        broadcast to, which can include a node that crashed and rejoined
        meanwhile) — releasing the current hold on it would leak the
        next publication's pairs past the publishing barrier.
        """
        if (
            self._waiting_done
            and self._publishing is not None
            and message.publication < self._publishing
        ):
            return []
        self._waiting_done = False
        self._publishing = None
        out: list[tuple[str, object]] = []
        while self._held:
            kind, payload = self._held.pop(0)
            if kind in ("pair", "batch"):
                out.append(("checking", payload))
                continue
            out.append(("checking", CnPublishing(payload, self.node_id)))
            self._waiting_done = True
            self._publishing = payload
            break
        if self._tel.enabled:
            self._held_gauge.set(self.held_pairs)
        return out
