"""FRESQUE core: the paper's primary contribution.

The scalable ingestion architecture of Section 5 — dispatcher, computing
nodes, checking node (randomer + checker + updater over AL/ALN), merger and
the asynchronous publication protocol — plus a synchronous in-process
driver (:class:`FresqueSystem`) executing the exact component logic.
"""

from repro.core.checking import CheckingNode
from repro.core.computing_node import ComputingNode
from repro.core.config import ConfigError, FresqueConfig
from repro.core.dispatcher import Dispatcher
from repro.core.merger import MergeReport, Merger
from repro.core.randomer import Randomer
from repro.core.sharded import (
    CheckingShard,
    ShardedFresqueSystem,
    ShardedMerger,
    shard_of,
    sharded_capacity,
)
from repro.core.system import (
    CloudAdapter,
    CollectorAwareQueryTarget,
    FresqueSystem,
    PublicationSummary,
)

__all__ = [
    "CheckingNode",
    "CloudAdapter",
    "CollectorAwareQueryTarget",
    "ComputingNode",
    "ConfigError",
    "Dispatcher",
    "FresqueConfig",
    "FresqueSystem",
    "CheckingShard",
    "MergeReport",
    "Merger",
    "PublicationSummary",
    "Randomer",
    "ShardedFresqueSystem",
    "ShardedMerger",
    "shard_of",
    "sharded_capacity",
]
