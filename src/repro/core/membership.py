"""Elastic membership for the computing-node fleet (docs/PROTOCOL.md).

FRESQUE's scalability argument (paper Section 6) assumes the dispatcher
spreads records over a *fixed* set of computing nodes; degraded mode
(``Dispatcher.mark_node_down``) could only shrink that set.  This module
makes the fleet elastic: nodes can be admitted, retired, or rejoin after
a crash, all at runtime, without perturbing the record stream already in
flight.

The :class:`Membership` object is owned by the dispatcher and versions
the node set with a monotonically increasing *epoch*.  Every membership
transition — admit, retire, mark-down, rejoin — bumps the epoch, and
every :class:`~repro.core.messages.RawBatch` (and the
:class:`~repro.core.messages.PairBatch` a computing node derives from
it) is stamped with the epoch under which it was dispatched.  Batches
are *never* re-stamped: a crash redispatch forwards the same message
object, so its seq/ordinal/epoch stamps — the keys for order
restoration and deterministic IVs — survive the reroute.  Epochs
therefore version the membership, not the data; a batch stamped under
an old epoch stays valid after the fleet changes.

What the epoch buys is *staleness detection for crashed incarnations*:
when node ``i`` rejoins at epoch ``F``, the checking side records
``joined[i] = F`` and discards any pair batch produced by node ``i``
under an epoch ``< F`` — output of the node's previous incarnation that
was already covered by the crash redispatch (see
``CheckingNode._admit_epoch`` and the ordering gate's stale rule).

The round-robin dispatch cursor lives here too (it is membership state:
which node receives the next batch depends on who is active), so the
rest of the codebase cannot mutate dispatch weights behind the epoch's
back — pinned by the FRQ-E1102 lint rule.
"""

from __future__ import annotations

#: Node lifecycle states.
ACTIVE, RETIRED, DOWN = "active", "retired", "down"


def stale_for(floors: dict[int, int], message) -> bool:
    """Whether ``message`` is stale output of a crashed incarnation.

    ``floors`` maps node id → join-epoch floor
    (:attr:`Membership.join_epochs`, propagated by
    :class:`~repro.core.messages.MembershipMsg`).  A message whose
    ``epoch`` stamp is below its producing ``node``'s floor was emitted
    by that node's previous incarnation, and its records are already
    covered by the crash redispatch.  Unstamped messages (``epoch`` or
    ``node`` negative — the sync runtime, pre-membership peers, loose
    pairs) are never stale.  This is the single staleness predicate
    every consumer (checking node, checking shards, ordering gate)
    applies — FRQ-E1101 pins that no pair handler skips it.
    """
    epoch = getattr(message, "epoch", -1)
    node = getattr(message, "node", -1)
    if epoch < 0 or node < 0:
        return False
    return epoch < floors.get(node, 0)


class Membership:
    """Versioned membership of the computing-node fleet.

    Parameters
    ----------
    num_nodes:
        The initial fleet: nodes ``0 .. num_nodes - 1``, all active,
        all joined at epoch 0.
    """

    def __init__(self, num_nodes: int):
        if num_nodes <= 0:
            raise ValueError(f"need at least one computing node, got {num_nodes}")
        self._epoch = 0
        self._states: dict[int, str] = {i: ACTIVE for i in range(num_nodes)}
        #: Epoch at which each node last (re)joined the fleet.
        self._joined: dict[int, int] = {i: 0 for i in range(num_nodes)}
        # Round-robin cursor over the sorted id space; advancing past a
        # non-active id skips it without handing it a batch, matching
        # the pre-membership dispatcher's dead-node rotation exactly.
        self._next_cn = 0

    @property
    def epoch(self) -> int:
        """Current membership epoch (bumped by every transition)."""
        return self._epoch

    @property
    def ids(self) -> list[int]:
        """Every node id ever admitted, sorted (retired/down included)."""
        return sorted(self._states)

    @property
    def active_ids(self) -> list[int]:
        """Nodes currently in the dispatch rotation, sorted."""
        return [i for i in sorted(self._states) if self._states[i] == ACTIVE]

    @property
    def retired_ids(self) -> list[int]:
        """Nodes drained out of the rotation on purpose, sorted."""
        return [i for i in sorted(self._states) if self._states[i] == RETIRED]

    @property
    def down_ids(self) -> list[int]:
        """Nodes currently believed crashed, sorted."""
        return [i for i in sorted(self._states) if self._states[i] == DOWN]

    @property
    def join_epochs(self) -> dict[int, int]:
        """Node id → epoch of its most recent (re)join."""
        return dict(self._joined)

    def state_of(self, node_id: int) -> str:
        """Lifecycle state of ``node_id`` (raises for unknown ids)."""
        try:
            return self._states[node_id]
        except KeyError:
            raise ValueError(f"unknown computing node {node_id}") from None

    def _require_known(self, node_id: int) -> None:
        if node_id not in self._states:
            raise ValueError(f"unknown computing node {node_id}")

    def next_destination(self) -> str:
        """The next computing node's address, round robin over actives.

        Advances the cursor past retired and down ids without handing
        them a batch — byte-for-byte the rotation the pre-membership
        dispatcher ran over its dead set.
        """
        ids = sorted(self._states)
        for _ in range(len(ids)):
            node_id = ids[self._next_cn % len(ids)]
            self._next_cn = (self._next_cn + 1) % len(ids)
            if self._states[node_id] == ACTIVE:
                return f"cn-{node_id}"
        raise RuntimeError("every computing node is down")

    def admit(self, node_id: int | None = None) -> int:
        """Admit a node into the fleet; returns its id.

        ``node_id`` defaults to the lowest id never used.  Admission
        bumps the epoch; batches already stamped under the old epoch are
        untouched (they stay addressed and sequenced as dispatched).
        """
        if node_id is None:
            node_id = max(self._states) + 1
        elif node_id in self._states:
            raise ValueError(
                f"computing node {node_id} already admitted "
                f"({self._states[node_id]}); use rejoin for crashed nodes"
            )
        elif node_id < 0:
            raise ValueError(f"invalid computing node id {node_id}")
        self._epoch += 1
        self._states[node_id] = ACTIVE
        self._joined[node_id] = self._epoch
        return node_id

    def retire(self, node_id: int) -> None:
        """Drain ``node_id`` out of the rotation (planned removal).

        The node stays reachable: it still reports *publishing* for the
        interval it participated in and receives its final *done*.
        Retiring the last active node is refused — the fleet must keep
        ingesting.
        """
        self._require_known(node_id)
        if self._states[node_id] != ACTIVE:
            raise ValueError(
                f"computing node {node_id} is {self._states[node_id]}, "
                f"not active"
            )
        if len(self.active_ids) <= 1:
            raise RuntimeError("cannot retire the last active computing node")
        self._epoch += 1
        self._states[node_id] = RETIRED

    def mark_down(self, node_id: int) -> bool:
        """Record a crash; False when already down (idempotent).

        Raises ``RuntimeError`` when the crash leaves no active node —
        the same contract the pre-membership dead set enforced.
        """
        self._require_known(node_id)
        if self._states[node_id] == DOWN:
            return False
        self._epoch += 1
        self._states[node_id] = DOWN
        if not self.active_ids:
            raise RuntimeError("every computing node is down")
        return True

    def rejoin(self, node_id: int) -> None:
        """A crashed node returns, fresh, under a new join epoch.

        The join epoch is the staleness floor: pair batches the node's
        previous incarnation produced (stamped with an older epoch) are
        discarded by the checking side once the rejoin is known.
        """
        self._require_known(node_id)
        if self._states[node_id] != DOWN:
            raise ValueError(
                f"computing node {node_id} is {self._states[node_id]}, "
                f"not down"
            )
        self._epoch += 1
        self._states[node_id] = ACTIVE
        self._joined[node_id] = self._epoch

    def snapshot(self) -> dict:
        """JSON-able membership state (crash recovery)."""
        return {
            "epoch": self._epoch,
            "cursor": self._next_cn,
            "states": {str(i): state for i, state in self._states.items()},
            "joined": {str(i): epoch for i, epoch in self._joined.items()},
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`."""
        self._epoch = int(state["epoch"])
        self._next_cn = int(state["cursor"])
        self._states = {int(i): s for i, s in state["states"].items()}
        self._joined = {int(i): int(e) for i, e in state["joined"].items()}

    def restore_legacy(self, cursor: int, dead_nodes: set[int]) -> None:
        """Rebuild membership from a pre-membership dispatcher snapshot
        (round-robin cursor + dead set over the configured fleet)."""
        self._next_cn = int(cursor)
        for node_id in dead_nodes:
            if node_id in self._states and self._states[node_id] == ACTIVE:
                self._epoch += 1
                self._states[node_id] = DOWN
