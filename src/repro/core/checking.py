"""The checking node: randomer + checker + updater (Section 5.3).

Runs sequentially but every per-record task is O(1):

* incoming ``<leaf offset, e-record>`` pairs enter the randomer's fixed-size
  buffer; evicted pairs pass to the checker;
* the checker reads the pair's leaf offset ``i``: if ``ALN[i] < 0`` the
  record is *removed* (both ``ALN[i]`` and ``AL[i]`` incremented, pair sent
  to the merger), otherwise only ``AL[i]`` is incremented and the pair goes
  to the cloud;
* dummy pairs (recognised by the trusted-side flag) skip the arrays
  entirely and go straight to the cloud.

At a publication boundary — once *publishing* messages from **all**
computing nodes arrived — the node drains the randomer through the checker,
ships the final AL to the merger, publishes the shuffled residue to the
cloud and sends *done* back to the computing nodes.

Because publishing is asynchronous, state is kept per publication: pairs of
publication ``n + 1`` may arrive while ``n`` is still being finalised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import FresqueConfig
from repro.core.membership import stale_for
from repro.core.messages import (
    AlSnapshot,
    AnnouncePublication,
    BufferFlush,
    CnPublishing,
    CreditGrant,
    DoneMsg,
    MembershipMsg,
    NewPublication,
    NodeDown,
    Pair,
    PairBatch,
    PublishingMsg,
    RemovedRecord,
    TemplateMsg,
    ToCloudBatch,
    ToCloudPair,
)
from repro.core.randomer import Randomer
from repro.index.template import LeafArrays
from repro.records.codec import decode_encrypted, encode_encrypted
from repro.telemetry.context import coalesce


def _encode_pair(pair: Pair) -> dict:
    return {
        "pub": pair.publication,
        "leaf": pair.leaf_offset,
        "enc": encode_encrypted(pair.encrypted),
        "dummy": pair.dummy,
    }


def _decode_pair(payload: dict) -> Pair:
    return Pair(
        payload["pub"],
        payload["leaf"],
        decode_encrypted(payload["enc"]),
        dummy=payload["dummy"],
    )


@dataclass
class _PublicationState:
    """Per-publication randomer + arrays + boundary bookkeeping."""

    randomer: Randomer
    arrays: LeafArrays
    cn_reported: set[int] = field(default_factory=set)
    closed: bool = False
    #: The dispatcher's own *publishing* notice arrived — needed to
    #: finalise a publication whose only missing reports are dead nodes.
    interval_closed: bool = False
    #: Exact node set this publication waits on (``PublishingMsg.nodes``
    #: under elastic membership); ``None`` falls back to counting against
    #: ``config.num_computing_nodes`` (pre-membership wire compatibility).
    expected: set[int] | None = None
    #: Nodes this publication will never hear from — seeded with the dead
    #: set at creation and only ever grown.  Monotone per publication: a
    #: node that *rejoins* later must not resurrect the wait, because its
    #: new incarnation never saw this publication's interval.
    absolved: set[int] = field(default_factory=set)


class CheckingNode:
    """The sequential trusted node hosting randomer, checker and updater.

    Parameters
    ----------
    config:
        Deployment configuration (buffer size, node count, domain).
    rng:
        Seeded randomness for the randomer.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; times the
        ``check`` stage per released pair and the ``publish`` stage per
        publication boundary, and tracks randomer occupancy.
    """

    def __init__(
        self,
        config: FresqueConfig,
        rng: random.Random | None = None,
        telemetry=None,
    ):
        self.config = config
        self._rng = rng if rng is not None else random.Random()
        self._publications: dict[int, _PublicationState] = {}
        self._early_pairs: dict[int, list[Pair]] = {}
        self._early_cn: dict[int, list[CnPublishing]] = {}
        self._dead_nodes: set[int] = set()
        # Elastic membership (docs/PROTOCOL.md): per-node join-epoch
        # floors.  A PairBatch stamped with an epoch *below* its
        # producer's floor is output of a crashed incarnation whose
        # records were already redispatched — it is discarded, not
        # processed twice.  ``_membership_epoch`` versions the full-state
        # MembershipMsg applies (older snapshots are ignored).
        self._node_epochs: dict[int, int] = {}
        self._membership_epoch = -1
        # Highest finalised publication: a CnPublishing at or below it
        # is a straggler (an absolved-but-live node whose report lost
        # the race against finalisation), not an early arrival to buffer.
        self._finalised_floor = -1
        self.stale_pairs_discarded = 0
        self.stale_batches_discarded = 0
        self.pairs_processed = 0
        self.dummies_passed = 0
        self.records_removed = 0
        self._tel = coalesce(telemetry)
        self._removed_counter = self._tel.counter("checking_removed_total")
        self._dummies_counter = self._tel.counter("checking_dummies_total")
        self._occupancy_gauge = self._tel.gauge("randomer_occupancy")
        # Credit-based backpressure (docs/BATCHING.md): grant the
        # records of every processed PairBatch back to the dispatcher.
        self._grant_credits = config.credit_window > 0
        self._credits_counter = self._tel.counter("checking_credits_total")

    def state_of(self, publication: int) -> _PublicationState:
        """Internal state of ``publication`` (for tests and metrics)."""
        return self._publications[publication]

    def buffered_pairs(self) -> list[tuple[int, int, object]]:
        """Pairs currently resident in the randomer buffers.

        Query processing must cover them (Section 5.3(c): records at the
        cloud, the randomer and the merger are returned to the client).
        Returns ``(publication, leaf offset, encrypted record)`` triples;
        dummies are included — the client filters them after decryption.
        """
        resident = []
        for publication, state in self._publications.items():
            for pair in state.randomer.residents:
                resident.append((publication, pair.leaf_offset, pair.encrypted))
        return resident

    def on_new_publication(
        self, message: NewPublication
    ) -> list[tuple[str, object]]:
        """Initialise AL/ALN, forward the template and announce the PN."""
        state = _PublicationState(
            randomer=Randomer(self.config.randomer_buffer_size, rng=self._rng),
            arrays=LeafArrays(message.plan.leaf_noise),
            absolved=set(self._dead_nodes),
        )
        self._publications[message.publication] = state
        out: list[tuple[str, object]] = [
            ("merger", TemplateMsg(message.publication, message.plan)),
            ("cloud", AnnouncePublication(message.publication)),
        ]
        # Replay anything that raced ahead of this announcement (possible
        # under the threaded runtime, where channels are per-sender).
        # Early batches were unpacked into individual pairs on arrival, so
        # replaying per pair reproduces the original arrival order exactly.
        for pair in self._early_pairs.pop(message.publication, ()):
            out.extend(self.on_pair(pair))
        for early in self._early_cn.pop(message.publication, ()):
            out.extend(self.on_cn_publishing(early))
        return out

    def _check(self, pair: Pair) -> tuple[str, object]:
        """Checker + updater for one released pair."""
        tel = self._tel
        start = tel.now()
        self.pairs_processed += 1
        if pair.dummy:
            self.dummies_passed += 1
            self._dummies_counter.inc()
            routed = (
                "cloud",
                ToCloudPair(pair.publication, pair.leaf_offset, pair.encrypted),
            )
            tel.observe_stage("check", pair.publication, start)
            return routed
        state = self._publications[pair.publication]
        result = state.arrays.check_and_update(pair.leaf_offset)
        if result.removed:
            self.records_removed += 1
            self._removed_counter.inc()
            routed = (
                "merger",
                RemovedRecord(pair.publication, pair.leaf_offset, pair.encrypted),
            )
        else:
            routed = (
                "cloud",
                ToCloudPair(pair.publication, pair.leaf_offset, pair.encrypted),
            )
        tel.observe_stage("check", pair.publication, start)
        return routed

    def _admit_epoch(self, message) -> bool:
        """Whether ``message`` passes the membership-epoch staleness check.

        Staleness is keyed by *producer*: a batch whose epoch stamp is
        below its producing node's join-epoch floor was emitted by that
        node's previous (crashed) incarnation, and its records are
        already covered by the crash redispatch.  Unstamped messages
        (``epoch`` or ``node`` negative — the sync runtime, pre-membership
        peers, loose pairs) always pass.
        """
        if not stale_for(self._node_epochs, message):
            return True
        self.stale_batches_discarded += 1
        self.stale_pairs_discarded += len(getattr(message, "pairs", ()))
        return False

    def on_pair(self, pair: Pair) -> list[tuple[str, object]]:
        """Buffer an arriving pair; process whatever the randomer evicts."""
        if not self._admit_epoch(pair):
            return []
        state = self._publications.get(pair.publication)
        if state is None:
            self._early_pairs.setdefault(pair.publication, []).append(pair)
            return []
        if state.closed:
            # A pair arriving after the flush (possible only if a computing
            # node mis-ordered its publishing message) bypasses the buffer.
            return [self._check(pair)]
        evicted = state.randomer.insert(pair)
        if self._tel.enabled:
            self._occupancy_gauge.set(len(state.randomer))
        if evicted is None:
            return []
        return [self._check(evicted)]

    def _check_bulk(
        self, publication: int, state: _PublicationState, pairs: list[Pair]
    ) -> tuple[list[tuple[str, object]], list[tuple[int, object]]]:
        """Checker + updater over a batch of released pairs.

        Returns ``(merger messages, released cloud items)``.  Dummies
        never touch the arrays, so the non-dummy subsequence is updated
        through one :meth:`LeafArrays.check_and_update_bulk` call — the
        per-pair decisions (and the resulting streams, in order) are
        exactly what per-pair :meth:`_check` calls would produce.
        """
        tel = self._tel
        start = tel.now()
        arrays = state.arrays
        real_offsets = [p.leaf_offset for p in pairs if not p.dummy]
        removed_flags = iter(
            arrays.check_and_update_bulk(real_offsets) if real_offsets else ()
        )
        merger_out: list[tuple[str, object]] = []
        cloud_items: list[tuple[int, object]] = []
        dummies = removed = 0
        for pair in pairs:
            if pair.dummy:
                dummies += 1
                cloud_items.append((pair.leaf_offset, pair.encrypted))
            elif next(removed_flags):
                removed += 1
                merger_out.append(
                    (
                        "merger",
                        RemovedRecord(
                            publication, pair.leaf_offset, pair.encrypted
                        ),
                    )
                )
            else:
                cloud_items.append((pair.leaf_offset, pair.encrypted))
        self.pairs_processed += len(pairs)
        if dummies:
            self.dummies_passed += dummies
            self._dummies_counter.inc(dummies)
        if removed:
            self.records_removed += removed
            self._removed_counter.inc(removed)
        tel.observe_stage("check", publication, start)
        return merger_out, cloud_items

    def on_pair_batch(self, message: PairBatch) -> list[tuple[str, object]]:
        """Buffer one batch; bulk-check everything the randomer releases.

        The pairs pass through the randomer strictly in batch order —
        each insert makes its own eviction draw, so the released stream
        (and therefore the final cloud state) is identical to delivering
        the same pairs one at a time.  Everything released to the cloud
        leaves as a single :class:`ToCloudBatch`; removed records still
        go to the merger individually (they are rare by construction —
        at most the negative leaf noise).
        """
        publication = message.publication
        admitted = self._admit_epoch(message)
        grant: list[tuple[str, object]] = []
        if self._grant_credits and message.pairs:
            # Grant on receipt: the batch reached the trusted node, so
            # its records no longer count against the dispatcher's
            # credit window — even while they sit in the randomer.  Stale
            # batches grant too: their records were charged against the
            # window by the crashed incarnation's dispatch.
            self._credits_counter.inc(len(message.pairs))
            grant.append(
                (
                    "dispatcher",
                    CreditGrant(publication, len(message.pairs)),
                )
            )
        if not admitted:
            # Output of a crashed incarnation — the redispatch already
            # re-covers these records; only the credits matter.
            return grant
        state = self._publications.get(publication)
        if state is None:
            self._early_pairs.setdefault(publication, []).extend(message.pairs)
            return grant
        if state.closed:
            released = list(message.pairs)
        else:
            randomer = state.randomer
            insert = randomer.insert
            released = [
                evicted
                for evicted in map(insert, message.pairs)
                if evicted is not None
            ]
            if self._tel.enabled:
                self._occupancy_gauge.set(len(randomer))
        if not released:
            return grant
        out, cloud_items = self._check_bulk(publication, state, released)
        if cloud_items:
            out.append(
                ("cloud", ToCloudBatch(publication, tuple(cloud_items)))
            )
        return grant + out

    def snapshot(self) -> dict:
        """JSON-able snapshot of per-publication progress.

        Captures, per open publication, the AL/ALN arrays, the randomer's
        resident pairs and the boundary bookkeeping, plus the early
        buffers and the dead set — everything a restarted checking node
        needs to continue mid-publication without reprocessing the
        records already released downstream.
        """
        return {
            "publications": {
                str(publication): {
                    "arrays": state.arrays.state(),
                    "residents": [
                        _encode_pair(pair)
                        for pair in state.randomer.residents
                    ],
                    "released": state.randomer.released,
                    "cn_reported": sorted(state.cn_reported),
                    "closed": state.closed,
                    "interval_closed": state.interval_closed,
                    "expected": (
                        None
                        if state.expected is None
                        else sorted(state.expected)
                    ),
                    "absolved": sorted(state.absolved),
                }
                for publication, state in self._publications.items()
            },
            "early_pairs": {
                str(publication): [_encode_pair(pair) for pair in pairs]
                for publication, pairs in self._early_pairs.items()
            },
            "early_cn": {
                str(publication): [
                    [message.publication, message.node_id]
                    for message in messages
                ]
                for publication, messages in self._early_cn.items()
            },
            "dead_nodes": sorted(self._dead_nodes),
            "node_epochs": {
                str(node): epoch
                for node, epoch in sorted(self._node_epochs.items())
            },
            "membership_epoch": self._membership_epoch,
            "finalised_floor": self._finalised_floor,
            "stale_pairs_discarded": self.stale_pairs_discarded,
            "stale_batches_discarded": self.stale_batches_discarded,
            "pairs_processed": self.pairs_processed,
            "dummies_passed": self.dummies_passed,
            "records_removed": self.records_removed,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` (crash recovery)."""
        self._publications = {}
        for key, saved in state["publications"].items():
            randomer = Randomer(
                self.config.randomer_buffer_size, rng=self._rng
            )
            randomer.restore(
                [_decode_pair(payload) for payload in saved["residents"]],
                released=saved["released"],
            )
            expected = saved.get("expected")
            self._publications[int(key)] = _PublicationState(
                randomer=randomer,
                arrays=LeafArrays.from_state(saved["arrays"]),
                cn_reported=set(saved["cn_reported"]),
                closed=saved["closed"],
                interval_closed=saved["interval_closed"],
                expected=None if expected is None else set(expected),
                absolved=set(saved.get("absolved", ())),
            )
        self._early_pairs = {
            int(key): [_decode_pair(payload) for payload in pairs]
            for key, pairs in state["early_pairs"].items()
        }
        self._early_cn = {
            int(key): [
                CnPublishing(publication, node_id)
                for publication, node_id in messages
            ]
            for key, messages in state["early_cn"].items()
        }
        self._dead_nodes = set(state["dead_nodes"])
        self._node_epochs = {
            int(node): epoch
            for node, epoch in state.get("node_epochs", {}).items()
        }
        self._membership_epoch = state.get("membership_epoch", -1)
        self._finalised_floor = state.get("finalised_floor", -1)
        self.stale_pairs_discarded = state.get("stale_pairs_discarded", 0)
        self.stale_batches_discarded = state.get("stale_batches_discarded", 0)
        self.pairs_processed = state["pairs_processed"]
        self.dummies_passed = state["dummies_passed"]
        self.records_removed = state["records_removed"]

    def on_publishing(
        self, publishing: int | PublishingMsg
    ) -> list[tuple[str, object]]:
        """The dispatcher's own *publishing* notice.

        With every node live this is informational only — finalisation
        waits for the per-computing-node messages, which is the
        publication-consistency condition of Section 5.3.  In degraded
        mode it marks the interval closed, which (together with the
        dead set) can itself complete the publication.

        Accepts the full :class:`PublishingMsg` or (legacy call sites) a
        bare publication number.  When the message carries a non-empty
        ``nodes`` tuple it pins this publication's *expected* report set
        — the exact participants the dispatcher broadcast to — so elastic
        fleets finalise against the true membership, not a static count.
        """
        publication = publishing
        nodes: tuple[int, ...] = ()
        if isinstance(publishing, PublishingMsg):
            publication = publishing.publication
            nodes = publishing.nodes
        state = self._publications.get(publication)
        if state is None or state.closed:
            return []
        if nodes:
            state.expected = set(nodes)
        state.interval_closed = True
        if self._complete(state):
            return self._finalise(publication)
        return []

    def _complete(self, state: _PublicationState) -> bool:
        """The relaxed consistency condition: every *expected* computing
        node reported, and the interval is known to have ended (any
        ``CnPublishing`` implies it; a dead node's report is replaced by
        the dispatcher's own *publishing* notice).  With an explicit
        expected set (elastic membership) completion is exact; otherwise
        it falls back to counting against the configured fleet size."""
        if not (state.cn_reported or state.interval_closed):
            return False
        absolved = state.absolved | self._dead_nodes
        if state.expected is not None:
            return state.expected <= (state.cn_reported | absolved)
        reported = state.cn_reported | {
            i
            for i in absolved
            if 0 <= i < self.config.num_computing_nodes
        }
        return len(reported) >= self.config.num_computing_nodes

    def on_membership(
        self, message: MembershipMsg
    ) -> list[tuple[str, object]]:
        """Apply a full-state membership snapshot from the dispatcher.

        Snapshots are versioned by epoch and apply monotonically: an
        older (reordered) snapshot is ignored.  Applying one raises the
        join-epoch floors (arming the stale-batch discard for rejoined
        nodes), absolves the currently-down nodes in every open
        publication, and replaces the global dead set — a rejoined node
        leaves it, but stays absolved for publications opened before its
        rejoin (its new incarnation never saw their intervals).
        """
        if message.epoch <= self._membership_epoch:
            return []
        self._membership_epoch = message.epoch
        for node, epoch in message.joined:
            if epoch > self._node_epochs.get(node, 0):
                self._node_epochs[node] = epoch
        down = set(message.down)
        for state in self._publications.values():
            state.absolved |= down
        self._dead_nodes = down
        out: list[tuple[str, object]] = []
        for publication in sorted(self._publications):
            state = self._publications[publication]
            if not state.closed and self._complete(state):
                out.extend(self._finalise(publication))
        return out

    def on_cn_publishing(
        self, message: CnPublishing
    ) -> list[tuple[str, object]]:
        """Track per-node *publishing*; finalise when all nodes reported."""
        state = self._publications.get(message.publication)
        if state is None:
            if message.publication <= self._finalised_floor:
                # Straggler: absolution completed the publication before
                # this (live, absolved) node's report was consumed.
                return []
            self._early_cn.setdefault(message.publication, []).append(message)
            return []
        state.cn_reported.add(message.node_id)
        if state.closed or not self._complete(state):
            return []
        return self._finalise(message.publication)

    def on_node_down(self, message: NodeDown) -> list[tuple[str, object]]:
        """A computing node died: stop waiting for its reports.

        The dead set is global — it applies to the carried publication
        and every later one.  Any open publication whose remaining
        missing reports are all dead nodes finalises immediately.
        """
        self._dead_nodes.add(message.node_id)
        out: list[tuple[str, object]] = []
        for publication in sorted(self._publications):
            state = self._publications[publication]
            if not state.closed and self._complete(state):
                out.extend(self._finalise(publication))
        return out

    def _finalise(self, publication: int) -> list[tuple[str, object]]:
        """Drain the buffer, ship AL, flush to cloud, release the CNs."""
        start = self._tel.now()
        state = self._publications[publication]
        state.closed = True
        out, flush_pairs = self._check_bulk(
            publication, state, state.randomer.flush()
        )
        # The flush must be enqueued to the cloud *before* the AL reaches
        # the merger: the cloud's FIFO inbox then guarantees every pair is
        # stored (and its metadata cached) before the merger's publication
        # triggers the matching process.  With the opposite order the
        # merger can race ahead under the threaded runtime and match an
        # incomplete publication.
        out.append(("cloud", BufferFlush(publication, tuple(flush_pairs))))
        out.append(
            ("merger", AlSnapshot(publication, tuple(state.arrays.snapshot())))
        )
        done = DoneMsg(publication)
        if state.expected is not None:
            # ``expected`` is exactly the set the dispatcher broadcast
            # *publishing* to, so every live member holds pairs against
            # this DoneMsg and must be released — absolution only
            # waives a node's report, it does not mean the node is
            # absent (a rejoined node stays absolved for publications
            # opened before its rejoin yet still entered this one's
            # publishing window).  Withholding the done would leave it
            # holding every later publication's output forever.
            recipients = sorted(state.expected - self._dead_nodes)
        else:
            recipients = [
                i
                for i in range(self.config.num_computing_nodes)
                if i not in self._dead_nodes
            ]
        out.extend((f"cn-{i}", done) for i in recipients)
        del self._publications[publication]
        self._finalised_floor = max(self._finalised_floor, publication)
        self._tel.observe_stage("publish", publication, start)
        return out
