"""The channel abstraction between component outboxes and transports.

Every FRESQUE component is a pure handler: message in, routed
``(destination, message)`` outbox out.  A :class:`Channel` is where an
outbox goes — the seam between the protocol and a concrete transport.
The synchronous system's pump, the threaded runtime's queues, the TCP
router and the shared-memory rings are all channels in this sense;
:class:`CallbackChannel` adapts any ``send(destination, message)``
callable, and :class:`~repro.runtime.shm.channel.ShmChannel` writes
frames into ring buffers.

Drivers written against this interface (``channel.send_all(outbox)``)
run unchanged over any transport.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable


class Channel(ABC):
    """Where a component's routed outbox is delivered."""

    @abstractmethod
    def send(self, destination: str, message) -> bool:
        """Deliver one message; ``False`` if the destination is gone.

        A ``False`` return is the transport's backpressure-with-death
        signal (e.g. the consumer process died mid-send); the driver
        decides whether to redispatch or raise.
        """

    def send_all(self, outbox: Iterable[tuple[str, object]]) -> None:
        """Deliver a whole outbox in order."""
        for destination, message in outbox:
            self.send(destination, message)

    def close(self) -> None:
        """Release transport resources (optional)."""


class CallbackChannel(Channel):
    """Adapts a plain ``send(destination, message)`` callable."""

    def __init__(self, callback):
        self._callback = callback

    def send(self, destination: str, message) -> bool:
        self._callback(destination, message)
        return True
