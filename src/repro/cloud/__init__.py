"""Untrusted cloud substrate: storage, metadata, matching, query engine."""

from repro.cloud.filestore import FileBackedStore
from repro.cloud.matching import (
    LeafPointers,
    MatchStats,
    match_with_metadata,
    match_with_table,
)
from repro.cloud.metadata import MetadataCache
from repro.cloud.node import (
    CloudError,
    FresqueCloud,
    MatchingTableCloud,
    PublicationReceipt,
)
from repro.cloud.query_engine import (
    CloudQueryEngine,
    PublishedDataset,
    QueryResult,
)
from repro.cloud.storage import (
    EncryptedStore,
    PhysicalAddress,
    PublicationFile,
    StorageError,
)

__all__ = [
    "CloudError",
    "CloudQueryEngine",
    "EncryptedStore",
    "FileBackedStore",
    "FresqueCloud",
    "LeafPointers",
    "MatchStats",
    "MatchingTableCloud",
    "MetadataCache",
    "PhysicalAddress",
    "PublicationFile",
    "PublicationReceipt",
    "PublishedDataset",
    "QueryResult",
    "StorageError",
    "match_with_metadata",
    "match_with_table",
]
