"""The untrusted cloud node.

Receives publication-number announcements, streams of encrypted records,
and end-of-interval publications (secure index + overflow arrays), runs the
matching process, and serves range queries.  Two variants mirror the two
systems under comparison:

* :class:`FresqueCloud` — pairs are ``<leaf offset, e-record>``; matching
  walks the in-memory metadata cache (Section 5.3).
* :class:`MatchingTableCloud` — pairs are ``<random tag, e-record>``
  (PINED-RQ++); matching reads records back from disk using the published
  matching table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.matching import (
    MatchStats,
    match_with_metadata,
    match_with_table,
)
from repro.cloud.metadata import MetadataCache
from repro.cloud.query_engine import (
    CloudQueryEngine,
    PublishedDataset,
    QueryResult,
)
from repro.cloud.storage import EncryptedStore, PhysicalAddress
from repro.index.domain import AttributeDomain
from repro.index.overflow import OverflowArray
from repro.index.query import RangeQuery
from repro.index.tree import IndexTree
from repro.records.record import EncryptedRecord
from repro.telemetry.context import coalesce


@dataclass(frozen=True)
class PublicationReceipt:
    """Returned by the cloud when a publication finishes matching."""

    publication: int
    records_matched: int
    stats: MatchStats


class CloudError(RuntimeError):
    """Raised on protocol violations (unknown publication, double publish)."""


class _BaseCloud:
    """State shared by both cloud variants."""

    def __init__(self, domain: AttributeDomain, telemetry=None):
        self.domain = domain
        self.store = EncryptedStore()
        self.engine = CloudQueryEngine(domain, self.store)
        self._active: set[int] = set()
        self._done: set[int] = set()
        self._tel = coalesce(telemetry)
        self._pairs_counter = self._tel.counter("cloud_pairs_total")
        self._bytes_counter = self._tel.counter("cloud_bytes_total")

    def announce_publication(self, publication: int) -> None:
        """Handle a new publication number: open a fresh storage file."""
        if publication in self._active or publication in self._done:
            raise CloudError(f"publication {publication} already announced")
        self._active.add(publication)
        self.store.create_file(publication)
        self.engine.open_publication(publication)

    def _require_active(self, publication: int) -> None:
        if publication not in self._active:
            raise CloudError(f"publication {publication} is not active")

    def _install(
        self,
        publication: int,
        tree: IndexTree,
        pointers,
        overflow: dict[int, OverflowArray],
        stats: MatchStats,
    ) -> PublicationReceipt:
        self.engine.publish(
            PublishedDataset(
                publication=publication,
                tree=tree,
                pointers=pointers,
                overflow=overflow,
                file_id=publication,
            )
        )
        self._active.discard(publication)
        self._done.add(publication)
        return PublicationReceipt(
            publication=publication, records_matched=stats.records, stats=stats
        )

    def query(self, query: RangeQuery) -> QueryResult:
        """Serve a client range query."""
        return self.engine.query(query)


class FresqueCloud(_BaseCloud):
    """Cloud in FRESQUE mode: leaf-offset pairs and metadata matching."""

    def __init__(self, domain: AttributeDomain, telemetry=None):
        super().__init__(domain, telemetry=telemetry)
        self._metadata: dict[int, MetadataCache] = {}

    def announce_publication(self, publication: int) -> None:
        super().announce_publication(publication)
        self._metadata[publication] = MetadataCache(publication)

    def receive_pair(
        self, publication: int, leaf_offset: int, record: EncryptedRecord
    ) -> PhysicalAddress:
        """Store one arriving pair and cache its metadata."""
        self._require_active(publication)
        address = self.store.write(publication, record)
        self._metadata[publication].add(leaf_offset, address)
        self.engine.add_unindexed(publication, leaf_offset, record)
        self._pairs_counter.inc()
        self._bytes_counter.inc(len(record.ciphertext))
        return address

    def receive_publication(
        self,
        publication: int,
        tree: IndexTree,
        overflow: dict[int, OverflowArray],
    ) -> PublicationReceipt:
        """Match the arriving secure index against the metadata cache."""
        start = self._tel.now()
        self._require_active(publication)
        cache = self._metadata.pop(publication)
        pointers, stats = match_with_metadata(cache)
        receipt = self._install(publication, tree, pointers, overflow, stats)
        self._tel.observe_stage("match", publication, start)
        self._tel.close_publication(publication)
        return receipt


class MatchingTableCloud(_BaseCloud):
    """Cloud in PINED-RQ++ mode: random tags and read-back matching."""

    def __init__(self, domain: AttributeDomain, telemetry=None):
        super().__init__(domain, telemetry=telemetry)
        self._tags: dict[int, dict[int, PhysicalAddress]] = {}

    def announce_publication(self, publication: int) -> None:
        super().announce_publication(publication)
        self._tags[publication] = {}

    def receive_tagged(
        self, publication: int, tag: int, record: EncryptedRecord
    ) -> PhysicalAddress:
        """Store one arriving ``<id, e-record>`` pair."""
        self._require_active(publication)
        address = self.store.write(publication, record)
        self._tags[publication][tag] = address
        self._pairs_counter.inc()
        self._bytes_counter.inc(len(record.ciphertext))
        return address

    def receive_publication(
        self,
        publication: int,
        tree: IndexTree,
        overflow: dict[int, OverflowArray],
        matching_table: dict[int, int],
    ) -> PublicationReceipt:
        """Run the read-back matching process with the published table."""
        start = self._tel.now()
        self._require_active(publication)
        tag_addresses = self._tags.pop(publication)
        pointers, stats = match_with_table(
            self.store, publication, tag_addresses, matching_table
        )
        receipt = self._install(publication, tree, pointers, overflow, stats)
        self._tel.observe_stage("match", publication, start)
        self._tel.close_publication(publication)
        return receipt
