"""The untrusted cloud node.

Receives publication-number announcements, streams of encrypted records,
and end-of-interval publications (secure index + overflow arrays), runs the
matching process, and serves range queries.  Two variants mirror the two
systems under comparison:

* :class:`FresqueCloud` — pairs are ``<leaf offset, e-record>``; matching
  walks the in-memory metadata cache (Section 5.3).
* :class:`MatchingTableCloud` — pairs are ``<random tag, e-record>``
  (PINED-RQ++); matching reads records back from disk using the published
  matching table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.matching import (
    MatchStats,
    match_with_metadata,
    match_with_table,
)
from repro.cloud.metadata import MetadataCache
from repro.cloud.query_engine import (
    CloudQueryEngine,
    PublishedDataset,
    QueryResult,
)
from repro.cloud.storage import EncryptedStore, PhysicalAddress
from repro.index.domain import AttributeDomain
from repro.index.overflow import OverflowArray
from repro.index.query import RangeQuery
from repro.index.tree import IndexTree
from repro.records.record import EncryptedRecord
from repro.telemetry.context import coalesce


@dataclass(frozen=True)
class PublicationReceipt:
    """Returned by the cloud when a publication finishes matching."""

    publication: int
    records_matched: int
    stats: MatchStats


class CloudError(RuntimeError):
    """Raised on protocol violations (unknown publication, double publish)."""


class _BaseCloud:
    """State shared by both cloud variants.

    Parameters
    ----------
    domain:
        The indexed attribute's domain.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`.
    store:
        Record store; the in-memory :class:`EncryptedStore` by default, a
        :class:`~repro.cloud.filestore.FileBackedStore` (ideally in
        durable mode) for deployments that must survive a cloud restart.

    Redelivery semantics: a crashed-and-recovered collector replays its
    journal, so the cloud may see a publication *again*.  Publication
    numbers are monotonic and never reused, which makes dedupe trivial:
    anything arriving for an already-*published* number is dropped (and
    counted), turning the collector's at-least-once replay into
    exactly-once publication.
    """

    def __init__(self, domain: AttributeDomain, telemetry=None, store=None):
        self.domain = domain
        self.store = store if store is not None else EncryptedStore()
        self.engine = CloudQueryEngine(domain, self.store)
        self._active: set[int] = set()
        self._done: set[int] = set()
        self._receipts: dict[int, PublicationReceipt] = {}
        #: Redelivered messages dropped by the dedupe (monitoring).
        self.duplicate_publications = 0
        self.duplicate_pairs = 0
        self._tel = coalesce(telemetry)
        self._pairs_counter = self._tel.counter("cloud_pairs_total")
        self._bytes_counter = self._tel.counter("cloud_bytes_total")
        self._duplicates_counter = self._tel.counter(
            "cloud_duplicates_dropped_total"
        )

    def announce_publication(self, publication: int) -> None:
        """Handle a new publication number: open a fresh storage file.

        A re-announcement of an already-*published* number is a replay
        artefact and is dropped; re-announcing an *active* one is a
        protocol violation (numbers are handed out monotonically by one
        dispatcher) and still raises.
        """
        if publication in self._done:
            self.duplicate_publications += 1
            self._duplicates_counter.inc()
            return
        if publication in self._active:
            raise CloudError(f"publication {publication} already announced")
        self._active.add(publication)
        self.store.create_file(publication)
        self.engine.open_publication(publication)

    def is_published(self, publication: int) -> bool:
        """Whether ``publication`` has completed its matching process."""
        return publication in self._done

    def is_announced(self, publication: int) -> bool:
        """Whether ``publication`` has been announced (active or done)."""
        return publication in self._active or publication in self._done

    def receipt_for(self, publication: int) -> PublicationReceipt | None:
        """The stored receipt of a published publication, if any."""
        return self._receipts.get(publication)

    def reset_publication(self, publication: int) -> bool:
        """Discard every trace of an *in-flight* publication.

        Crash recovery calls this before replaying a publication from
        its journalled start, so replayed pairs append into a fresh file
        instead of duplicating the pre-crash partial ones.  Returns
        ``False`` (and does nothing) if the publication already
        published — the replay is then deduped instead.
        """
        if publication in self._done:
            return False
        self._active.discard(publication)
        self.store.discard_file(publication)
        self.engine.discard_publication(publication)
        return True

    def _require_active(self, publication: int) -> None:
        if publication not in self._active:
            raise CloudError(f"publication {publication} is not active")

    def _install(
        self,
        publication: int,
        tree: IndexTree,
        pointers,
        overflow: dict[int, OverflowArray],
        stats: MatchStats,
    ) -> PublicationReceipt:
        self.engine.publish(
            PublishedDataset(
                publication=publication,
                tree=tree,
                pointers=pointers,
                overflow=overflow,
                file_id=publication,
            )
        )
        commit = getattr(self.store, "commit", None)
        if commit is not None:
            # Durable stores make the publication's file crash-proof the
            # moment the index is installed (fsync + atomic rename).
            commit(publication)
        self._active.discard(publication)
        self._done.add(publication)
        receipt = PublicationReceipt(
            publication=publication, records_matched=stats.records, stats=stats
        )
        self._receipts[publication] = receipt
        return receipt

    def query(self, query: RangeQuery) -> QueryResult:
        """Serve a client range query."""
        return self.engine.query(query)


class FresqueCloud(_BaseCloud):
    """Cloud in FRESQUE mode: leaf-offset pairs and metadata matching."""

    def __init__(self, domain: AttributeDomain, telemetry=None, store=None):
        super().__init__(domain, telemetry=telemetry, store=store)
        self._metadata: dict[int, MetadataCache] = {}

    def announce_publication(self, publication: int) -> None:
        super().announce_publication(publication)
        if publication in self._active:
            self._metadata[publication] = MetadataCache(publication)

    def reset_publication(self, publication: int) -> bool:
        if not super().reset_publication(publication):
            return False
        self._metadata.pop(publication, None)
        return True

    def pair_count(self, publication: int) -> int:
        """Pairs received so far for an in-flight publication."""
        self._require_active(publication)
        return self._metadata[publication].entry_count

    def truncate_publication(self, publication: int, count: int) -> int:
        """Trim an in-flight publication to its first ``count`` pairs.

        Crash recovery's mid-publication path: the collector checkpoint
        proves exactly ``count`` pairs were delivered before the
        snapshot; anything beyond is pre-crash work the replay will
        regenerate.  Returns the number of pairs dropped.
        """
        self._require_active(publication)
        dropped = self._metadata[publication].truncate(count)
        self.store.truncate_records(publication, count)
        self.engine.truncate_unindexed(publication, count)
        return dropped

    def receive_pair(
        self, publication: int, leaf_offset: int, record: EncryptedRecord
    ) -> PhysicalAddress | None:
        """Store one arriving pair and cache its metadata.

        Pairs of an already-published publication are replay duplicates:
        dropped, counted, ``None`` returned.
        """
        if publication in self._done:
            self.duplicate_pairs += 1
            self._duplicates_counter.inc()
            return None
        self._require_active(publication)
        address = self.store.write(publication, record)
        self._metadata[publication].add(leaf_offset, address)
        self.engine.add_unindexed(publication, leaf_offset, record)
        self._pairs_counter.inc()
        self._bytes_counter.inc(len(record.ciphertext))
        return address

    def receive_pairs(
        self, publication: int, pairs
    ) -> list[PhysicalAddress | None]:
        """Store a batch of ``(leaf offset, e-record)`` pairs in order.

        One message-level entry point per :class:`ToCloudBatch` /
        :class:`BufferFlush`; the per-pair bookkeeping (store write,
        metadata cache, unindexed query coverage, duplicate dedupe) is
        exactly :meth:`receive_pair`'s, with the publication checks and
        attribute lookups hoisted out of the loop.
        """
        if publication in self._done:
            count = len(pairs)
            self.duplicate_pairs += count
            self._duplicates_counter.inc(count)
            return [None] * count
        self._require_active(publication)
        write = self.store.write
        add_metadata = self._metadata[publication].add
        add_unindexed = self.engine.add_unindexed
        addresses = []
        total_bytes = 0
        for leaf_offset, record in pairs:
            address = write(publication, record)
            add_metadata(leaf_offset, address)
            add_unindexed(publication, leaf_offset, record)
            total_bytes += len(record.ciphertext)
            addresses.append(address)
        self._pairs_counter.inc(len(addresses))
        self._bytes_counter.inc(total_bytes)
        return addresses

    def receive_publication(
        self,
        publication: int,
        tree: IndexTree,
        overflow: dict[int, OverflowArray],
    ) -> PublicationReceipt:
        """Match the arriving secure index against the metadata cache.

        A redelivered publication (same monotonic number) is deduped:
        the stored receipt is returned and nothing is re-matched.
        """
        if publication in self._done:
            self.duplicate_publications += 1
            self._duplicates_counter.inc()
            return self._receipts[publication]
        start = self._tel.now()
        self._require_active(publication)
        cache = self._metadata.pop(publication)
        pointers, stats = match_with_metadata(cache)
        receipt = self._install(publication, tree, pointers, overflow, stats)
        self._tel.observe_stage("match", publication, start)
        self._tel.close_publication(publication)
        return receipt


class MatchingTableCloud(_BaseCloud):
    """Cloud in PINED-RQ++ mode: random tags and read-back matching."""

    def __init__(self, domain: AttributeDomain, telemetry=None, store=None):
        super().__init__(domain, telemetry=telemetry, store=store)
        self._tags: dict[int, dict[int, PhysicalAddress]] = {}

    def announce_publication(self, publication: int) -> None:
        super().announce_publication(publication)
        if publication in self._active:
            self._tags[publication] = {}

    def reset_publication(self, publication: int) -> bool:
        if not super().reset_publication(publication):
            return False
        self._tags.pop(publication, None)
        return True

    def receive_tagged(
        self, publication: int, tag: int, record: EncryptedRecord
    ) -> PhysicalAddress:
        """Store one arriving ``<id, e-record>`` pair."""
        self._require_active(publication)
        address = self.store.write(publication, record)
        self._tags[publication][tag] = address
        self._pairs_counter.inc()
        self._bytes_counter.inc(len(record.ciphertext))
        return address

    def receive_publication(
        self,
        publication: int,
        tree: IndexTree,
        overflow: dict[int, OverflowArray],
        matching_table: dict[int, int],
    ) -> PublicationReceipt:
        """Run the read-back matching process with the published table."""
        start = self._tel.now()
        self._require_active(publication)
        tag_addresses = self._tags.pop(publication)
        pointers, stats = match_with_table(
            self.store, publication, tag_addresses, matching_table
        )
        receipt = self._install(publication, tree, pointers, overflow, stats)
        self._tel.observe_stage("match", publication, start)
        self._tel.close_publication(publication)
        return receipt
