"""Cloud-side range query evaluation.

A query is evaluated over both *indexed* data (published datasets, via the
secure index traversal of Section 4.1) and *unindexed* data (records of the
in-flight publication, filtered one by one on their cleartext leaf offset —
Section 5.3(c)).  The cloud only ever touches ciphertexts and leaf offsets;
decryption and final filtering happen at the client.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.matching import LeafPointers
from repro.cloud.storage import EncryptedStore
from repro.index.domain import AttributeDomain
from repro.index.overflow import OverflowArray
from repro.index.query import RangeQuery, traverse
from repro.index.tree import IndexTree
from repro.records.record import EncryptedRecord


@dataclass
class PublishedDataset:
    """One fully published publication at the cloud.

    Parameters
    ----------
    publication:
        Monotonic publication number.
    tree:
        The secure (noisy) index tree.
    pointers:
        Leaf-to-record pointers assembled by the matching process.
    overflow:
        Per-leaf sealed overflow arrays.
    file_id:
        The storage file holding this publication's records.
    """

    publication: int
    tree: IndexTree
    pointers: LeafPointers
    overflow: dict[int, OverflowArray]
    file_id: int


@dataclass(frozen=True)
class QueryResult:
    """Encrypted result set returned to the client.

    Parameters
    ----------
    indexed:
        Records reached through published indexes.
    overflow:
        Overflow-array entries of every touched leaf (contain the removed
        records, padded with dummies).
    unindexed:
        Records of in-flight publications whose leaf offset overlaps the
        query.
    nodes_visited:
        Total index nodes inspected (query-cost metric).
    """

    indexed: tuple[EncryptedRecord, ...]
    overflow: tuple[EncryptedRecord, ...]
    unindexed: tuple[EncryptedRecord, ...]
    nodes_visited: int

    def all_records(self) -> tuple[EncryptedRecord, ...]:
        """Every ciphertext the client must decrypt."""
        return self.indexed + self.overflow + self.unindexed


@dataclass
class _InFlight:
    """Unindexed pairs of a publication whose index has not arrived yet."""

    publication: int
    pairs: list[tuple[int, EncryptedRecord]] = field(default_factory=list)


class CloudQueryEngine:
    """Evaluates range queries over published and in-flight data."""

    def __init__(self, domain: AttributeDomain, store: EncryptedStore):
        self._domain = domain
        self._store = store
        self._published: list[PublishedDataset] = []
        self._in_flight: dict[int, _InFlight] = {}

    @property
    def published(self) -> tuple[PublishedDataset, ...]:
        """Publications whose secure index has been matched."""
        return tuple(self._published)

    def in_flight_pairs(self) -> list[tuple[int, EncryptedRecord]]:
        """``(leaf offset, e-record)`` pairs of every in-flight publication.

        These are records already stored at the cloud whose publication's
        secure index has not arrived yet — the unindexed set of
        Section 5.3(c).
        """
        pairs: list[tuple[int, EncryptedRecord]] = []
        for in_flight in self._in_flight.values():
            pairs.extend(in_flight.pairs)
        return pairs

    def open_publication(self, publication: int) -> None:
        """Start tracking unindexed pairs for a new publication."""
        self._in_flight.setdefault(publication, _InFlight(publication))

    def add_unindexed(
        self, publication: int, leaf_offset: int, record: EncryptedRecord
    ) -> None:
        """Register one arriving pair of an unpublished publication."""
        self.open_publication(publication)
        self._in_flight[publication].pairs.append((leaf_offset, record))

    def publish(self, dataset: PublishedDataset) -> None:
        """Install a matched publication; its pairs stop being unindexed."""
        self._published.append(dataset)
        self._in_flight.pop(dataset.publication, None)

    def discard_publication(self, publication: int) -> None:
        """Drop an in-flight publication's unindexed pairs entirely
        (crash recovery replays the publication from scratch)."""
        self._in_flight.pop(publication, None)

    def truncate_unindexed(self, publication: int, count: int) -> int:
        """Trim an in-flight publication to its first ``count`` pairs."""
        in_flight = self._in_flight.get(publication)
        if in_flight is None:
            if count == 0:
                return 0
            raise KeyError(f"publication {publication} is not in flight")
        if count < 0 or count > len(in_flight.pairs):
            raise ValueError(
                f"cannot truncate {len(in_flight.pairs)} unindexed pairs "
                f"to {count}"
            )
        dropped = len(in_flight.pairs) - count
        in_flight.pairs = in_flight.pairs[:count]
        return dropped

    def query(self, query: RangeQuery) -> QueryResult:
        """Evaluate a range query over everything the cloud holds."""
        indexed: list[EncryptedRecord] = []
        overflow: list[EncryptedRecord] = []
        nodes_visited = 0
        for dataset in self._published:
            result = traverse(dataset.tree, query)
            nodes_visited += result.nodes_visited
            for leaf_offset in result.leaf_offsets:
                for address in dataset.pointers.addresses(leaf_offset):
                    indexed.append(self._store.read(address))
                array = dataset.overflow.get(leaf_offset)
                if array is not None:
                    overflow.extend(array.entries)
        overlapping = set(self._domain.leaves_overlapping(query.low, query.high))
        unindexed = [
            record
            for in_flight in self._in_flight.values()
            for leaf_offset, record in in_flight.pairs
            if leaf_offset in overlapping
        ]
        return QueryResult(
            indexed=tuple(indexed),
            overflow=tuple(overflow),
            unindexed=tuple(unindexed),
            nodes_visited=nodes_visited,
        )
