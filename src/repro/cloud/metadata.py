"""The cloud's in-memory metadata cache.

FRESQUE's cloud avoids re-reading published records from disk at matching
time: as each ``<leaf offset, e-record>`` pair arrives, the record goes to
disk and a ``<leaf offset, physical location>`` entry is cached in memory,
organised as ``leaf offset -> list of physical locations`` (Section 5.3,
Cloud).  The cache is destroyed after the matching process.
"""

from __future__ import annotations

from repro.cloud.storage import PhysicalAddress


class MetadataCache:
    """``leaf offset -> [physical locations]`` for one in-flight publication."""

    def __init__(self, publication: int):
        self.publication = publication
        self._by_leaf: dict[int, list[PhysicalAddress]] = {}
        # Arrival order, kept so crash recovery can trim the cache back
        # to a checkpoint's pair count (truncate()).
        self._log: list[tuple[int, PhysicalAddress]] = []
        self._entries = 0
        self._destroyed = False

    @property
    def entry_count(self) -> int:
        """Number of cached addresses."""
        return self._entries

    @property
    def is_destroyed(self) -> bool:
        """Whether the cache was dropped after matching."""
        return self._destroyed

    def add(self, leaf_offset: int, address: PhysicalAddress) -> None:
        """Cache one arriving record's location under its leaf offset."""
        if self._destroyed:
            raise RuntimeError("metadata cache already destroyed")
        self._by_leaf.setdefault(leaf_offset, []).append(address)
        self._log.append((leaf_offset, address))
        self._entries += 1

    def truncate(self, count: int) -> int:
        """Keep only the first ``count`` arrivals; return entries dropped.

        Used by crash recovery to roll an in-flight publication's cache
        back to the collector checkpoint it resumes from.
        """
        if count < 0 or count > len(self._log):
            raise ValueError(
                f"cannot truncate {len(self._log)} cached entries to {count}"
            )
        dropped = len(self._log) - count
        self._log = self._log[:count]
        self._by_leaf = {}
        for leaf_offset, address in self._log:
            self._by_leaf.setdefault(leaf_offset, []).append(address)
        self._entries = count
        return dropped

    def addresses_for(self, leaf_offset: int) -> list[PhysicalAddress]:
        """Locations cached for ``leaf_offset`` (empty list if none)."""
        return list(self._by_leaf.get(leaf_offset, ()))

    def items(self):
        """Iterate ``(leaf_offset, [addresses])`` pairs."""
        return self._by_leaf.items()

    def size_bytes(self) -> int:
        """Approximate memory footprint: the paper stresses the metadata is
        small and independent of e-record size — one (int, address) entry
        per record, modelled at 24 bytes each."""
        return 24 * self._entries

    def destroy(self) -> None:
        """Drop the cache (after the matching process completes)."""
        self._by_leaf.clear()
        self._log.clear()
        self._destroyed = True
