"""Matching processes: associating published indexes with stored records.

When the secure index of a publication arrives, the cloud must connect each
index leaf to the e-records (already on disk) that belong to it:

* **FRESQUE** walks the in-memory :class:`~repro.cloud.metadata.MetadataCache`
  — no disk I/O, time independent of record sizes (Figure 15 shows ≤54 ms
  even for 5M-record publications);
* **PINED-RQ++** stored ``<random tag, e-record>`` pairs and must read every
  published record back from disk, look its tag up in the *matching table*,
  and write it back — time grows linearly with the publication (≈78 s at 5M
  records in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.metadata import MetadataCache
from repro.cloud.storage import EncryptedStore, PhysicalAddress


@dataclass(frozen=True)
class MatchStats:
    """Work performed by one matching process (consumed by the cost model)."""

    records: int
    bytes_read: int
    bytes_written: int
    table_lookups: int


@dataclass
class LeafPointers:
    """Pointers from index leaves to stored records for one publication."""

    by_leaf: dict[int, list[PhysicalAddress]] = field(default_factory=dict)

    def add(self, leaf_offset: int, address: PhysicalAddress) -> None:
        """Attach one record address to a leaf."""
        self.by_leaf.setdefault(leaf_offset, []).append(address)

    def addresses(self, leaf_offset: int) -> list[PhysicalAddress]:
        """Record addresses for ``leaf_offset`` (empty if none)."""
        return list(self.by_leaf.get(leaf_offset, ()))

    @property
    def total(self) -> int:
        """Total pointers across all leaves."""
        return sum(len(addresses) for addresses in self.by_leaf.values())


def match_with_metadata(cache: MetadataCache) -> tuple[LeafPointers, MatchStats]:
    """FRESQUE's matching: a pure in-memory walk of the metadata cache.

    The cache is destroyed afterwards, as the paper specifies.
    """
    pointers = LeafPointers()
    records = 0
    for leaf_offset, addresses in cache.items():
        for address in addresses:
            pointers.add(leaf_offset, address)
            records += 1
    cache.destroy()
    return pointers, MatchStats(
        records=records, bytes_read=0, bytes_written=0, table_lookups=0
    )


def match_with_table(
    store: EncryptedStore,
    file_id: int,
    tag_addresses: dict[int, PhysicalAddress],
    matching_table: dict[int, int],
) -> tuple[LeafPointers, MatchStats]:
    """PINED-RQ++'s matching: read back, look up the tag, write back.

    Parameters
    ----------
    store:
        The cloud's encrypted store (charged for the read-back I/O).
    file_id:
        The publication file to match.
    tag_addresses:
        ``random tag -> address`` recorded as pairs arrived.
    matching_table:
        ``random tag -> leaf offset`` published by the collector at the end
        of the interval.

    Unknown tags (records of dummies whose leaf the table omits) are skipped;
    the paper's matching table covers every published record, so in practice
    every tag resolves.
    """
    pointers = LeafPointers()
    bytes_moved = 0
    lookups = 0
    matched = 0
    for tag, address in tag_addresses.items():
        record = store.read(address)
        bytes_moved += len(record)
        lookups += 1
        leaf_offset = matching_table.get(tag)
        if leaf_offset is None:
            continue
        pointers.add(leaf_offset, address)
        matched += 1
    return pointers, MatchStats(
        records=matched,
        bytes_read=bytes_moved,
        bytes_written=bytes_moved,
        table_lookups=lookups,
    )
