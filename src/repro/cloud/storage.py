"""The cloud's encrypted record store.

Arriving ``<leaf offset, e-record>`` pairs are appended to a per-publication
*file* and identified by a :class:`PhysicalAddress` (Section 5.3, Cloud).
The store is in-memory but accounts for bytes written/read so the simulator
and the matching-time experiments (Figure 15) can charge realistic I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.records.record import EncryptedRecord


@dataclass(frozen=True)
class PhysicalAddress:
    """Disk location of one encrypted record: (file, byte offset)."""

    file_id: int
    offset: int
    length: int


class StorageError(KeyError):
    """Raised for reads of unknown files or addresses."""


class PublicationFile:
    """Append-only storage file holding one publication's records."""

    def __init__(self, file_id: int):
        self.file_id = file_id
        self._records: list[EncryptedRecord] = []
        self._offsets: list[int] = []
        self._size = 0

    @property
    def size_bytes(self) -> int:
        """Total bytes stored in this file."""
        return self._size

    @property
    def record_count(self) -> int:
        """Number of records in this file."""
        return len(self._records)

    def append(self, record: EncryptedRecord) -> PhysicalAddress:
        """Write one record at the end of the file, returning its address."""
        address = PhysicalAddress(
            file_id=self.file_id, offset=self._size, length=len(record)
        )
        self._offsets.append(self._size)
        self._records.append(record)
        self._size += len(record)
        return address

    def read(self, address: PhysicalAddress) -> EncryptedRecord:
        """Read the record at ``address``.

        Raises
        ------
        StorageError
            If the address does not identify a stored record.
        """
        if address.file_id != self.file_id:
            raise StorageError(
                f"address file {address.file_id} != file {self.file_id}"
            )
        # Binary search over the sorted offsets.
        lo, hi = 0, len(self._offsets)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._offsets[mid] < address.offset:
                lo = mid + 1
            else:
                hi = mid
        if lo >= len(self._offsets) or self._offsets[lo] != address.offset:
            raise StorageError(f"no record at offset {address.offset}")
        return self._records[lo]

    def scan(self):
        """Iterate ``(address, record)`` pairs in write order."""
        for offset, record in zip(self._offsets, self._records):
            yield (
                PhysicalAddress(self.file_id, offset, len(record)),
                record,
            )

    def truncate(self, count: int) -> int:
        """Keep only the first ``count`` records; return records dropped.

        Crash recovery trims an in-flight publication back to the pairs
        covered by the collector's checkpoint, so replayed records append
        without duplication.
        """
        if count < 0 or count > len(self._records):
            raise StorageError(
                f"cannot truncate file {self.file_id} to {count} of "
                f"{len(self._records)} records"
            )
        dropped = len(self._records) - count
        self._records = self._records[:count]
        self._offsets = self._offsets[:count]
        self._size = (
            self._offsets[-1] + len(self._records[-1]) if count else 0
        )
        return dropped


class EncryptedStore:
    """All publication files at the cloud, plus I/O accounting."""

    def __init__(self):
        self._files: dict[int, PublicationFile] = {}
        self.bytes_written = 0
        self.bytes_read = 0
        self.write_ops = 0
        self.read_ops = 0

    def create_file(self, file_id: int) -> PublicationFile:
        """Open a fresh file for a new publication.

        Raises
        ------
        StorageError
            If the file id is already in use.
        """
        if file_id in self._files:
            raise StorageError(f"file {file_id} already exists")
        handle = PublicationFile(file_id)
        self._files[file_id] = handle
        return handle

    def file(self, file_id: int) -> PublicationFile:
        """Look up an existing file."""
        if file_id not in self._files:
            raise StorageError(f"no file {file_id}")
        return self._files[file_id]

    def write(self, file_id: int, record: EncryptedRecord) -> PhysicalAddress:
        """Append ``record`` to ``file_id``, creating the file if needed."""
        handle = self._files.get(file_id)
        if handle is None:
            handle = self.create_file(file_id)
        address = handle.append(record)
        self.bytes_written += len(record)
        self.write_ops += 1
        return address

    def read(self, address: PhysicalAddress) -> EncryptedRecord:
        """Read one record, charging the I/O counters."""
        record = self.file(address.file_id).read(address)
        self.bytes_read += len(record)
        self.read_ops += 1
        return record

    def discard_file(self, file_id: int) -> None:
        """Drop ``file_id`` entirely (crash recovery: an uncheckpointed
        in-flight publication is replayed from its journalled start, so
        its partial contents are discarded and the file re-created)."""
        self._files.pop(file_id, None)

    def truncate_records(self, file_id: int, count: int) -> int:
        """Trim ``file_id`` to its first ``count`` records."""
        return self.file(file_id).truncate(count)

    @property
    def total_bytes(self) -> int:
        """Bytes across all files (storage-overhead metric)."""
        return sum(handle.size_bytes for handle in self._files.values())
