"""File-backed encrypted store.

The in-memory :class:`~repro.cloud.storage.EncryptedStore` models the
cloud's disk with byte accounting; this variant actually writes each
publication to a file on disk — one append-only file per publication, the
record layout being ``length (uint32) | ciphertext`` — so durability,
re-opening, and real read-back I/O can be exercised.  It implements the
same interface, making it a drop-in for :class:`FresqueCloud`.
"""

from __future__ import annotations

import pathlib
import struct

from repro.cloud.storage import PhysicalAddress, StorageError
from repro.records.record import EncryptedRecord

_LENGTH = struct.Struct("<I")


class FileBackedStore:
    """Encrypted record store persisting to real files.

    Parameters
    ----------
    directory:
        Directory holding one ``publication-<id>.dat`` file per
        publication; created if missing.
    """

    def __init__(self, directory: str | pathlib.Path):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handles: dict[int, object] = {}
        self._sizes: dict[int, int] = {}
        self.bytes_written = 0
        self.bytes_read = 0
        self.write_ops = 0
        self.read_ops = 0

    def _path(self, file_id: int) -> pathlib.Path:
        return self.directory / f"publication-{file_id}.dat"

    def create_file(self, file_id: int) -> None:
        """Open a fresh publication file.

        Raises
        ------
        StorageError
            If the publication file already exists.
        """
        if file_id in self._handles or self._path(file_id).exists():
            raise StorageError(f"file {file_id} already exists")
        self._handles[file_id] = open(self._path(file_id), "w+b")
        self._sizes[file_id] = 0

    def _handle(self, file_id: int):
        handle = self._handles.get(file_id)
        if handle is None:
            path = self._path(file_id)
            if not path.exists():
                raise StorageError(f"no file {file_id}")
            handle = open(path, "r+b")
            self._handles[file_id] = handle
            self._sizes[file_id] = path.stat().st_size
        return handle

    def write(self, file_id: int, record: EncryptedRecord) -> PhysicalAddress:
        """Append one record, returning its physical address."""
        if file_id not in self._handles and not self._path(file_id).exists():
            self.create_file(file_id)
        handle = self._handle(file_id)
        offset = self._sizes[file_id]
        handle.seek(offset)
        payload = _LENGTH.pack(len(record.ciphertext)) + record.ciphertext
        handle.write(payload)
        self._sizes[file_id] = offset + len(payload)
        self.bytes_written += len(record.ciphertext)
        self.write_ops += 1
        return PhysicalAddress(
            file_id=file_id, offset=offset, length=len(record.ciphertext)
        )

    def read(self, address: PhysicalAddress) -> EncryptedRecord:
        """Read one record back from disk.

        Raises
        ------
        StorageError
            If the address does not point at a valid record header.
        """
        handle = self._handle(address.file_id)
        handle.seek(address.offset)
        header = handle.read(_LENGTH.size)
        if len(header) != _LENGTH.size:
            raise StorageError(f"no record at offset {address.offset}")
        (length,) = _LENGTH.unpack(header)
        if length != address.length:
            raise StorageError(
                f"length mismatch at {address.offset}: stored {length}, "
                f"address says {address.length}"
            )
        ciphertext = handle.read(length)
        if len(ciphertext) != length:
            raise StorageError("truncated record body")
        self.bytes_read += length
        self.read_ops += 1
        return EncryptedRecord(leaf_offset=None, ciphertext=ciphertext)

    def scan(self, file_id: int):
        """Iterate ``(address, record)`` pairs of one publication file."""
        handle = self._handle(file_id)
        offset = 0
        size = self._sizes[file_id]
        while offset < size:
            handle.seek(offset)
            (length,) = _LENGTH.unpack(handle.read(_LENGTH.size))
            ciphertext = handle.read(length)
            yield (
                PhysicalAddress(file_id, offset, length),
                EncryptedRecord(leaf_offset=None, ciphertext=ciphertext),
            )
            offset += _LENGTH.size + length

    def file_size(self, file_id: int) -> int:
        """Bytes currently in one publication file."""
        if file_id not in self._sizes:
            raise StorageError(f"no file {file_id}")
        return self._sizes[file_id]

    @property
    def total_bytes(self) -> int:
        """Payload bytes across all files."""
        return self.bytes_written

    def close(self) -> None:
        """Close every open file handle."""
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()

    def __enter__(self) -> "FileBackedStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
