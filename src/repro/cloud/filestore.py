"""File-backed encrypted store.

The in-memory :class:`~repro.cloud.storage.EncryptedStore` models the
cloud's disk with byte accounting; this variant actually writes each
publication to a file on disk — one append-only file per publication, the
record layout being ``length (uint32) | ciphertext`` — so durability,
re-opening, and real read-back I/O can be exercised.  It implements the
same interface, making it a drop-in for :class:`FresqueCloud`.

Durable mode (``durable=True``) adds the crash discipline the plain mode
lacks:

* **atomic create** — a new publication is written to
  ``publication-<id>.dat.tmp`` and only renamed to its final name by
  :meth:`commit` (after fsync), so a half-written publication can never
  be mistaken for a published one.  Leftover ``.tmp`` files found when
  the store re-opens are discarded: the recovered collector replays the
  publication from its journal.
* **fsync on publish** — :meth:`commit` flushes and ``fsync``'s the
  file before the rename, and :meth:`close` syncs dirty handles instead
  of silently dropping buffered tail bytes.
"""

from __future__ import annotations

import os
import pathlib
import struct

from repro.cloud.storage import PhysicalAddress, StorageError
from repro.records.record import EncryptedRecord

_LENGTH = struct.Struct("<I")


class FileBackedStore:
    """Encrypted record store persisting to real files.

    Parameters
    ----------
    directory:
        Directory holding one ``publication-<id>.dat`` file per
        publication; created if missing.
    durable:
        Enable the atomic-create + fsync-on-publish discipline.  Opening
        a durable store discards uncommitted ``.tmp`` publications left
        by a crash.
    """

    def __init__(self, directory: str | pathlib.Path, *, durable: bool = False):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.durable = durable
        self._handles: dict[int, object] = {}
        self._sizes: dict[int, int] = {}
        #: File ids written since their last flush-to-disk.
        self._dirty: set[int] = set()
        #: File ids still living under their ``.tmp`` create path.
        self._uncommitted: set[int] = set()
        self.bytes_written = 0
        self.bytes_read = 0
        self.write_ops = 0
        self.read_ops = 0
        self.discarded_tmp_files = 0
        if durable:
            for stale in self.directory.glob("publication-*.dat.tmp"):
                stale.unlink()
                self.discarded_tmp_files += 1

    def _path(self, file_id: int) -> pathlib.Path:
        return self.directory / f"publication-{file_id}.dat"

    def _tmp_path(self, file_id: int) -> pathlib.Path:
        return self.directory / f"publication-{file_id}.dat.tmp"

    def create_file(self, file_id: int) -> None:
        """Open a fresh publication file.

        In durable mode the file is created under its ``.tmp`` name and
        only reaches the final name via :meth:`commit`.

        Raises
        ------
        StorageError
            If the publication file already exists.
        """
        if file_id in self._handles or self._path(file_id).exists():
            raise StorageError(f"file {file_id} already exists")
        if self.durable:
            self._uncommitted.add(file_id)
            path = self._tmp_path(file_id)
        else:
            path = self._path(file_id)
        self._handles[file_id] = open(path, "w+b")
        self._sizes[file_id] = 0

    def _handle(self, file_id: int):
        handle = self._handles.get(file_id)
        if handle is None:
            path = self._path(file_id)
            if not path.exists():
                raise StorageError(f"no file {file_id}")
            handle = open(path, "r+b")
            self._handles[file_id] = handle
            self._sizes[file_id] = path.stat().st_size
        return handle

    def write(self, file_id: int, record: EncryptedRecord) -> PhysicalAddress:
        """Append one record, returning its physical address."""
        if file_id not in self._handles and not self._path(file_id).exists():
            self.create_file(file_id)
        handle = self._handle(file_id)
        offset = self._sizes[file_id]
        handle.seek(offset)
        payload = _LENGTH.pack(len(record.ciphertext)) + record.ciphertext
        handle.write(payload)
        self._sizes[file_id] = offset + len(payload)
        self._dirty.add(file_id)
        self.bytes_written += len(record.ciphertext)
        self.write_ops += 1
        return PhysicalAddress(
            file_id=file_id, offset=offset, length=len(record.ciphertext)
        )

    def commit(self, file_id: int) -> None:
        """Make one publication file crash-proof (durable mode).

        Flush + fsync the handle; if the file was created in this
        process, atomically rename it from ``.tmp`` to its final name
        and fsync the directory so the rename itself is durable.  A
        replayed publication therefore either fully exists under its
        final name or not at all — never as a torn hybrid.
        """
        handle = self._handle(file_id)
        handle.flush()
        if not self.durable:
            return
        os.fsync(handle.fileno())
        self._dirty.discard(file_id)
        if file_id in self._uncommitted:
            os.replace(self._tmp_path(file_id), self._path(file_id))
            directory = os.open(self.directory, os.O_RDONLY)
            try:
                os.fsync(directory)
            finally:
                os.close(directory)
            self._uncommitted.discard(file_id)

    def discard_file(self, file_id: int) -> None:
        """Drop one publication file entirely (crash-recovery replay)."""
        handle = self._handles.pop(file_id, None)
        if handle is not None:
            handle.close()
        self._sizes.pop(file_id, None)
        self._dirty.discard(file_id)
        for path in (self._tmp_path(file_id), self._path(file_id)):
            if path.exists():
                path.unlink()
        self._uncommitted.discard(file_id)

    def truncate_records(self, file_id: int, count: int) -> int:
        """Trim ``file_id`` to its first ``count`` records.

        Returns the number of records dropped.
        """
        handle = self._handle(file_id)
        handle.flush()
        offset = 0
        size = self._sizes[file_id]
        seen = 0
        while offset < size and seen < count:
            handle.seek(offset)
            (length,) = _LENGTH.unpack(handle.read(_LENGTH.size))
            offset += _LENGTH.size + length
            seen += 1
        if seen < count:
            raise StorageError(
                f"cannot truncate file {file_id} to {count} records: "
                f"only {seen} stored"
            )
        dropped = 0
        scan_offset = offset
        while scan_offset < size:
            handle.seek(scan_offset)
            (length,) = _LENGTH.unpack(handle.read(_LENGTH.size))
            scan_offset += _LENGTH.size + length
            dropped += 1
        handle.truncate(offset)
        self._sizes[file_id] = offset
        self._dirty.add(file_id)
        return dropped

    def read(self, address: PhysicalAddress) -> EncryptedRecord:
        """Read one record back from disk.

        Raises
        ------
        StorageError
            If the address does not point at a valid record header.
        """
        handle = self._handle(address.file_id)
        handle.seek(address.offset)
        header = handle.read(_LENGTH.size)
        if len(header) != _LENGTH.size:
            raise StorageError(f"no record at offset {address.offset}")
        (length,) = _LENGTH.unpack(header)
        if length != address.length:
            raise StorageError(
                f"length mismatch at {address.offset}: stored {length}, "
                f"address says {address.length}"
            )
        ciphertext = handle.read(length)
        if len(ciphertext) != length:
            raise StorageError("truncated record body")
        self.bytes_read += length
        self.read_ops += 1
        return EncryptedRecord(leaf_offset=None, ciphertext=ciphertext)

    def scan(self, file_id: int):
        """Iterate ``(address, record)`` pairs of one publication file."""
        handle = self._handle(file_id)
        offset = 0
        size = self._sizes[file_id]
        while offset < size:
            handle.seek(offset)
            (length,) = _LENGTH.unpack(handle.read(_LENGTH.size))
            ciphertext = handle.read(length)
            yield (
                PhysicalAddress(file_id, offset, length),
                EncryptedRecord(leaf_offset=None, ciphertext=ciphertext),
            )
            offset += _LENGTH.size + length

    def file_size(self, file_id: int) -> int:
        """Bytes currently in one publication file."""
        if file_id not in self._sizes:
            raise StorageError(f"no file {file_id}")
        return self._sizes[file_id]

    @property
    def total_bytes(self) -> int:
        """Payload bytes across all files."""
        return self.bytes_written

    def close(self) -> None:
        """Close every open file handle.

        Dirty handles are flushed first (and fsync'd in durable mode) so
        closing can never lose tail bytes that :meth:`write` reported as
        stored.
        """
        for file_id, handle in self._handles.items():
            if file_id in self._dirty:
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())
            handle.close()
        self._handles.clear()
        self._dirty.clear()

    def __enter__(self) -> "FileBackedStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
