"""Block cipher modes of operation.

Only CBC is provided: the paper's unified privacy model (Definition 3)
explicitly assumes AES in CBC mode as the semantically secure encryption
scheme.
"""

from __future__ import annotations

from repro.crypto.aes import BLOCK_SIZE, AesBlockCipher
from repro.crypto.padding import pad, unpad


def _xor_block(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def cbc_encrypt(cipher: AesBlockCipher, plaintext: bytes, iv: bytes) -> bytes:
    """Encrypt ``plaintext`` under CBC with PKCS#7 padding.

    Parameters
    ----------
    cipher:
        The underlying block cipher.
    plaintext:
        Arbitrary-length message.
    iv:
        16-byte initialisation vector; must be fresh and uniformly random
        per message for semantic security.
    """
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    padded = pad(plaintext, BLOCK_SIZE)
    blocks = []
    previous = iv
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = _xor_block(padded[offset : offset + BLOCK_SIZE], previous)
        previous = cipher.encrypt_block(block)
        blocks.append(previous)
    return b"".join(blocks)


def cbc_decrypt(cipher: AesBlockCipher, ciphertext: bytes, iv: bytes) -> bytes:
    """Decrypt a CBC ciphertext and strip PKCS#7 padding.

    Raises
    ------
    ValueError
        If the ciphertext is not a positive multiple of the block size.
    repro.crypto.padding.PaddingError
        If the recovered padding is invalid (wrong key or corrupt data).
    """
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE != 0:
        raise ValueError("ciphertext must be a non-empty block multiple")
    plaintext = bytearray()
    previous = iv
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[offset : offset + BLOCK_SIZE]
        plaintext += _xor_block(cipher.decrypt_block(block), previous)
        previous = block
    return unpad(bytes(plaintext), BLOCK_SIZE)
