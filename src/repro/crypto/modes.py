"""Block cipher modes of operation.

Only CBC is provided: the paper's unified privacy model (Definition 3)
explicitly assumes AES in CBC mode as the semantically secure encryption
scheme.
"""

from __future__ import annotations

from repro.crypto.aes import BLOCK_SIZE, AesBlockCipher
from repro.crypto.padding import pad, unpad


def _xor_block(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def cbc_encrypt(cipher: AesBlockCipher, plaintext: bytes, iv: bytes) -> bytes:
    """Encrypt ``plaintext`` under CBC with PKCS#7 padding.

    Parameters
    ----------
    cipher:
        The underlying block cipher.
    plaintext:
        Arbitrary-length message.
    iv:
        16-byte initialisation vector; must be fresh and uniformly random
        per message for semantic security.
    """
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    padded = pad(plaintext, BLOCK_SIZE)
    blocks = []
    previous = iv
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = _xor_block(padded[offset : offset + BLOCK_SIZE], previous)
        previous = cipher.encrypt_block(block)
        blocks.append(previous)
    return b"".join(blocks)


def cbc_encrypt_many(
    cipher: AesBlockCipher,
    plaintexts: list[bytes],
    ivs: list[bytes],
) -> list[bytes]:
    """CBC-encrypt a batch of messages with one block loop.

    Byte-identical to ``[cbc_encrypt(cipher, p, iv) for p, iv in
    zip(plaintexts, ivs)]`` — the chain restarts from each message's own
    IV — but the padded messages are concatenated into a single buffer
    and encrypted in one loop, so the per-message Python overhead
    (function calls, list setup, attribute lookups) is paid once per
    batch instead of once per record.
    """
    if len(plaintexts) != len(ivs):
        raise ValueError(
            f"{len(plaintexts)} plaintexts but {len(ivs)} IVs"
        )
    for iv in ivs:
        if len(iv) != BLOCK_SIZE:
            raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    padded = [pad(plaintext, BLOCK_SIZE) for plaintext in plaintexts]
    buffer = b"".join(padded)
    out = bytearray(len(buffer))
    encrypt_block = cipher.encrypt_block
    xor = _xor_block
    offset = 0
    boundaries = []
    for message, iv in zip(padded, ivs):
        end = offset + len(message)
        previous = iv
        while offset < end:
            previous = encrypt_block(
                xor(buffer[offset : offset + BLOCK_SIZE], previous)
            )
            out[offset : offset + BLOCK_SIZE] = previous
            offset += BLOCK_SIZE
        boundaries.append(end)
    ciphertexts = []
    start = 0
    for end in boundaries:
        ciphertexts.append(bytes(out[start:end]))
        start = end
    return ciphertexts


def cbc_decrypt(cipher: AesBlockCipher, ciphertext: bytes, iv: bytes) -> bytes:
    """Decrypt a CBC ciphertext and strip PKCS#7 padding.

    Raises
    ------
    ValueError
        If the ciphertext is not a positive multiple of the block size.
    repro.crypto.padding.PaddingError
        If the recovered padding is invalid (wrong key or corrupt data).
    """
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE != 0:
        raise ValueError("ciphertext must be a non-empty block multiple")
    plaintext = bytearray()
    previous = iv
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[offset : offset + BLOCK_SIZE]
        plaintext += _xor_block(cipher.decrypt_block(block), previous)
        previous = block
    return unpad(bytes(plaintext), BLOCK_SIZE)
