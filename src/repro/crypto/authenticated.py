"""Authenticated record encryption (encrypt-then-MAC).

The paper's honest-but-curious cloud never modifies data, so plain AES-CBC
suffices there.  This extension hardens the pipeline against a *malicious*
cloud (or a man-in-the-middle on the collector-cloud link) by appending an
HMAC-SHA256 tag over the ciphertext: the client then detects any
modification, reordering of CBC blocks, or truncation before decrypting.

Composable over any :class:`~repro.crypto.cipher.RecordCipher`, so both
the real AES cipher and the fast simulated cipher can be authenticated.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.cipher import DecryptionError, RecordCipher
from repro.crypto.keys import KeyStore

_TAG_BYTES = 32


class AuthenticationError(DecryptionError):
    """Raised when a ciphertext's MAC does not verify."""


class AuthenticatedCipher(RecordCipher):
    """Encrypt-then-MAC wrapper: ``inner_ciphertext || HMAC-SHA256``.

    Parameters
    ----------
    inner:
        The confidentiality cipher being wrapped.
    keys:
        Key store; the MAC key is derived under its own purpose label so
        it never overlaps the encryption key.
    """

    def __init__(self, inner: RecordCipher, keys: KeyStore):
        self._inner = inner
        self._mac_key = keys.derive("fresque/record-authentication")

    def _tag(self, ciphertext: bytes) -> bytes:
        return hmac.new(self._mac_key, ciphertext, hashlib.sha256).digest()

    def encrypt(self, plaintext: bytes) -> bytes:
        body = self._inner.encrypt(plaintext)
        return body + self._tag(body)

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < _TAG_BYTES + 32:
            raise AuthenticationError("ciphertext too short for a MAC tag")
        body, tag = ciphertext[:-_TAG_BYTES], ciphertext[-_TAG_BYTES:]
        if not hmac.compare_digest(self._tag(body), tag):
            raise AuthenticationError("MAC verification failed")
        return self._inner.decrypt(body)

    def ciphertext_length(self, plaintext_length: int) -> int:
        return self._inner.ciphertext_length(plaintext_length) + _TAG_BYTES
