"""Record cipher API used by every ingestion pipeline.

Two interchangeable implementations:

* :class:`AesCbcCipher` — real AES-CBC over the pure-Python block cipher;
  used by functional tests, examples and the threaded runtime, where
  correctness of the round trip matters.
* :class:`SimulatedCipher` — a fast stand-in that produces ciphertexts of the
  same length as AES-CBC would (IV + padded blocks) by keyed-stream XOR.  It
  preserves everything the system cares about structurally (length, dummy
  indistinguishability, decrypt-ability with the key) while making
  million-record simulations tractable in pure Python.  The *cost* of real
  AES is charged explicitly by the discrete-event simulator's cost model, so
  using the fast cipher does not distort performance results.

Both hide the record's dummy flag inside the ciphertext, as the paper
requires (an observer of ``<leaf offset, e-record>`` pairs cannot tell
dummies from real records).
"""

from __future__ import annotations

import hashlib
import threading
from abc import ABC, abstractmethod

from repro.crypto.aes import BLOCK_SIZE, AesBlockCipher
from repro.crypto.keys import KeyStore
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, cbc_encrypt_many
from repro.crypto.padding import PaddingError, pad, unpad


class DecryptionError(ValueError):
    """Raised when a ciphertext cannot be decrypted (wrong key / corrupt)."""


def record_nonce(ordinal: int) -> bytes:
    """Seeded-IV nonce for the record at global dispatch ``ordinal``.

    Namespaced (``rec``) so a record nonce can never collide with a
    :func:`padding_nonce` even when the integers coincide.
    """
    return b"rec" + ordinal.to_bytes(8, "little")


def padding_nonce(publication: int, counter: int) -> bytes:
    """Seeded-IV nonce for the merger's ``counter``-th padding dummy of
    ``publication``."""
    return (
        b"pad"
        + publication.to_bytes(8, "little")
        + counter.to_bytes(8, "little")
    )


class RecordCipher(ABC):
    """Encrypts and decrypts serialized record payloads."""

    @abstractmethod
    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext``; the result embeds the IV."""

    @abstractmethod
    def decrypt(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt`.

        Raises
        ------
        DecryptionError
            If the ciphertext is malformed or the padding check fails.
        """

    def encrypt_batch(self, plaintexts: list[bytes]) -> list[bytes]:
        """Encrypt a batch; byte-identical to mapping :meth:`encrypt`.

        The contract every implementation must honour (property-tested in
        ``tests/crypto/test_batch_encrypt.py``): the result equals
        ``[self.encrypt(p) for p in plaintexts]`` including IV order, so
        the batched ingest path produces the exact ciphertext stream of
        the per-record path.  Subclasses override this with a multi-block
        fast path; the base implementation is the semantic reference.
        """
        return [self.encrypt(plaintext) for plaintext in plaintexts]

    def encrypt_seeded(self, plaintext: bytes, nonce: bytes) -> bytes:
        """Encrypt with an IV derived deterministically from ``nonce``.

        The multiprocess runtimes use this (``config.deterministic_ivs``)
        so every worker derives the IV from the record's pipeline-wide
        identity (its dispatch ordinal) instead of a process-local
        counter: the ciphertext stream then does not depend on which
        process encrypted which record, which is what lets the
        shared-memory runtime reproduce the in-memory runtime's cloud
        state byte for byte.  The caller must never reuse a nonce for two
        different plaintext positions — uniqueness of the derived IV is
        the only requirement the construction inherits.
        """
        return self._encrypt_with_iv(plaintext, self.derive_iv(nonce))

    def encrypt_batch_seeded(
        self, plaintexts: list[bytes], nonces: list[bytes]
    ) -> list[bytes]:
        """Batch counterpart of :meth:`encrypt_seeded`, same contract as
        :meth:`encrypt_batch`: byte-identical to the mapped form."""
        if len(plaintexts) != len(nonces):
            raise ValueError("one nonce per plaintext is required")
        return [
            self.encrypt_seeded(plaintext, nonce)
            for plaintext, nonce in zip(plaintexts, nonces)
        ]

    def derive_iv(self, nonce: bytes) -> bytes:
        """The deterministic IV bound to ``nonce`` (domain-separated)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support seeded IVs"
        )

    def _encrypt_with_iv(self, plaintext: bytes, iv: bytes) -> bytes:
        raise NotImplementedError(
            f"{type(self).__name__} does not support seeded IVs"
        )

    def ciphertext_length(self, plaintext_length: int) -> int:
        """Length in bytes of the ciphertext for a given plaintext length.

        CBC with PKCS#7: one IV block plus the padded plaintext.
        """
        padded = plaintext_length + (BLOCK_SIZE - plaintext_length % BLOCK_SIZE)
        return BLOCK_SIZE + padded


class AesCbcCipher(RecordCipher):
    """AES-CBC with per-message random IV, the paper's encryption scheme.

    Parameters
    ----------
    keys:
        Key store shared between collector and client.
    """

    def __init__(self, keys: KeyStore):
        self._keys = keys
        self._block = AesBlockCipher(keys.record_key())
        self._iv_key = keys.derive("fresque/seeded-iv")

    def encrypt(self, plaintext: bytes) -> bytes:
        iv = self._keys.fresh_iv()
        return iv + cbc_encrypt(self._block, plaintext, iv)

    def derive_iv(self, nonce: bytes) -> bytes:
        # PRF of a never-reused nonce under a dedicated subkey — the IV
        # stays unpredictable to the cloud, which only requires that the
        # nonce assignment (dispatch ordinals) never repeats.
        return hashlib.sha256(self._iv_key + nonce).digest()[:BLOCK_SIZE]

    def _encrypt_with_iv(self, plaintext: bytes, iv: bytes) -> bytes:
        return iv + cbc_encrypt(self._block, plaintext, iv)

    def encrypt_batch(self, plaintexts: list[bytes]) -> list[bytes]:
        """Multi-block fast path: one CBC chain loop over the whole batch.

        Each message still gets its own fresh IV (its chain restarts
        there — the construction is unchanged), but the block loop runs
        once over a concatenated buffer instead of once per record.
        """
        ivs = [self._keys.fresh_iv() for _ in plaintexts]
        bodies = cbc_encrypt_many(self._block, plaintexts, ivs)
        return [iv + body for iv, body in zip(ivs, bodies)]

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < 2 * BLOCK_SIZE:
            raise DecryptionError("ciphertext shorter than IV + one block")
        iv, body = ciphertext[:BLOCK_SIZE], ciphertext[BLOCK_SIZE:]
        try:
            return cbc_decrypt(self._block, body, iv)
        except (PaddingError, ValueError) as exc:
            raise DecryptionError(str(exc)) from exc


class SimulatedCipher(RecordCipher):
    """Length-preserving fast cipher for high-rate simulations.

    Encrypts by XOR with a keystream derived from SHA-256(key || IV || ctr)
    over the PKCS#7-padded plaintext, prefixed by the IV — so ciphertext
    lengths match :class:`AesCbcCipher` exactly.  This is *not* offered as a
    secure construction; it exists so structural experiments don't pay the
    pure-Python AES cost (which the simulator models separately).
    """

    def __init__(self, keys: KeyStore, counter_start: int = 0):
        self._key = keys.record_key()
        self._keys = keys
        # ``counter_start`` partitions the IV-counter space between
        # cipher instances that share a key but not an address space
        # (one worker process each): with per-worker offsets, e.g.
        # ``worker_index << 44``, no two processes can draw the same
        # counter IV even without the shared lock.
        self._counter = counter_start
        # The cipher is shared by every computing-node thread plus the
        # merger; the counter bump must be atomic or two threads can draw
        # the same IV (keystream reuse).
        self._counter_lock = threading.Lock()

    def _keystream(self, iv: bytes, length: int) -> bytes:
        prefix = self._key + iv
        sha256 = hashlib.sha256
        blocks = [
            sha256(prefix + counter.to_bytes(4, "little")).digest()
            for counter in range((length + 31) // 32)
        ]
        return b"".join(blocks)[:length]

    def _next_iv(self) -> bytes:
        # A cheap deterministic nonce is enough here; uniqueness per message
        # is what keeps decryption well-defined.
        with self._counter_lock:
            self._counter += 1
            counter = self._counter
        return hashlib.sha256(
            self._key + b"iv" + counter.to_bytes(8, "little")
        ).digest()[:BLOCK_SIZE]

    @staticmethod
    def _xor(data: bytes, keystream: bytes) -> bytes:
        return (
            int.from_bytes(data, "little")
            ^ int.from_bytes(keystream, "little")
        ).to_bytes(len(data), "little")

    def encrypt(self, plaintext: bytes) -> bytes:
        iv = self._next_iv()
        padded = pad(plaintext, BLOCK_SIZE)
        return iv + self._xor(padded, self._keystream(iv, len(padded)))

    def derive_iv(self, nonce: bytes) -> bytes:
        # Domain-separated from the counter IVs (``iv-seeded`` vs ``iv``)
        # so a seeded IV can never collide with a counter IV under the
        # same key.
        return hashlib.sha256(self._key + b"iv-seeded" + nonce).digest()[
            :BLOCK_SIZE
        ]

    def _encrypt_with_iv(self, plaintext: bytes, iv: bytes) -> bytes:
        padded = pad(plaintext, BLOCK_SIZE)
        return iv + self._xor(padded, self._keystream(iv, len(padded)))

    def encrypt_batch(self, plaintexts: list[bytes]) -> list[bytes]:
        """Fast path: one lock round trip and one tight keystream loop.

        Byte-identical to mapping :meth:`encrypt` — the batch reserves a
        contiguous run of IV counters up front (same counter sequence the
        per-record path would draw), then derives each keystream inline
        without the per-call method and lock overhead.
        """
        count = len(plaintexts)
        if count == 0:
            return []
        with self._counter_lock:
            first = self._counter + 1
            self._counter += count
        sha256 = hashlib.sha256
        key = self._key
        iv_tag = key + b"iv"
        out = []
        for index, plaintext in enumerate(plaintexts):
            iv = sha256(
                iv_tag + (first + index).to_bytes(8, "little")
            ).digest()[:BLOCK_SIZE]
            padded = pad(plaintext, BLOCK_SIZE)
            length = len(padded)
            prefix = key + iv
            keystream = b"".join(
                sha256(prefix + counter.to_bytes(4, "little")).digest()
                for counter in range((length + 31) // 32)
            )[:length]
            out.append(
                iv
                + (
                    int.from_bytes(padded, "little")
                    ^ int.from_bytes(keystream, "little")
                ).to_bytes(length, "little")
            )
        return out

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < 2 * BLOCK_SIZE:
            raise DecryptionError("ciphertext shorter than IV + one block")
        iv, body = ciphertext[:BLOCK_SIZE], ciphertext[BLOCK_SIZE:]
        padded = self._xor(body, self._keystream(iv, len(body)))
        try:
            return unpad(padded, BLOCK_SIZE)
        except PaddingError as exc:
            raise DecryptionError(str(exc)) from exc
