"""PKCS#7 padding for CBC-mode encryption."""

from __future__ import annotations


class PaddingError(ValueError):
    """Raised when unpadding encounters invalid padding bytes."""


def pad(data: bytes, block_size: int = 16) -> bytes:
    """Append PKCS#7 padding so ``len(result)`` is a multiple of block_size.

    Always appends at least one byte (a full padding block for already
    aligned inputs), so padding is unambiguous.
    """
    if not 1 <= block_size <= 255:
        raise ValueError(f"block size must be in [1, 255], got {block_size}")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def unpad(data: bytes, block_size: int = 16) -> bytes:
    """Strip PKCS#7 padding.

    Raises
    ------
    PaddingError
        If the input is empty, misaligned, or the padding bytes are invalid.
    """
    if not data or len(data) % block_size != 0:
        raise PaddingError("padded data must be a non-empty block multiple")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise PaddingError(f"invalid padding length {pad_len}")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("corrupt padding bytes")
    return data[:-pad_len]
