"""Key generation and the trusted key store.

In the paper's model the collector and the client share a secret key; the
cloud never sees it.  :class:`KeyStore` models that shared secret and derives
purpose-specific subkeys so the record cipher and any auxiliary MACs never
reuse key material.
"""

from __future__ import annotations

import hashlib
import hmac
import os

from repro.crypto.aes import KEY_SIZES


class KeyStore:
    """Holder of the collector/client shared secret.

    Parameters
    ----------
    master_key:
        The shared secret.  If ``None``, a fresh random key is drawn from the
        OS CSPRNG.
    key_size:
        AES key length in bytes for derived keys (16, 24 or 32).
    """

    def __init__(self, master_key: bytes | None = None, key_size: int = 16):
        if key_size not in KEY_SIZES:
            raise ValueError(f"key size must be one of {KEY_SIZES}")
        if master_key is None:
            master_key = os.urandom(32)
        if len(master_key) < 16:
            raise ValueError("master key must be at least 16 bytes")
        self._master_key = bytes(master_key)
        self._key_size = key_size

    @property
    def key_size(self) -> int:
        """Length in bytes of derived AES keys."""
        return self._key_size

    def derive(self, purpose: str) -> bytes:
        """Derive a subkey bound to ``purpose`` (HKDF-style, HMAC-SHA256).

        Deterministic: the client derives the same subkeys from the same
        master key, which is what allows it to decrypt records the collector
        encrypted.
        """
        output = b""
        counter = 1
        info = purpose.encode("utf-8")
        while len(output) < self._key_size:
            block = hmac.new(
                self._master_key, info + bytes([counter]), hashlib.sha256
            ).digest()
            output += block
            counter += 1
        return output[: self._key_size]

    def record_key(self) -> bytes:
        """Subkey used to encrypt record payloads."""
        return self.derive("fresque/record-encryption")

    def fresh_iv(self) -> bytes:
        """A fresh random 16-byte IV for one CBC encryption."""
        return os.urandom(16)
