"""Encryption substrate: pure-Python AES-CBC and the record cipher API."""

from repro.crypto.aes import BLOCK_SIZE, KEY_SIZES, AesBlockCipher, AesKeyError
from repro.crypto.authenticated import AuthenticatedCipher, AuthenticationError
from repro.crypto.cipher import (
    AesCbcCipher,
    DecryptionError,
    RecordCipher,
    SimulatedCipher,
)
from repro.crypto.keys import KeyStore
from repro.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.crypto.padding import PaddingError, pad, unpad

__all__ = [
    "AesBlockCipher",
    "AesCbcCipher",
    "AesKeyError",
    "AuthenticatedCipher",
    "AuthenticationError",
    "BLOCK_SIZE",
    "DecryptionError",
    "KEY_SIZES",
    "KeyStore",
    "PaddingError",
    "RecordCipher",
    "SimulatedCipher",
    "cbc_decrypt",
    "cbc_encrypt",
    "pad",
    "unpad",
]
