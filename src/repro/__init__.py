"""FRESQUE reproduction: a scalable ingestion framework for secure range
query processing on clouds (Tran, Allard, d'Orazio, El Abbadi — EDBT 2021).

Top-level subpackages
---------------------
``repro.core``
    The paper's primary contribution: the FRESQUE collector architecture
    (dispatcher, computing nodes, checking node with randomer, merger).
``repro.index``
    The PINED-RQ differentially-private index family (clear index,
    perturbation, index template, AL/ALN arrays, overflow arrays).
``repro.privacy`` / ``repro.crypto``
    Differential-privacy and encryption substrates.
``repro.pinedrq`` / ``repro.pinedrqpp``
    The PINED-RQ and PINED-RQ++ baselines the paper compares against.
``repro.cloud`` / ``repro.client``
    The untrusted cloud store and the trusted query client.
``repro.runtime`` / ``repro.simulation``
    Execution substrates: a threaded in-process runtime for functional runs
    and a discrete-event cluster simulator for the performance experiments.
``repro.datasets`` / ``repro.baselines`` / ``repro.analysis``
    Synthetic NASA/Gowalla workloads, comparison baselines (ArxRange, OPE,
    bucketization), and the informed-online-attacker analysis.
"""

__version__ = "1.0.0"
