"""Relation schemas for the FRESQUE data model.

The paper assumes data sources produce records over a fixed relation
``D(A1, ..., An)`` and that queries are one-dimensional range queries over a
single numerical *indexed attribute* ``Aq`` (Section 2).  A :class:`Schema`
describes the attributes of such a relation and knows which attribute is
indexed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AttributeType(enum.Enum):
    """Type of a relation attribute.

    Only :attr:`INT` and :attr:`FLOAT` attributes may be indexed, since the
    PINED-RQ index is a histogram over a numerical domain.
    """

    INT = "int"
    FLOAT = "float"
    STR = "str"

    def python_type(self) -> type:
        """Return the Python type used to hold values of this attribute."""
        return _TYPES[self]


_TYPES = {
    AttributeType.INT: int,
    AttributeType.FLOAT: float,
    AttributeType.STR: str,
}


@dataclass(frozen=True)
class Attribute:
    """A single attribute of a relation.

    Parameters
    ----------
    name:
        Attribute name, unique within its schema.
    type:
        The :class:`AttributeType` of the values.
    """

    name: str
    type: AttributeType

    def coerce(self, value: object) -> object:
        """Convert ``value`` to this attribute's Python type.

        Raises
        ------
        ValueError
            If the value cannot be converted.
        """
        target = _TYPES[self.type]
        try:
            return target(value)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"cannot coerce {value!r} to attribute {self.name!r} "
                f"of type {self.type.value}"
            ) from exc


class SchemaError(ValueError):
    """Raised for malformed schemas or records that do not match a schema."""


@dataclass(frozen=True)
class Schema:
    """An ordered set of attributes plus the indexed attribute.

    Parameters
    ----------
    name:
        Human-readable relation name (e.g. ``"nasa_log"``).
    attributes:
        Ordered attributes of the relation.
    indexed_attribute:
        Name of the attribute over which range queries are evaluated.  Must
        name an INT or FLOAT attribute.
    """

    name: str
    attributes: tuple[Attribute, ...]
    indexed_attribute: str
    _index_pos: int = field(init=False, repr=False, compare=False, default=-1)
    _py_types: tuple = field(init=False, repr=False, compare=False, default=())
    _dummy_filler: tuple = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        names = [attr.name for attr in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema {self.name!r}")
        if self.indexed_attribute not in names:
            raise SchemaError(
                f"indexed attribute {self.indexed_attribute!r} not in schema "
                f"{self.name!r}"
            )
        pos = names.index(self.indexed_attribute)
        if self.attributes[pos].type is AttributeType.STR:
            raise SchemaError(
                f"indexed attribute {self.indexed_attribute!r} must be numerical"
            )
        object.__setattr__(self, "_index_pos", pos)
        object.__setattr__(
            self, "_py_types", tuple(_TYPES[attr.type] for attr in self.attributes)
        )
        object.__setattr__(
            self,
            "_dummy_filler",
            tuple(
                None
                if position == pos
                else ("" if attr.type is AttributeType.STR else _TYPES[attr.type](0))
                for position, attr in enumerate(self.attributes)
            ),
        )

    @property
    def arity(self) -> int:
        """Number of attributes in the relation."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Names of all attributes, in schema order."""
        return tuple(attr.name for attr in self.attributes)

    @property
    def indexed_position(self) -> int:
        """Position of the indexed attribute within the schema."""
        return self._index_pos

    @property
    def dummy_filler(self) -> tuple:
        """Filler values for dummy records (``None`` at the indexed position).

        STR attributes fill with ``""``, numerical ones with their zero, so
        a dummy serializes to the same size class as a minimal real record.
        """
        return self._dummy_filler

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``.

        Raises
        ------
        SchemaError
            If no such attribute exists.
        """
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"no attribute {name!r} in schema {self.name!r}")

    def position(self, name: str) -> int:
        """Return the position of attribute ``name`` within the schema."""
        for pos, attr in enumerate(self.attributes):
            if attr.name == name:
                return pos
        raise SchemaError(f"no attribute {name!r} in schema {self.name!r}")

    def coerce_values(self, values: tuple) -> tuple:
        """Coerce a value tuple to the schema's attribute types.

        Raises
        ------
        SchemaError
            If the tuple arity does not match the schema.
        """
        if len(values) != len(self.attributes):
            raise SchemaError(
                f"record has {len(values)} values, schema {self.name!r} "
                f"expects {self.arity}"
            )
        try:
            return tuple(
                target(value)
                for target, value in zip(self._py_types, values)
            )
        except (TypeError, ValueError):
            # Re-run attribute by attribute for the precise error message.
            return tuple(
                attr.coerce(value)
                for attr, value in zip(self.attributes, values)
            )


def nasa_log_schema() -> Schema:
    """Schema of the NASA HTTP log dataset used in the paper's evaluation.

    Five attributes; range queries are evaluated over the reply size in
    bytes (the paper's *reply byte* attribute, binned at 1 KB).
    """
    return Schema(
        name="nasa_log",
        attributes=(
            Attribute("host", AttributeType.STR),
            Attribute("timestamp", AttributeType.INT),
            Attribute("request", AttributeType.STR),
            Attribute("status", AttributeType.INT),
            Attribute("reply_bytes", AttributeType.INT),
        ),
        indexed_attribute="reply_bytes",
    )


def gowalla_schema() -> Schema:
    """Schema of the Gowalla check-in dataset used in the paper's evaluation.

    Three attributes; range queries are evaluated over the check-in time
    (binned at one hour).
    """
    return Schema(
        name="gowalla",
        attributes=(
            Attribute("user_id", AttributeType.INT),
            Attribute("checkin_time", AttributeType.INT),
            Attribute("location_id", AttributeType.INT),
        ),
        indexed_attribute="checkin_time",
    )


def flu_survey_schema() -> Schema:
    """Schema for the FluTracking-style participatory surveillance use case
    motivating the paper (Sections 1 and 8): weekly symptom reports indexed
    by body temperature (tenths of a degree Celsius).
    """
    return Schema(
        name="flu_survey",
        attributes=(
            Attribute("participant", AttributeType.STR),
            Attribute("week", AttributeType.INT),
            Attribute("temperature_dc", AttributeType.INT),
            Attribute("symptoms", AttributeType.STR),
        ),
        indexed_attribute="temperature_dc",
    )
