"""Record types flowing through the ingestion pipelines.

Three kinds of payloads travel between components:

* :class:`Record` — a parsed plaintext record (only ever present at the
  trusted collector or at the client after decryption);
* :class:`EncryptedRecord` — the AES-CBC ciphertext of a serialized record,
  plus the cleartext *leaf offset* that FRESQUE attaches so the checking node
  can update AL/ALN without decrypting (Section 5.1(a));
* dummy records — syntactically identical to real ones but carrying the
  special dummy flag (the paper's "-1 flag", Section 5.3) so the checker and
  updater skip them when maintaining the true counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.records.schema import Schema, SchemaError

#: Value of the flag attribute marking a record as dummy.  The paper attaches
#: a special flag (e.g. -1) so the checking node can ignore dummies.
DUMMY_FLAG = -1

#: Flag value for real records.
REAL_FLAG = 0


@dataclass(frozen=True)
class Record:
    """A plaintext record conforming to a :class:`~repro.records.schema.Schema`.

    Parameters
    ----------
    values:
        The attribute values, in schema order.
    flag:
        :data:`REAL_FLAG` for real records, :data:`DUMMY_FLAG` for dummies.
    """

    values: tuple
    flag: int = REAL_FLAG

    @property
    def is_dummy(self) -> bool:
        """Whether this is a dummy record injected to hide positive noise."""
        return self.flag == DUMMY_FLAG

    def indexed_value(self, schema: Schema):
        """The value of the schema's indexed attribute for this record."""
        return self.values[schema.indexed_position]

    def validate(self, schema: Schema) -> "Record":
        """Return a copy with values coerced to the schema types.

        Raises
        ------
        SchemaError
            If the record does not match the schema.
        """
        return Record(schema.coerce_values(self.values), flag=self.flag)


def make_dummy(schema: Schema, indexed_value) -> Record:
    """Build a dummy record whose indexed attribute equals ``indexed_value``.

    All other attributes get type-appropriate filler so that, once encrypted,
    a dummy is indistinguishable from a real record of the same size class.
    """
    values = list(schema.dummy_filler)
    position = schema.indexed_position
    values[position] = schema.attributes[position].coerce(indexed_value)
    return Record(tuple(values), flag=DUMMY_FLAG)


@dataclass(frozen=True)
class EncryptedRecord:
    """An encrypted record travelling to the cloud.

    Parameters
    ----------
    leaf_offset:
        Cleartext offset of the index leaf this record falls in (FRESQUE ships
        ``<leaf offset, e-record>`` pairs).  ``None`` for pipelines (PINED-RQ++)
        that tag with a random id instead.
    ciphertext:
        AES-CBC ciphertext of the serialized record (IV-prefixed).
    tag:
        Random per-record id used by PINED-RQ++'s matching table; ``None``
        under FRESQUE.
    publication:
        Monotonic publication number the record belongs to.
    """

    leaf_offset: int | None
    ciphertext: bytes
    tag: int | None = None
    publication: int = 0

    def __len__(self) -> int:
        return len(self.ciphertext)


class RecordError(SchemaError):
    """Raised when a record payload is malformed."""
