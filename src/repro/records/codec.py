"""JSON-able payload codecs for records and noise plans.

Shared by the TCP wire format (:mod:`repro.runtime.wire`), the
durability journal and the collector checkpoints — living here, below
both the core pipeline and the runtime, so any layer can serialise
records without importing the transport.
"""

from __future__ import annotations

import base64

from repro.index.perturb import NoisePlan
from repro.records.record import EncryptedRecord, Record


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


def encode_encrypted(record: EncryptedRecord) -> dict:
    """Serialise one encrypted record as a JSON-able dict."""
    return {
        "leaf": record.leaf_offset,
        "ct": _b64(record.ciphertext),
        "tag": record.tag,
        "pub": record.publication,
    }


def decode_encrypted(payload: dict) -> EncryptedRecord:
    """Inverse of :func:`encode_encrypted`."""
    return EncryptedRecord(
        leaf_offset=payload["leaf"],
        ciphertext=_unb64(payload["ct"]),
        tag=payload["tag"],
        publication=payload["pub"],
    )


def encode_plan(plan: NoisePlan) -> dict:
    """Serialise one noise plan as a JSON-able dict."""
    return {
        "noise": [list(level) for level in plan.node_noise],
        "epsilon": plan.epsilon,
        "scale": plan.per_level_scale,
    }


def decode_plan(payload: dict) -> NoisePlan:
    """Inverse of :func:`encode_plan`."""
    return NoisePlan(
        node_noise=tuple(tuple(level) for level in payload["noise"]),
        epsilon=payload["epsilon"],
        per_level_scale=payload["scale"],
    )


def encode_record(record: Record) -> dict:
    """Serialise one plaintext record as a JSON-able dict."""
    return {"values": list(record.values), "flag": record.flag}


def decode_record(payload: dict) -> Record:
    """Inverse of :func:`encode_record`."""
    return Record(tuple(payload["values"]), flag=payload["flag"])
