"""Payload codecs for records and noise plans.

Shared by the TCP wire format (:mod:`repro.runtime.wire`), the
durability journal and the collector checkpoints — living here, below
both the core pipeline and the runtime, so any layer can serialise
records without importing the transport.

Two codec families:

* JSON-able dicts (``encode_*``/``decode_*``) — the TCP wire format and
  every durable artefact.
* A binary form for :class:`EncryptedRecord`
  (``encode_encrypted_into``/``decode_encrypted_from``) used by the
  shared-memory runtime's batch frames: fixed-header fields unpacked
  with ``struct.unpack_from`` straight off a ring-buffer
  ``memoryview``, so decoding a batch performs exactly one copy per
  record (the ciphertext into its own ``bytes``) and never materialises
  the frame as an intermediate ``bytes`` object.
"""

from __future__ import annotations

import base64
import struct

from repro.index.perturb import NoisePlan
from repro.records.record import EncryptedRecord, Record


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


def encode_encrypted(record: EncryptedRecord) -> dict:
    """Serialise one encrypted record as a JSON-able dict."""
    return {
        "leaf": record.leaf_offset,
        "ct": _b64(record.ciphertext),
        "tag": record.tag,
        "pub": record.publication,
    }


def decode_encrypted(payload: dict) -> EncryptedRecord:
    """Inverse of :func:`encode_encrypted`."""
    return EncryptedRecord(
        leaf_offset=payload["leaf"],
        ciphertext=_unb64(payload["ct"]),
        tag=payload["tag"],
        publication=payload["pub"],
    )


def encode_plan(plan: NoisePlan) -> dict:
    """Serialise one noise plan as a JSON-able dict."""
    return {
        "noise": [list(level) for level in plan.node_noise],
        "epsilon": plan.epsilon,
        "scale": plan.per_level_scale,
    }


def decode_plan(payload: dict) -> NoisePlan:
    """Inverse of :func:`encode_plan`."""
    return NoisePlan(
        node_noise=tuple(tuple(level) for level in payload["noise"]),
        epsilon=payload["epsilon"],
        per_level_scale=payload["scale"],
    )


def encode_record(record: Record) -> dict:
    """Serialise one plaintext record as a JSON-able dict."""
    return {"values": list(record.values), "flag": record.flag}


def decode_record(payload: dict) -> Record:
    """Inverse of :func:`encode_record`."""
    return Record(tuple(payload["values"]), flag=payload["flag"])


# ---------------------------------------------------------------------------
# Binary EncryptedRecord codec (shared-memory batch frames)
# ---------------------------------------------------------------------------

# leaf (i32, -1 = None) | tag (i32, -1 = None) | pub (i32) | ct length (u32)
_ENCRYPTED_HEADER = struct.Struct("<iiiI")


def encode_encrypted_into(out: bytearray, record: EncryptedRecord) -> None:
    """Append the binary form of ``record`` to ``out``."""
    leaf = -1 if record.leaf_offset is None else record.leaf_offset
    tag = -1 if record.tag is None else record.tag
    out += _ENCRYPTED_HEADER.pack(
        leaf, tag, record.publication, len(record.ciphertext)
    )
    out += record.ciphertext


def decode_encrypted_from(
    view, offset: int = 0
) -> tuple[EncryptedRecord, int]:
    """Decode one binary record at ``offset`` of ``view`` (a buffer).

    Returns the record and the offset just past it.  The only copy made
    is the ciphertext slice into its own ``bytes``.
    """
    leaf, tag, publication, length = _ENCRYPTED_HEADER.unpack_from(
        view, offset
    )
    start = offset + _ENCRYPTED_HEADER.size
    ciphertext = bytes(view[start : start + length])
    if len(ciphertext) != length:
        raise ValueError("truncated encrypted record")
    return (
        EncryptedRecord(
            leaf_offset=None if leaf < 0 else leaf,
            ciphertext=ciphertext,
            tag=None if tag < 0 else tag,
            publication=publication,
        ),
        start + length,
    )
