"""Record model: schemas, records, and (de)serialization."""

from repro.records.record import (
    DUMMY_FLAG,
    REAL_FLAG,
    EncryptedRecord,
    Record,
    RecordError,
    make_dummy,
)
from repro.records.schema import (
    Attribute,
    AttributeType,
    Schema,
    SchemaError,
    flu_survey_schema,
    gowalla_schema,
    nasa_log_schema,
)
from repro.records.serialize import (
    RAW_SEPARATOR,
    deserialize_record,
    parse_raw_line,
    render_raw_line,
    serialize_record,
)

__all__ = [
    "Attribute",
    "AttributeType",
    "DUMMY_FLAG",
    "EncryptedRecord",
    "RAW_SEPARATOR",
    "REAL_FLAG",
    "Record",
    "RecordError",
    "Schema",
    "SchemaError",
    "deserialize_record",
    "flu_survey_schema",
    "gowalla_schema",
    "make_dummy",
    "nasa_log_schema",
    "parse_raw_line",
    "render_raw_line",
    "serialize_record",
]
