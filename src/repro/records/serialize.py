"""Record (de)serialization and raw-line parsing.

Two encodings are implemented:

* a *wire* encoding (``serialize_record`` / ``deserialize_record``) used
  before encryption — length-prefixed fields so that arbitrary strings are
  safe;
* a *raw line* encoding (``render_raw_line`` / ``parse_raw_line``) emulating
  the textual input the paper's parser component consumes (e.g. an Apache log
  line for NASA, a TSV line for Gowalla).  Parsing raw lines is the "heavy"
  task FRESQUE distributes across computing nodes.
"""

from __future__ import annotations

import struct

from repro.records.record import DUMMY_FLAG, Record, RecordError
from repro.records.schema import AttributeType, Schema

_HEADER = struct.Struct("<bH")  # flag, field count
_FIELD_LEN = struct.Struct("<I")

#: Separator for raw textual lines; chosen to be absent from generated data.
RAW_SEPARATOR = "\t"


def serialize_record(record: Record, schema: Schema) -> bytes:
    """Encode a record into the wire format (pre-encryption plaintext).

    Layout: ``flag (int8) | nfields (uint16) | [len (uint32) | utf8 bytes]*``.
    """
    if len(record.values) != schema.arity:
        raise RecordError(
            f"record arity {len(record.values)} != schema arity {schema.arity}"
        )
    parts = [_HEADER.pack(record.flag, len(record.values))]
    for value in record.values:
        blob = str(value).encode("utf-8")
        parts.append(_FIELD_LEN.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


class DummyRecordSerializer:
    """Pre-rendered wire encoding for one schema's dummy records.

    Byte-identical to ``serialize_record(make_dummy(schema, value), schema)``
    but without building the intermediate :class:`Record` — the merger pads
    every overflow array to capacity with encrypted dummies, so this path
    runs tens of thousands of times per publication.
    """

    def __init__(self, schema: Schema):
        position = schema.indexed_position
        self._coerce = schema.attributes[position].coerce
        before = [_HEADER.pack(DUMMY_FLAG, schema.arity)]
        after: list[bytes] = []
        for pos, filler in enumerate(schema.dummy_filler):
            if pos == position:
                continue
            blob = str(filler).encode("utf-8")
            target = before if pos < position else after
            target.append(_FIELD_LEN.pack(len(blob)))
            target.append(blob)
        self._before = b"".join(before)
        self._after = b"".join(after)

    def serialize(self, indexed_value) -> bytes:
        """Wire bytes of a dummy whose indexed attribute is ``indexed_value``."""
        blob = str(self._coerce(indexed_value)).encode("utf-8")
        return (
            self._before + _FIELD_LEN.pack(len(blob)) + blob + self._after
        )


def deserialize_record(payload: bytes, schema: Schema) -> Record:
    """Decode the wire format back into a (type-coerced) :class:`Record`.

    Raises
    ------
    RecordError
        If the payload is truncated or does not match the schema.
    """
    if len(payload) < _HEADER.size:
        raise RecordError("payload too short for record header")
    flag, nfields = _HEADER.unpack_from(payload, 0)
    if nfields != schema.arity:
        raise RecordError(
            f"payload has {nfields} fields, schema expects {schema.arity}"
        )
    offset = _HEADER.size
    raw_values: list[str] = []
    for _ in range(nfields):
        if len(payload) < offset + _FIELD_LEN.size:
            raise RecordError("payload truncated in field length")
        (length,) = _FIELD_LEN.unpack_from(payload, offset)
        offset += _FIELD_LEN.size
        if len(payload) < offset + length:
            raise RecordError("payload truncated in field body")
        raw_values.append(payload[offset : offset + length].decode("utf-8"))
        offset += length
    values = schema.coerce_values(tuple(raw_values))
    return Record(values, flag=flag)


def render_raw_line(record: Record, schema: Schema) -> str:
    """Render a record as the raw textual line a data source would send.

    The collector's parser component reverses this with
    :func:`parse_raw_line`.
    """
    if len(record.values) != schema.arity:
        raise RecordError(
            f"record arity {len(record.values)} != schema arity {schema.arity}"
        )
    fields = [str(value) for value in record.values]
    if record.is_dummy:
        fields.append(str(record.flag))
    return RAW_SEPARATOR.join(fields)


def parse_raw_line(line: str, schema: Schema) -> Record:
    """Parse a raw textual line into a typed :class:`Record`.

    This is the work performed by the *parser* component; it validates field
    count and coerces every field to its attribute type.

    Raises
    ------
    RecordError
        If the line is malformed for the schema.
    """
    fields = line.rstrip("\n").split(RAW_SEPARATOR)
    flag = 0
    if len(fields) == schema.arity + 1:
        try:
            flag = int(fields[-1])
        except ValueError as exc:
            raise RecordError(f"bad flag field in line: {line!r}") from exc
        fields = fields[:-1]
    if len(fields) != schema.arity:
        raise RecordError(
            f"line has {len(fields)} fields, schema {schema.name!r} "
            f"expects {schema.arity}"
        )
    values = schema.coerce_values(tuple(fields))
    return Record(values, flag=flag)
