"""Trusted query client."""

from repro.client.query_client import ClientResult, QueryClient

__all__ = ["ClientResult", "QueryClient"]
