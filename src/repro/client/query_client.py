"""The trusted query client.

An authorized analyst (the paper's epidemiologist) issues non-aggregate
range queries against the cloud, receives ciphertexts, decrypts them with
the shared key, and post-filters: dummy records are discarded and records
outside the exact range are dropped (index bins and overflow arrays are
leaf-granular, so the cloud over-returns by design).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cipher import DecryptionError, RecordCipher
from repro.index.query import RangeQuery
from repro.records.record import Record
from repro.records.schema import Schema
from repro.records.serialize import deserialize_record


@dataclass(frozen=True)
class ClientResult:
    """Plaintext outcome of one range query.

    Parameters
    ----------
    records:
        Real records whose indexed attribute lies in the queried range.
    ciphertexts_received:
        How many ciphertexts the cloud returned (bandwidth metric).
    dummies_discarded:
        Dummy records filtered out after decryption.
    out_of_range_discarded:
        Real records returned because of bin granularity but outside the
        exact range.
    """

    records: tuple[Record, ...]
    ciphertexts_received: int
    dummies_discarded: int
    out_of_range_discarded: int


class QueryClient:
    """Issues range queries and post-processes encrypted results.

    Parameters
    ----------
    schema:
        Relation schema of the outsourced data.
    cipher:
        Record cipher sharing keys with the collector.
    cloud:
        Any object exposing ``query(RangeQuery) -> QueryResult``.
    """

    def __init__(self, schema: Schema, cipher: RecordCipher, cloud):
        self._schema = schema
        self._cipher = cipher
        self._cloud = cloud

    def range_query(self, low: float, high: float) -> ClientResult:
        """Run ``low <= Aq <= high`` end to end.

        Raises
        ------
        DecryptionError
            If a returned ciphertext cannot be decrypted — a protocol
            violation under the honest-but-curious model.
        """
        query = RangeQuery(low, high)
        response = self._cloud.query(query)
        matches: list[Record] = []
        dummies = 0
        out_of_range = 0
        ciphertexts = response.all_records()
        for encrypted in ciphertexts:
            plaintext = self._cipher.decrypt(encrypted.ciphertext)
            record = deserialize_record(plaintext, self._schema)
            if record.is_dummy:
                dummies += 1
                continue
            if not query.contains(record.indexed_value(self._schema)):
                out_of_range += 1
                continue
            matches.append(record)
        return ClientResult(
            records=tuple(matches),
            ciphertexts_received=len(ciphertexts),
            dummies_discarded=dummies,
            out_of_range_discarded=out_of_range,
        )
