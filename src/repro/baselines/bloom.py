"""Bloom filters (substrate for the PBtree baseline).

Standard k-hash Bloom filter over byte items, with the double-hashing
construction (Kirsch–Mitzenmacher): ``h_i(x) = h1(x) + i·h2(x) mod m``.
Sizing helpers compute the bit count and hash count for a target false
positive rate.
"""

from __future__ import annotations

import hashlib
import math


def optimal_bits(capacity: int, fp_rate: float) -> int:
    """Bits needed to hold ``capacity`` items at ``fp_rate``."""
    if capacity < 1:
        raise ValueError(f"capacity must be positive, got {capacity}")
    if not 0 < fp_rate < 1:
        raise ValueError(f"fp rate must be in (0, 1), got {fp_rate}")
    return max(8, math.ceil(-capacity * math.log(fp_rate) / math.log(2) ** 2))


def optimal_hashes(bits: int, capacity: int) -> int:
    """Hash-function count minimising the false positive rate."""
    if capacity < 1:
        return 1
    return max(1, round(bits / capacity * math.log(2)))


class BloomFilter:
    """A fixed-size Bloom filter over byte strings.

    Parameters
    ----------
    bits:
        Filter size in bits.
    hashes:
        Number of hash functions.
    """

    def __init__(self, bits: int, hashes: int):
        if bits < 8:
            raise ValueError(f"need at least 8 bits, got {bits}")
        if hashes < 1:
            raise ValueError(f"need at least one hash, got {hashes}")
        self.bits = bits
        self.hashes = hashes
        self._array = bytearray((bits + 7) // 8)
        self.items_added = 0

    @classmethod
    def for_capacity(cls, capacity: int, fp_rate: float = 0.01) -> "BloomFilter":
        """Build a filter sized for ``capacity`` items at ``fp_rate``."""
        bits = optimal_bits(capacity, fp_rate)
        return cls(bits, optimal_hashes(bits, capacity))

    def _positions(self, item: bytes):
        digest = hashlib.sha256(item).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:16], "little") | 1
        for i in range(self.hashes):
            yield (h1 + i * h2) % self.bits

    def add(self, item: bytes) -> None:
        """Insert one item."""
        for position in self._positions(item):
            self._array[position // 8] |= 1 << (position % 8)
        self.items_added += 1

    def __contains__(self, item: bytes) -> bool:
        return all(
            self._array[position // 8] & (1 << (position % 8))
            for position in self._positions(item)
        )

    def size_bytes(self) -> int:
        """Storage footprint of the filter."""
        return len(self._array)

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Filter containing both filters' items (same parameters only)."""
        if (self.bits, self.hashes) != (other.bits, other.hashes):
            raise ValueError("can only union filters with equal parameters")
        merged = BloomFilter(self.bits, self.hashes)
        merged._array = bytearray(
            a | b for a, b in zip(self._array, other._array)
        )
        merged.items_added = self.items_added + other.items_added
        return merged
