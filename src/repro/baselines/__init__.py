"""Comparison baselines: ArxRange, OPE, bucketization, and Table 1."""

from repro.baselines.arxrange import GARBLE_SECONDS, ArxRangeIndex
from repro.baselines.bloom import BloomFilter, optimal_bits, optimal_hashes
from repro.baselines.bucketization import BucketIndex, BucketStore
from repro.baselines.demertzis import DemertzisStore, dyadic_labels
from repro.baselines.hve import (
    EXPONENTIATION_SECONDS,
    PAIRING_SECONDS,
    HveStore,
)
from repro.baselines.ope import OpeEncoder, OpeStore
from repro.baselines.pbtree import PBtree, prefix_family, range_prefix_cover
from repro.baselines.requirements import TABLE_1, SchemeRating, render_table

__all__ = [
    "ArxRangeIndex",
    "BloomFilter",
    "BucketIndex",
    "BucketStore",
    "DemertzisStore",
    "EXPONENTIATION_SECONDS",
    "GARBLE_SECONDS",
    "HveStore",
    "OpeEncoder",
    "OpeStore",
    "PAIRING_SECONDS",
    "PBtree",
    "optimal_bits",
    "optimal_hashes",
    "dyadic_labels",
    "prefix_family",
    "range_prefix_cover",
    "SchemeRating",
    "TABLE_1",
    "render_table",
]
