"""Hidden Vector Encryption (HVE) baseline — ideal-functionality simulation.

HVE schemes ([8, 36] in the paper) encrypt each record's attributes into a
vector over a *composite-order bilinear group*; a range token lets the
server test the predicate without learning anything else.  Implementing
composite-order pairings from scratch is out of scope (and pointless for
the comparison: the paper dismisses HVE on *cost*), so — per the
substitution rule — this module provides the ideal functionality with the
pairing costs charged explicitly:

* encrypting one record costs one group exponentiation per vector element;
* testing one token against one ciphertext costs one pairing per element.

The constants reflect composite-order (1024-bit-ish) pairing benchmarks:
milliseconds per operation, which is exactly why Table 1 marks HVE as
*not* low-latency and the ingest comparison shows it orders of magnitude
behind everything else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.pbtree import prefix_family, range_prefix_cover
from repro.crypto.cipher import RecordCipher

#: Modelled cost of one exponentiation in a composite-order group (s).
EXPONENTIATION_SECONDS = 3.0e-3

#: Modelled cost of one composite-order pairing (s).
PAIRING_SECONDS = 12.0e-3

#: Bit width of the encoded attribute (vector length = bits + 1).
HVE_BITS = 32


@dataclass(frozen=True)
class HveCiphertext:
    """One HVE-encrypted record: payload ciphertext + predicate vector.

    ``vector`` holds the (ideal-functionality) hidden attribute encoding —
    the record's prefix family, which a real HVE would embed in group
    elements.  It is private to the module; the simulated server only
    touches it through :meth:`HveStore.range_query`'s pairing-charged
    test.
    """

    payload: bytes
    vector: frozenset[str]


class HveStore:
    """Server-side store of HVE ciphertexts with explicit cost accounting.

    Parameters
    ----------
    cipher:
        Cipher for record payloads.
    """

    def __init__(self, cipher: RecordCipher):
        self._cipher = cipher
        self._rows: list[HveCiphertext] = []
        self.exponentiations = 0
        self.pairings = 0

    def insert(self, value: int, payload: bytes) -> None:
        """Encrypt one record: one exponentiation per vector element."""
        family = prefix_family(value, bits=HVE_BITS)
        self.exponentiations += len(family)
        self._rows.append(
            HveCiphertext(
                payload=self._cipher.encrypt(payload),
                vector=frozenset(family),
            )
        )

    def range_query(self, low: int, high: int) -> list[bytes]:
        """Evaluate a range token against every ciphertext.

        HVE has no index: the token is tested on *all* rows, one pairing
        per vector element per row — the computation Table 1's
        'prohibitive computation costs' refers to.
        """
        cover = set(range_prefix_cover(low, high, bits=HVE_BITS))
        results = []
        for row in self._rows:
            self.pairings += HVE_BITS + 1
            if row.vector & cover:
                results.append(row.payload)
        return results

    def modelled_insert_seconds(self) -> float:
        """Total modelled encryption time so far."""
        return self.exponentiations * EXPONENTIATION_SECONDS

    def modelled_insert_throughput(self) -> float:
        """Sustained inserts/s implied by the exponentiation cost."""
        seconds = self.modelled_insert_seconds()
        if seconds == 0:
            return float("inf")
        return len(self._rows) / seconds

    def modelled_query_seconds(self) -> float:
        """Total modelled pairing time spent answering queries."""
        return self.pairings * PAIRING_SECONDS
