"""The Table 1 requirements matrix.

Table 1 of the paper rates prior schemes against the four target
requirements: formal security guarantees, update support, low latency, and
small storage overhead.  This module encodes that qualitative matrix as
data so the Table 1 benchmark can render it alongside the quantitative
spot-checks the repository measures.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SchemeRating:
    """One row of Table 1."""

    scheme: str
    formal_security: bool
    update_support: bool
    low_latency: bool
    small_storage: bool
    references: str = ""

    def cells(self) -> tuple[str, str, str, str]:
        """Check-mark cells in table order."""
        mark = lambda ok: "yes" if ok else "no"  # noqa: E731
        return (
            mark(self.formal_security),
            mark(self.update_support),
            mark(self.low_latency),
            mark(self.small_storage),
        )


#: The paper's Table 1, row for row.
TABLE_1: tuple[SchemeRating, ...] = (
    SchemeRating("HVE", True, True, False, False, "[8, 36]"),
    SchemeRating("Bucketization", False, True, True, True, "[17, 19, 20]"),
    SchemeRating("OPE", False, True, True, True, "[5-7, 26, 31]"),
    SchemeRating("PBtree", True, False, True, False, "[24]"),
    SchemeRating("IBtree", True, False, True, False, "[23]"),
    SchemeRating("ArxRange", True, True, True, False, "[30]"),
    SchemeRating("Demertzis et al.", True, False, True, False, "[10]"),
    SchemeRating("PINED-RQ family", True, True, True, True, "[33, 34]"),
)


def render_table(rows: tuple[SchemeRating, ...] = TABLE_1) -> str:
    """Format the matrix the way the paper prints it."""
    header = (
        f"{'Scheme':<18} {'Formal security':<16} {'Updates':<8} "
        f"{'Low latency':<12} {'Small storage':<13}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        security, updates, latency, storage = row.cells()
        lines.append(
            f"{row.scheme:<18} {security:<16} {updates:<8} "
            f"{latency:<12} {storage:<13}"
        )
    return "\n".join(lines)
