"""PBtree baseline (Li et al., "Fast Range Query Processing with Strong
Privacy Protection" — reference [24] of the paper).

A static, privacy-preserving index: values are expanded into their *prefix
family*, prefixes are keyed-HMAC'd (so the server learns nothing from
them), and a binary tree over the records stores at each node a Bloom
filter of the HMAC'd prefixes beneath it.  A range query is converted by
the client into its minimal prefix cover, each prefix into an HMAC
trapdoor, and the server descends every node whose filter hits a trapdoor.

Table 1 rates PBtree: formal security *yes*, updates *no* (the structure
is built once over a static dataset), low latency *yes*, small storage
*no* (a Bloom filter per node) — all of which this implementation
exhibits measurably.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field

from repro.baselines.bloom import BloomFilter
from repro.crypto.cipher import RecordCipher

#: Bit width of the value domain handled by the prefix encoding.
VALUE_BITS = 32


def prefix_family(value: int, bits: int = VALUE_BITS) -> list[str]:
    """The prefix family F(v): one prefix per bit level plus the value.

    E.g. for bits=4, value 0b0101 → ["0101", "010*", "01**", "0***", "****"].
    """
    if not 0 <= value < (1 << bits):
        raise ValueError(f"value {value} outside [0, 2^{bits})")
    binary = format(value, f"0{bits}b")
    return [binary[:keep] + "*" * (bits - keep) for keep in range(bits, -1, -1)]


def range_prefix_cover(low: int, high: int, bits: int = VALUE_BITS) -> list[str]:
    """Minimal set of prefixes exactly covering the integer range [low, high].

    A value is in the range iff its prefix family intersects the cover —
    the classic prefix-membership trick PBtree queries rely on.
    """
    if high < low:
        raise ValueError(f"empty range [{low}, {high}]")
    if low < 0 or high >= (1 << bits):
        raise ValueError(f"range outside [0, 2^{bits})")
    cover: list[str] = []
    lo, hi = low, high
    while lo <= hi:
        # Largest aligned block starting at lo that fits within hi.
        size = 1
        while (
            lo % (size * 2) == 0 and lo + size * 2 - 1 <= hi and size * 2 <= (1 << bits)
        ):
            size *= 2
        keep = bits - size.bit_length() + 1
        binary = format(lo, f"0{bits}b")
        cover.append(binary[:keep] + "*" * (bits - keep))
        lo += size
    return cover


class _Trapdoors:
    """Client-side keyed hashing of prefixes."""

    def __init__(self, key: bytes):
        self._key = key

    def trapdoor(self, prefix: str) -> bytes:
        return hmac.new(self._key, prefix.encode("ascii"), hashlib.sha256).digest()


@dataclass
class _PbNode:
    bloom: BloomFilter
    left: "_PbNode | None" = None
    right: "_PbNode | None" = None
    payloads: list[bytes] = field(default_factory=list)  # leaves only


class PBtree:
    """A static PBtree over ``(value, payload)`` records.

    Parameters
    ----------
    records:
        The dataset: ``(integer value, plaintext payload)`` pairs.  PBtree
        is built once; there is no insert (the Table 1 'no updates' cell).
    cipher:
        Cipher for the payloads.
    key:
        HMAC key shared between the data owner and the querying client.
    fp_rate:
        Per-filter Bloom false-positive rate.
    """

    def __init__(
        self,
        records: list[tuple[int, bytes]],
        cipher: RecordCipher,
        key: bytes,
        fp_rate: float = 0.01,
    ):
        self._trapdoors = _Trapdoors(key)
        self._cipher = cipher
        self.nodes_built = 0
        self.filter_bytes = 0
        # Every node carries an *equal-size* filter dimensioned for the
        # root's load (all records' prefix families), so parent filters
        # are exact unions of their children and the tree leaks no shape
        # information through filter sizes (the IBtree-style
        # indistinguishability refinement).  This is also what makes the
        # storage overhead prohibitive — Table 1's complaint.
        total_items = max(1, len(records)) * (VALUE_BITS + 1)
        reference = BloomFilter.for_capacity(total_items, fp_rate)
        self._bits = reference.bits
        self._hashes = reference.hashes
        leaves = [
            self._leaf(value, payload) for value, payload in records
        ]
        self._root = self._build(leaves) if leaves else None

    def _leaf(self, value: int, payload: bytes) -> _PbNode:
        bloom = BloomFilter(self._bits, self._hashes)
        for prefix in prefix_family(value):
            bloom.add(self._trapdoors.trapdoor(prefix))
        self.nodes_built += 1
        self.filter_bytes += bloom.size_bytes()
        return _PbNode(bloom=bloom, payloads=[self._cipher.encrypt(payload)])

    def _build(self, level: list[_PbNode]) -> _PbNode:
        while len(level) > 1:
            parents = []
            for i in range(0, len(level), 2):
                if i + 1 == len(level):
                    parents.append(level[i])
                    continue
                left, right = level[i], level[i + 1]
                bloom = left.bloom.union(right.bloom)
                self.nodes_built += 1
                self.filter_bytes += bloom.size_bytes()
                parents.append(_PbNode(bloom=bloom, left=left, right=right))
            level = parents
        return level[0]

    def range_query(self, low: int, high: int) -> list[bytes]:
        """Server-side evaluation from client trapdoors.

        Returns candidate ciphertexts (Bloom false positives possible —
        the client filters after decryption, as with bin over-returns in
        PINED-RQ).
        """
        if self._root is None:
            return []
        trapdoors = [
            self._trapdoors.trapdoor(prefix)
            for prefix in range_prefix_cover(low, high)
        ]
        results: list[bytes] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not any(t in node.bloom for t in trapdoors):
                continue
            if node.left is None and node.right is None:
                results.extend(node.payloads)
                continue
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return results

    def storage_bytes(self) -> int:
        """Index storage: the per-node Bloom filters (Table 1's
        'prohibitive storage overhead' cell, measurably large)."""
        return self.filter_bytes
