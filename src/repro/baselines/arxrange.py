"""ArxRange-style baseline.

ArxRange (Poddar et al.) keeps a binary search tree over garbled-circuit
comparison nodes: the server can traverse once, but every traversed node's
circuit is *consumed* and must be re-garbled by the client before reuse.
Inserts and queries therefore cost O(log n) garblings — heavyweight
client-side cryptography that caps ingestion at hundreds of writes per
second (the paper cites ~450 writes/s with caching; FRESQUE claims at
least two orders of magnitude more).

The tree here is functional (inserts, range queries) with the garbling
charged through an explicit cost counter; ``GARBLE_SECONDS`` carries the
per-node cost into the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.cipher import RecordCipher

#: Modelled client-side cost of re-garbling one comparison node.  With a
#: ~16-node path this yields ~440 inserts/s, matching the paper's ~450.
GARBLE_SECONDS = 140e-6


@dataclass
class _TreeNode:
    value: float
    payloads: list[bytes] = field(default_factory=list)
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None


class ArxRangeIndex:
    """A (simplified) ArxRange encrypted index.

    Parameters
    ----------
    cipher:
        Cipher for record payloads; comparisons happen inside (modelled)
        garbled circuits, so the server never sees plaintext order
        directly — the cost is paid in garblings instead.
    """

    def __init__(self, cipher: RecordCipher):
        self._cipher = cipher
        self._root: _TreeNode | None = None
        self.inserts = 0
        self.garblings = 0
        self.size = 0

    def insert(self, indexed_value: float, payload: bytes) -> None:
        """Insert one record, garbling every node on the descent path."""
        ciphertext = self._cipher.encrypt(payload)
        self.inserts += 1
        self.size += 1
        if self._root is None:
            self._root = _TreeNode(indexed_value, [ciphertext])
            self.garblings += 1
            return
        node = self._root
        while True:
            self.garblings += 1  # this node's circuit is consumed
            if indexed_value == node.value:
                node.payloads.append(ciphertext)
                return
            if indexed_value < node.value:
                if node.left is None:
                    node.left = _TreeNode(indexed_value, [ciphertext])
                    self.garblings += 1
                    return
                node = node.left
            else:
                if node.right is None:
                    node.right = _TreeNode(indexed_value, [ciphertext])
                    self.garblings += 1
                    return
                node = node.right

    def range_query(self, low: float, high: float) -> list[bytes]:
        """Collect payloads in ``[low, high]``, garbling visited nodes."""
        results: list[bytes] = []
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            self.garblings += 1
            if low <= node.value <= high:
                results.extend(node.payloads)
            if node.left is not None and low < node.value:
                stack.append(node.left)
            if node.right is not None and high > node.value:
                stack.append(node.right)
        return results

    def modelled_insert_seconds(self) -> float:
        """Total modelled client time spent garbling so far."""
        return self.garblings * GARBLE_SECONDS

    def modelled_insert_throughput(self) -> float:
        """Sustained inserts/s implied by the garbling cost."""
        seconds = self.modelled_insert_seconds()
        if seconds == 0:
            return float("inf")
        return self.inserts / seconds
