"""Order-preserving encryption (OPE) baseline.

A mutable order-preserving encoding in the spirit of mOPE (Popa et al.):
the client maintains the order structure and assigns numeric *codes* to
ciphertexts so the server can evaluate range predicates directly.  When a
code gap is exhausted the scheme rebalances — in real mOPE the server's
stored codes are then updated interactively, which is modelled here by the
store refreshing its rows from the encoder (``rebalances`` counts how
often that expensive update happens).

Table 1 lists OPE as low-latency and update-friendly but **without formal
security guarantees**: at any point in time the server-visible code order
equals the plaintext order exactly, enabling the statistical attacks the
paper cites; :meth:`OpeStore.observed_codes` exposes that leakage for the
analysis tests.
"""

from __future__ import annotations

import bisect

from repro.crypto.cipher import RecordCipher

_CODE_SPAN = 1 << 62


class OpeEncoder:
    """Stateful order-preserving encoder over numeric values.

    Each distinct plaintext owns a stable *entry id*; the entry's code may
    change on rebalance, but ids never do — mirroring mOPE, where the tree
    position is stable and the encoding is recomputed.
    """

    def __init__(self):
        self._values: list[float] = []
        self._ids: list[int] = []
        self._codes: list[int] = []
        self._next_id = 0
        self.rebalances = 0
        self.encodings = 0

    def encode(self, value: float) -> tuple[int, int]:
        """Return ``(entry id, current code)`` for ``value``.

        Equal plaintexts share an entry (deterministic — part of the
        leakage).  Amortised O(log n); a rebalance costs O(n).
        """
        self.encodings += 1
        position = bisect.bisect_left(self._values, value)
        if position < len(self._values) and self._values[position] == value:
            return self._ids[position], self._codes[position]
        lower = self._codes[position - 1] if position > 0 else 0
        upper = (
            self._codes[position]
            if position < len(self._codes)
            else 2 * _CODE_SPAN
        )
        if upper - lower < 2:
            self._rebalance()
            self.encodings -= 1  # the retry recounts
            return self.encode(value)
        entry_id = self._next_id
        self._next_id += 1
        self._values.insert(position, value)
        self._ids.insert(position, entry_id)
        self._codes.insert(position, (lower + upper) // 2)
        return entry_id, self._codes[position]

    def _rebalance(self) -> None:
        self.rebalances += 1
        count = len(self._codes)
        step = (2 * _CODE_SPAN) // (count + 1)
        self._codes = [step * (i + 1) for i in range(count)]

    def codes_by_id(self) -> dict[int, int]:
        """Current ``entry id -> code`` mapping (the server-side refresh
        a rebalance triggers in mOPE)."""
        return dict(zip(self._ids, self._codes))

    def ids_in_range(self, low: float, high: float) -> list[int]:
        """Entry ids whose plaintext lies in ``[low, high]``."""
        lo_pos = bisect.bisect_left(self._values, low)
        hi_pos = bisect.bisect_right(self._values, high)
        return self._ids[lo_pos:hi_pos]


class OpeStore:
    """Server-side store of order-encoded ciphertexts.

    Parameters
    ----------
    cipher:
        Cipher for the record payloads (the indexed value additionally
        leaks through the order-preserving code).
    """

    def __init__(self, cipher: RecordCipher):
        self._cipher = cipher
        self._encoder = OpeEncoder()
        self._rows: dict[int, list[bytes]] = {}
        self.inserts = 0

    @property
    def encoder(self) -> OpeEncoder:
        """The (client-held) encoder state."""
        return self._encoder

    def insert(self, indexed_value: float, payload: bytes) -> None:
        """Encrypt and store one record under its order entry."""
        entry_id, _ = self._encoder.encode(indexed_value)
        self._rows.setdefault(entry_id, []).append(
            self._cipher.encrypt(payload)
        )
        self.inserts += 1

    def range_query(self, low: float, high: float) -> list[bytes]:
        """Ciphertexts whose code falls in the encoded range — the server
        walks its rows in code order between the two boundary codes."""
        results: list[bytes] = []
        for entry_id in self._encoder.ids_in_range(low, high):
            results.extend(self._rows.get(entry_id, ()))
        return results

    def observed_codes(self) -> list[int]:
        """What the honest-but-curious server sees: every stored row's
        current code, in storage (plaintext) order — a total-order leak."""
        codes = self._encoder.codes_by_id()
        observed = []
        for entry_id, rows in sorted(
            self._rows.items(), key=lambda item: codes.get(item[0], 0)
        ):
            observed.extend([codes[entry_id]] * len(rows))
        return observed
