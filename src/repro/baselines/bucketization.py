"""Bucketization baseline (Hacıgümüş et al. style).

The attribute domain is partitioned into a finite number of buckets, each
assigned a random tag; the client keeps the ``interval -> tag`` index and
the server only ever sees tags and ciphertexts.  A range query maps to the
set of tags intersecting the range; the server returns *all* contents of
those buckets and the client filters after decryption — cheap and
update-friendly, but with **no formal privacy guarantee** (bucket
cardinalities leak the histogram) and coarse over-retrieval (Table 1).
"""

from __future__ import annotations

import random

from repro.crypto.cipher import RecordCipher
from repro.index.domain import AttributeDomain


class BucketIndex:
    """Client-side secret mapping from domain buckets to random tags."""

    def __init__(self, domain: AttributeDomain, rng: random.Random | None = None):
        self.domain = domain
        shuffle_rng = rng if rng is not None else random.Random()
        tags = list(range(domain.num_leaves))
        shuffle_rng.shuffle(tags)
        self._tag_of_bucket = tags

    def tag(self, value: float) -> int:
        """Tag of the bucket containing ``value``."""
        return self._tag_of_bucket[self.domain.leaf_offset(value)]

    def tags_for_range(self, low: float, high: float) -> list[int]:
        """Tags of every bucket intersecting ``[low, high]``."""
        return [
            self._tag_of_bucket[offset]
            for offset in self.domain.leaves_overlapping(low, high)
        ]


class BucketStore:
    """Server-side tag → ciphertext-list store."""

    def __init__(self, index: BucketIndex, cipher: RecordCipher):
        self._index = index
        self._cipher = cipher
        self._buckets: dict[int, list[bytes]] = {}
        self.inserts = 0

    def insert(self, indexed_value: float, payload: bytes) -> None:
        """Encrypt one record into its bucket."""
        tag = self._index.tag(indexed_value)
        self._buckets.setdefault(tag, []).append(self._cipher.encrypt(payload))
        self.inserts += 1

    def fetch(self, tags: list[int]) -> list[bytes]:
        """Server answer: full contents of every requested bucket."""
        results: list[bytes] = []
        for tag in tags:
            results.extend(self._buckets.get(tag, ()))
        return results

    def range_query(self, low: float, high: float) -> list[bytes]:
        """Client-side convenience: translate the range, fetch buckets."""
        return self.fetch(self._index.tags_for_range(low, high))

    def observed_cardinalities(self) -> dict[int, int]:
        """What the server sees: per-tag record counts (the leakage)."""
        return {tag: len(records) for tag, records in self._buckets.items()}
