"""Demertzis et al. baseline — range search over searchable encryption.

Reference [10] of the paper ("Practical Private Range Search Revisited"):
the domain is decomposed into dyadic intervals; every record is *replicated*
under the keyed label of each dyadic interval containing its value, stored
in an encrypted multimap (label → ciphertext list).  A range query is
covered by O(log |D|) dyadic intervals, each answered with one exact SSE
multimap lookup — fast and oblivious of anything but the access pattern,
at the price of log-factor storage replication and a static structure
(Table 1: formal security *yes*, updates *no*, low latency *yes*, small
storage *no*).
"""

from __future__ import annotations

import hashlib
import hmac

from repro.baselines.pbtree import range_prefix_cover
from repro.crypto.cipher import RecordCipher

#: Bit width of the dyadic decomposition.
DYADIC_BITS = 32


def dyadic_labels(value: int, bits: int = DYADIC_BITS) -> list[str]:
    """The dyadic intervals containing ``value`` (one per level).

    These coincide with the prefix family's star-prefixes: the interval of
    size 2^k containing v is the prefix keeping ``bits - k`` leading bits.
    """
    if not 0 <= value < (1 << bits):
        raise ValueError(f"value {value} outside [0, 2^{bits})")
    binary = format(value, f"0{bits}b")
    return [binary[:keep] + "*" * (bits - keep) for keep in range(bits + 1)]


class DemertzisStore:
    """Static encrypted multimap over the dyadic decomposition.

    Parameters
    ----------
    records:
        The dataset: ``(integer value, plaintext payload)`` pairs.  The
        structure is built once (no update support).
    cipher:
        Cipher for the payloads.
    key:
        Label-derivation key shared with the querying client.
    """

    def __init__(
        self,
        records: list[tuple[int, bytes]],
        cipher: RecordCipher,
        key: bytes,
    ):
        self._cipher = cipher
        self._key = key
        self._multimap: dict[bytes, list[bytes]] = {}
        self.replicas_stored = 0
        self.lookups = 0
        for value, payload in records:
            ciphertext = cipher.encrypt(payload)
            for label in dyadic_labels(value):
                self._multimap.setdefault(self._token(label), []).append(
                    ciphertext
                )
                self.replicas_stored += 1
        self.record_count = len(records)

    def _token(self, label: str) -> bytes:
        return hmac.new(self._key, label.encode("ascii"), hashlib.sha256).digest()

    def range_query(self, low: int, high: int) -> list[bytes]:
        """Cover the range with dyadic intervals; one lookup per interval.

        Exact (no false positives): the dyadic cover partitions the range,
        and every replica under a covering label has its value inside it.
        """
        results: list[bytes] = []
        for label in range_prefix_cover(low, high, bits=DYADIC_BITS):
            self.lookups += 1
            results.extend(self._multimap.get(self._token(label), ()))
        return results

    def replication_factor(self) -> float:
        """Stored replicas per record — the log-factor storage overhead."""
        if self.record_count == 0:
            return 0.0
        return self.replicas_stored / self.record_count

    def storage_bytes(self) -> int:
        """Total ciphertext references held by the multimap (modelling
        each replica as a stored pointer/ciphertext pair)."""
        return sum(
            len(entries) * 40 for entries in self._multimap.values()
        )
