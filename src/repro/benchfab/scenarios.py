"""The bench registry: every fabric benchmark as declarative data.

One :class:`BenchSpec` per BENCH family — a scenario matrix plus the
tolerance rules that used to live as bespoke ``assert`` lines in the
hand-rolled scripts.  The ports preserve each script's workload shape
(dataset, stream seed, record counts, fault scripts) and each gate's
threshold; wherever the declarative form is *not* gate-for-gate
identical, the drift is written down in the rule's ``note`` — never
silently changed.

:func:`run_bench` is the one execution path: expand the matrix, run
every scenario, write the unified scorecard artifact (scenarios and
rules embedded), optionally append it to the trajectory, and evaluate.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.benchfab.rules import Rule
from repro.benchfab.runner import run_scenario
from repro.benchfab.scorecard import Scorecard, write_scorecards
from repro.benchfab.spec import MatrixSpec, Scenario
from repro.benchfab.trend import Comparison, TrajectoryStore, compare_artifact

#: Default artifact directory (the same one the legacy scripts used).
DEFAULT_OUT_DIR = "benchmarks/out"


@dataclass(frozen=True)
class BenchSpec:
    """One fabric benchmark: a matrix, its rules, and a summariser."""

    name: str
    title: str
    matrix: MatrixSpec
    rules: tuple[Rule, ...] = ()
    #: Optional post-pass deriving scale-free summary cards (ratios,
    #: simulated latencies) from the raw cards — what cross-machine
    #: trajectory rules gate on.
    summarise: Callable[[list[Scorecard]], list[Scorecard]] | None = None
    smoke: bool = False  # part of the CI smoke tier

    def scenarios(self) -> tuple[Scenario, ...]:
        return self.matrix.expand()


# ---------------------------------------------------------------------------
# Ported benches
# ---------------------------------------------------------------------------

_BATCHING = BenchSpec(
    name="batching",
    title="Batched ingestion, Gowalla x12000 (records/s)",
    matrix=MatrixSpec(
        bench="batching",
        base={
            "workload": "ingest",
            "dataset": "gowalla",
            "records": 12_000,
            "workers": 4,
            "sync_every": 16,
        },
        axes={
            "batch_size": (1, 8, 64, 256),
            "durability": ("memory", "durable"),
        },
    ),
    rules=(
        Rule(
            id="durable-batch64-speedup",
            kind="min-ratio",
            metric="throughput_rps",
            select=(("batch_size", 64), ("durability", "durable")),
            baseline=(("batch_size", 1), ("durability", "durable")),
            baseline_agg="last",
            threshold=2.0,
            note="ported verbatim from bench_batching's headline gate: "
            "group commit must at least double sync_every=16 journaling",
        ),
        Rule(
            id="memory-batch64-speedup",
            kind="min-ratio",
            metric="throughput_rps",
            select=(("batch_size", 64), ("durability", "memory")),
            baseline=(("batch_size", 1), ("durability", "memory")),
            baseline_agg="last",
            threshold=1.15,
            note="ported verbatim from bench_batching's in-memory gate",
        ),
    ),
)


def _summarise_adaptive(cards: list[Scorecard]) -> list[Scorecard]:
    by_variant = {card.key.get("variant", ""): card for card in cards}
    adaptive = by_variant.get("adaptive")
    static = [card for name, card in by_variant.items() if name != "adaptive"]
    if adaptive is None or not static:
        return []
    best_static = max(
        card.metrics["throughput_rps"] for card in static
    )
    static256 = by_variant.get("static-256")
    metrics = {
        "adaptive_vs_best_static": adaptive.metrics["throughput_rps"]
        / best_static,
        "trickle_p99_s": adaptive.metrics["p99_latency_s"],
        "final_batch_size": adaptive.metrics["final_batch_size"],
    }
    if static256 is not None:
        metrics["p99_vs_static256"] = (
            adaptive.metrics["p99_latency_s"]
            / static256.metrics["p99_latency_s"]
        )
    return [
        Scorecard(
            scenario="adaptive_batching/summary",
            key={"variant": "summary"},
            metrics=metrics,
        )
    ]


_ADAPTIVE = BenchSpec(
    name="adaptive_batching",
    title="Adaptive vs static batching, bursty Gowalla mix",
    matrix=MatrixSpec(
        bench="adaptive_batching",
        base={
            "workload": "burst-trickle",
            "dataset": "gowalla",
            "max_batch_delay": 0.2,
        },
        axes={},
        include=(
            {"name": "adaptive_batching/static-8", "batch_size": 8,
             "variant": "static-8"},
            {"name": "adaptive_batching/static-64", "batch_size": 64,
             "variant": "static-64"},
            {"name": "adaptive_batching/static-256", "batch_size": 256,
             "variant": "static-256"},
            {"name": "adaptive_batching/adaptive", "batch_size": 8,
             "adaptive": True, "min_batch_size": 4, "max_batch_size": 512,
             "variant": "adaptive"},
        ),
    ),
    summarise=_summarise_adaptive,
    rules=(
        Rule(
            id="adaptive-matches-best-static",
            kind="min-value",
            metric="adaptive_vs_best_static",
            select=(("variant", "summary"),),
            threshold=0.9,
            note="ported from bench_adaptive_batching's throughput gate",
        ),
        Rule(
            id="adaptive-grows-batch",
            kind="min-value",
            metric="final_batch_size",
            select=(("variant", "adaptive"),),
            threshold=9,
            note="drift: the script asserted final_batch_size > 8 "
            "(strict); min-value encodes it as >= 9 (sizes are integers)",
        ),
        Rule(
            id="trickle-p99-slo",
            kind="max-value",
            metric="p99_latency_s",
            select=(("variant", "adaptive"),),
            agg="max",
            threshold=0.1,
            note="ported p99 SLO (simulated seconds, machine-independent)",
        ),
        Rule(
            id="adaptive-p99-halves-static256",
            kind="max-ratio",
            metric="p99_latency_s",
            select=(("variant", "adaptive"),),
            baseline=(("variant", "static-256"),),
            baseline_agg="last",
            threshold=0.5,
            note="ported from bench_adaptive_batching: the cliff this "
            "controller exists to fix",
        ),
    ),
)

_SHM_SCALING = BenchSpec(
    name="shm_scaling",
    title="Shared-memory runtime scaling, Gowalla x8000 (records/s)",
    matrix=MatrixSpec(
        bench="shm_scaling",
        base={
            "workload": "publication",
            "dataset": "gowalla",
            "records": 8_000,
            "batch_size": 64,
        },
        axes={
            "workers": (1, 2, 4, 8),
            "runtime": ("shm", "threaded", "sync"),
            "durability": ("memory", "durable"),
        },
        exclude=(
            # The threaded baseline has no durable mode; the sync
            # baseline rides along only in its durable (single-process
            # journal) form, exactly the four series the script emitted.
            {"runtime": "threaded", "durability": "durable"},
            {"runtime": "sync", "durability": "memory"},
        ),
    ),
    rules=(
        Rule(
            id="shm-durable-doubles-threaded",
            kind="min-ratio",
            metric="throughput_rps",
            select=(
                ("durability", "durable"),
                ("runtime", "shm"),
                ("workers", 4),
            ),
            baseline=(("runtime", "threaded"), ("workers", 4)),
            baseline_agg="last",
            threshold=2.0,
            min_cpus=4,
            note="ported from bench_shm_scaling's headline gate; skips "
            "(not passes) below 4 CPUs exactly like the old _GATED flag",
        ),
        Rule(
            id="shm-2-workers-not-slower",
            kind="min-ratio",
            metric="throughput_rps",
            select=(
                ("durability", "memory"),
                ("runtime", "shm"),
                ("workers", 2),
            ),
            baseline=(
                ("durability", "memory"),
                ("runtime", "shm"),
                ("workers", 1),
            ),
            baseline_agg="last",
            threshold=0.9,
            min_cpus=4,
            note="ported: memory[2] >= 0.9 * memory[1]",
        ),
        Rule(
            id="shm-4-workers-not-slower",
            kind="min-ratio",
            metric="throughput_rps",
            select=(
                ("durability", "memory"),
                ("runtime", "shm"),
                ("workers", 4),
            ),
            baseline=(
                ("durability", "memory"),
                ("runtime", "shm"),
                ("workers", 2),
            ),
            baseline_agg="last",
            threshold=1.0,
            min_cpus=4,
            note="ported: memory[4] >= memory[2]",
        ),
    ),
)

_SHM_BATCH_SWEEP = BenchSpec(
    name="shm_batch_sweep",
    title="Shared-memory batch sweep at 4 workers, Gowalla x8000 (records/s)",
    matrix=MatrixSpec(
        bench="shm_batch_sweep",
        base={
            "workload": "publication",
            "runtime": "shm",
            "dataset": "gowalla",
            "records": 8_000,
            "workers": 4,
        },
        axes={"batch_size": (16, 64, 256)},
    ),
    rules=(
        Rule(
            id="every-batch-makes-progress",
            kind="min-value",
            metric="throughput_rps",
            agg="min",
            threshold=1,
            note="ported from bench_shm_scaling: every cell must finish "
            "with a positive rate; the sweet-spot shape itself is "
            "machine-dependent and ships ungated in the artifact",
        ),
    ),
)

_CHURN = BenchSpec(
    name="membership_churn",
    title="Threaded-runtime throughput across a membership-churn event",
    matrix=MatrixSpec(
        bench="membership_churn",
        base={
            "workload": "churn",
            "runtime": "threaded",
            "records": 1_000,
            "batch_size": 8,
            "credit_window": 32,
            "warmup_pubs": 2,
            "baseline_pubs": 3,
            "recovery_pubs": 5,
        },
        include=({"name": "membership_churn/churn-drill"},),
    ),
    rules=(
        Rule(
            id="steady-state-within-10pct",
            kind="min-ratio",
            metric="throughput_rps",
            select=(("phase", "recovery"),),
            agg="max",
            baseline=(("phase", "baseline"),),
            baseline_agg="median",
            threshold=0.90,
            note="ported from bench_membership_churn: best post-churn "
            "interval within 10% of the pre-churn median (best, not "
            "median — GIL runtimes jitter +-15% on shared boxes)",
        ),
        Rule(
            id="churn-rerouted-backlog",
            kind="min-value",
            metric="records_rerouted",
            select=(("phase", "summary"),),
            threshold=1,
            note="ported assert rerouted > 0: the crash landed mid-stream",
        ),
        Rule(
            id="four-epoch-bumps",
            kind="min-value",
            metric="final_epoch",
            select=(("phase", "summary"),),
            threshold=4,
            note="ported assert epoch >= 4: crash + admit + rejoin + retire",
        ),
        Rule(
            id="fleet-restored",
            kind="min-value",
            metric="final_fleet_size",
            select=(("phase", "summary"),),
            agg="min",
            threshold=3,
            note="drift: the script asserted the exact roster [0, 1, 2]; "
            "the rule checks the restored fleet *size* (the runner still "
            "reports the roster through the epoch counter)",
        ),
    ),
)

_DURABILITY = BenchSpec(
    name="durability",
    title="Write-ahead journal overhead and crash-recovery scaling",
    matrix=MatrixSpec(
        bench="durability",
        base={"durability": "durable"},
        include=(
            {"name": "durability/overhead-aes", "workload": "overhead",
             "records": 300, "cipher": "aes", "rounds": 7},
            {"name": "durability/overhead-sim", "workload": "overhead",
             "records": 1_000, "cipher": "sim", "rounds": 7},
            {"name": "durability/drill-100-ckpt64", "workload": "recovery",
             "records": 1_000, "checkpoint_every": 64, "crash_after": 100},
            {"name": "durability/drill-300-ckpt64", "workload": "recovery",
             "records": 1_000, "checkpoint_every": 64, "crash_after": 300},
            {"name": "durability/drill-500-ckpt64", "workload": "recovery",
             "records": 1_000, "checkpoint_every": 64, "crash_after": 500},
            {"name": "durability/drill-500-nockpt", "workload": "recovery",
             "records": 1_000, "checkpoint_every": 0, "crash_after": 500},
        ),
    ),
    rules=(
        Rule(
            id="journal-overhead-budget",
            kind="max-value",
            metric="cpu_overhead_frac",
            select=(("cipher", "aes"),),
            threshold=0.15,
            note="ported from bench_durability's acceptance budget: the "
            "journal may cost at most 15% CPU over the in-memory "
            "collector under the paper's record cipher",
        ),
        Rule(
            id="checkpoint-bounds-replay",
            kind="max-value",
            metric="replayed_raw",
            select=(("checkpoint_every", 64), ("crash_after", 500)),
            threshold=80,
            note="ported from bench_durability: with checkpoint_every=64 "
            "the replay after a 500-record crash is bounded by one "
            "checkpoint interval (+ journal tail), not the whole stream",
        ),
        Rule(
            id="full-replay-without-checkpoints",
            kind="min-value",
            metric="replayed_raw",
            select=(("checkpoint_every", 0), ("crash_after", 500)),
            threshold=400,
            note="without checkpoints the same crash replays the whole "
            "journal — the contrast row for checkpoint-bounds-replay",
        ),
    ),
)

_FAULTS = BenchSpec(
    name="fault_recovery",
    title="TCP runtime under injected transport faults",
    matrix=MatrixSpec(
        bench="fault_recovery",
        base={
            "workload": "publication",
            "runtime": "tcp",
            "records": 400,
            "retry_attempts": 6,
        },
        include=(
            {"name": "fault_recovery/baseline", "variant": "baseline"},
            {"name": "fault_recovery/severed", "variant": "severed",
             "fault_plan": "sever-checking"},
            {"name": "fault_recovery/crashed-cn", "variant": "crashed_cn",
             "fault_plan": "crash-cn1"},
        ),
    ),
    rules=(
        Rule(
            id="severed-loses-nothing",
            kind="min-ratio",
            metric="records_matched",
            select=(("variant", "severed"),),
            baseline=(("variant", "baseline"),),
            baseline_agg="last",
            threshold=1.0,
            note="ported assert severed matched == baseline matched: "
            "every failed write is retried in full",
        ),
        Rule(
            id="severed-reconnects",
            kind="min-value",
            metric="tcp_reconnects",
            select=(("variant", "severed"),),
            threshold=1,
            note="ported assert reconnects >= 1",
        ),
        Rule(
            id="crash-degrades-not-dies",
            kind="min-ratio",
            metric="records_matched",
            select=(("variant", "crashed_cn"),),
            baseline=(("variant", "baseline"),),
            baseline_agg="last",
            threshold=0.5,
            note="drift: the script asserted matched > RECORDS // 2 "
            "against the raw record count; the ratio form compares "
            "against the healthy run's matched pairs instead",
        ),
        Rule(
            id="crash-reroutes-backlog",
            kind="min-value",
            metric="records_rerouted",
            select=(("variant", "crashed_cn"),),
            threshold=1,
            note="ported assert rerouted > 0",
        ),
    ),
)

#: The cross-runtime conformance matrix (also the integration-test
#: parametrisation): every cell must fingerprint byte-identically to
#: the sync baseline.
CONFORMANCE_MATRIX = MatrixSpec(
    bench="conformance",
    base={
        "workload": "conformance",
        "records": 150,
        "publications": 2,
        "deterministic_ivs": True,
    },
    axes={
        "runtime": ("sync", "threaded", "tcp", "shm"),
        "batch_size": (1, 64),
        "durability": ("memory", "durable"),
    },
    exclude=(
        {"runtime": "threaded", "durability": "durable"},
        {"runtime": "tcp", "durability": "durable"},
    ),
    include=(
        # The adaptive controller reshapes flush timing; the bytes in
        # the cloud must not notice.
        {"name": "conformance/adaptive-sync", "runtime": "sync",
         "batch_size": 8, "adaptive": True},
        {"name": "conformance/adaptive-threaded", "runtime": "threaded",
         "batch_size": 8, "adaptive": True},
    ),
)

_CONFORMANCE = BenchSpec(
    name="conformance",
    title="Cross-runtime cloud-state byte identity",
    matrix=CONFORMANCE_MATRIX,
    rules=(
        Rule(
            id="byte-identical-to-sync",
            kind="fingerprint-match",
            baseline=(
                ("batch_size", 64),
                ("durability", "memory"),
                ("runtime", "sync"),
            ),
            note="every runtime x batch x durability x adaptive cell "
            "must publish byte-identical cloud state",
        ),
    ),
)


def _summarise_smoke(cards: list[Scorecard]) -> list[Scorecard]:
    """Scale-free summary the CI trajectory gates on: ratios and
    simulated-clock latencies only, never absolute records/s."""
    by_name = {card.scenario: card for card in cards}

    def rate(name: str) -> float:
        card = by_name.get(name)
        return card.metrics.get("throughput_rps", 0.0) if card else 0.0

    metrics: dict[str, float] = {}
    base = rate("fabric_smoke/batch_size=1")
    if base > 0:
        metrics["batch64_speedup"] = rate("fabric_smoke/batch_size=64") / base
    adaptive = by_name.get("fabric_smoke/adaptive")
    if adaptive is not None:
        metrics["trickle_p99_s"] = adaptive.metrics["p99_latency_s"]
        metrics["final_batch_size"] = adaptive.metrics["final_batch_size"]
    fingerprints = {
        card.fingerprint
        for card in cards
        if card.key.get("workload") == "conformance"
    }
    metrics["conformance_cells"] = float(
        sum(1 for card in cards if card.key.get("workload") == "conformance")
    )
    metrics["conformance_distinct_fingerprints"] = float(
        len(fingerprints - {None})
    )
    return [
        Scorecard(
            scenario="fabric_smoke/summary",
            key={"variant": "summary"},
            metrics=metrics,
        )
    ]


_SMOKE = BenchSpec(
    name="fabric_smoke",
    title="Benchmark-fabric CI smoke tier (reduced matrix, scale-free)",
    matrix=MatrixSpec(
        bench="fabric_smoke",
        base={"workload": "ingest", "dataset": "gowalla", "records": 4_000},
        axes={"batch_size": (1, 64)},
        include=(
            {"name": "fabric_smoke/adaptive", "workload": "burst-trickle",
             "batch_size": 8, "adaptive": True, "min_batch_size": 4,
             "max_batch_size": 512, "max_batch_delay": 0.2, "bursts": 3,
             "warmup_bursts": 1, "burst_records": 600,
             "trickle_records": 20},
            {"name": "fabric_smoke/conform-sync", "workload": "conformance",
             "records": 150, "batch_size": 8, "deterministic_ivs": True},
            {"name": "fabric_smoke/conform-threaded",
             "workload": "conformance", "runtime": "threaded",
             "records": 150, "batch_size": 8, "deterministic_ivs": True},
            {"name": "fabric_smoke/conform-durable",
             "workload": "conformance", "durability": "durable",
             "records": 150, "batch_size": 8, "deterministic_ivs": True},
        ),
    ),
    summarise=_summarise_smoke,
    smoke=True,
    rules=(
        Rule(
            id="smoke-batching-amortises",
            kind="min-value",
            metric="batch64_speedup",
            select=(("variant", "summary"),),
            threshold=1.05,
            note="drift: bench_batching gates 1.15x at 12k records; the "
            "smoke tier runs 4k records where the ratio is noisier, so "
            "the floor is 1.05x — the full gate still runs in the "
            "per-bench CI steps",
        ),
        Rule(
            id="smoke-trickle-p99-slo",
            kind="max-value",
            metric="trickle_p99_s",
            select=(("variant", "summary"),),
            threshold=0.1,
            note="simulated-clock latency: machine-independent",
        ),
        Rule(
            id="smoke-conformance-converges",
            kind="max-value",
            metric="conformance_distinct_fingerprints",
            select=(("variant", "summary"),),
            threshold=1,
            note="all conformance cells must share one fingerprint",
        ),
        Rule(
            id="smoke-speedup-trajectory",
            kind="trajectory-within",
            metric="batch64_speedup",
            select=(("variant", "summary"),),
            frac=0.35,
            note="cross-run gate on the committed trajectory; wide band "
            "because CI runners vary — absolute records/s are never "
            "compared across machines",
        ),
    ),
)

#: Every bench the fabric can run, by name.
BENCHES: dict[str, BenchSpec] = {
    spec.name: spec
    for spec in (
        _BATCHING,
        _ADAPTIVE,
        _SHM_SCALING,
        _SHM_BATCH_SWEEP,
        _CHURN,
        _DURABILITY,
        _FAULTS,
        _CONFORMANCE,
        _SMOKE,
    )
}


def bench_spec(name: str) -> BenchSpec:
    try:
        return BENCHES[name]
    except KeyError:
        known = ", ".join(sorted(BENCHES))
        raise KeyError(f"unknown bench {name!r} (known: {known})") from None


def run_bench(
    name: str,
    *,
    out_dir=DEFAULT_OUT_DIR,
    data_root=None,
    trajectory: TrajectoryStore | None = None,
    only: Sequence[str] = (),
    cpu_count: int | None = None,
    runner: Callable[..., list[Scorecard]] = run_scenario,
) -> tuple[pathlib.Path, Comparison]:
    """Run one fabric bench end to end.

    Expands the matrix (optionally filtered to scenario names in
    ``only``), runs every scenario, writes the unified scorecard
    artifact into ``out_dir``, appends it to ``trajectory`` when given,
    and evaluates the bench's rules.  ``runner`` is injectable so tests
    can exercise orchestration without driving real pipelines.
    """
    spec = bench_spec(name)
    scenarios = [
        scenario
        for scenario in spec.scenarios()
        if not only or scenario.name in only
    ]
    if not scenarios:
        raise KeyError(f"no scenarios of {name!r} match {list(only)!r}")
    cards: list[Scorecard] = []
    for scenario in scenarios:
        cards.extend(runner(scenario, data_root=data_root))
    if spec.summarise is not None:
        cards.extend(spec.summarise(cards))
    path = write_scorecards(
        pathlib.Path(out_dir),
        spec.name,
        cards,
        title=spec.title,
        scenarios=[scenario.to_dict() for scenario in scenarios],
        rules=[rule.to_dict() for rule in spec.rules],
    )
    # Compare against the trajectory *before* appending this run, so
    # trajectory rules see only prior history.
    comparison = compare_artifact(
        path, trajectory=trajectory, cpu_count=cpu_count
    )
    if trajectory is not None:
        trajectory.append(comparison.artifact)
    return path, comparison
