"""Named arrival streams for benchmark scenarios.

A scenario names its workload dataset; this registry maps the name to
the schema, binned domain and seeded generator the runner needs.  The
stream for a scenario is fully determined by ``(dataset, stream_seed,
records, publications)`` — the same scenario record always replays the
same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets.flu import FluSurveyGenerator, flu_domain
from repro.datasets.gowalla import GowallaGenerator
from repro.datasets.nasa import NasaLogGenerator
from repro.index.domain import AttributeDomain, gowalla_domain, nasa_domain
from repro.records.schema import (
    Schema,
    flu_survey_schema,
    gowalla_schema,
    nasa_log_schema,
)


@dataclass(frozen=True)
class Dataset:
    """One named workload: schema + domain + seeded line generator."""

    name: str
    schema_factory: Callable[[], Schema]
    domain_factory: Callable[[], AttributeDomain]
    generator_factory: Callable[[int], object]

    def schema(self) -> Schema:
        return self.schema_factory()

    def domain(self) -> AttributeDomain:
        return self.domain_factory()

    def lines(
        self, stream_seed: int, records: int, publications: int = 1
    ) -> list[list[str]]:
        """The scenario's publication intervals, one list per interval."""
        generator = self.generator_factory(stream_seed)
        return [
            list(generator.raw_lines(records)) for _ in range(publications)
        ]


DATASETS: dict[str, Dataset] = {
    "flu": Dataset(
        "flu",
        flu_survey_schema,
        flu_domain,
        lambda seed: FluSurveyGenerator(seed=seed),
    ),
    "gowalla": Dataset(
        "gowalla",
        gowalla_schema,
        gowalla_domain,
        lambda seed: GowallaGenerator(seed=seed),
    ),
    "nasa": Dataset(
        "nasa",
        nasa_log_schema,
        nasa_domain,
        lambda seed: NasaLogGenerator(seed=seed),
    ),
}


def dataset(name: str) -> Dataset:
    """Look up a registered dataset; raises ``KeyError`` with the menu."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; registered: {sorted(DATASETS)}"
        ) from None
