"""The canonical cloud-state fingerprint, as a library.

This is the byte-identity currency of the whole repository: the batch,
flow, shm and membership equivalence harnesses all compare deployments
through this exact serialization (``tests/conftest.py`` delegates
here), and the benchmark fabric stamps it on every scorecard so a
conformance row is one string comparison.

Two runs agree on the fingerprint iff the cloud holds byte-identical
publications in identical order with the same receipts and checking
counters.  The digest form normalises representation noise (int vs str
keys, tuple vs list) by hashing the sorted-key JSON rendering.
"""

from __future__ import annotations

import hashlib
import json


def cloud_state_fingerprint(system) -> dict:
    """Canonical, byte-level serialization of a deployment's cloud state.

    ``system`` is any runtime exposing ``.cloud`` and ``.checking``
    (the sync system, the durable system, the threaded and TCP
    clusters).  The shared-memory cluster computes the identical shape
    worker-side via :meth:`ShmFresqueCluster.fingerprint`.
    """
    files = {}
    for file_id in sorted(system.cloud.store._files):
        handle = system.cloud.store.file(file_id)
        digest = hashlib.sha256()
        for record in handle._records:
            digest.update(record.leaf_offset.to_bytes(4, "little"))
            digest.update(len(record.ciphertext).to_bytes(4, "little"))
            digest.update(record.ciphertext)
        files[file_id] = (handle.record_count, digest.hexdigest())
    receipts = {
        publication: system.cloud.receipt_for(publication).records_matched
        for publication in sorted(system.cloud._done)
    }
    return {
        "files": files,
        "receipts": receipts,
        "pairs_processed": system.checking.pairs_processed,
        "dummies_passed": system.checking.dummies_passed,
        "records_removed": system.checking.records_removed,
        "duplicate_pairs": system.cloud.duplicate_pairs,
    }


def _normalise(value):
    """Representation-independent form: digit-string keys become ints
    (the shm worker stringifies file ids, and ``"10" < "2"`` as strings
    would reorder them), mappings become key-sorted pair lists, tuples
    become lists."""
    if isinstance(value, dict):
        pairs = []
        for key, item in value.items():
            if isinstance(key, str) and key.isdigit():
                key = int(key)
            pairs.append((key, _normalise(item)))
        pairs.sort(key=lambda pair: (str(type(pair[0])), pair[0]))
        return [[str(key), item] for key, item in pairs]
    if isinstance(value, (list, tuple)):
        return [_normalise(item) for item in value]
    return value


def fingerprint_digest(state: dict) -> str:
    """One comparable string for a fingerprint dict.

    The single-process shape and the shm worker's shape of the *same*
    cloud state digest identically (see :func:`_normalise`).
    """
    return hashlib.sha256(
        json.dumps(_normalise(state), default=list).encode()
    ).hexdigest()
