"""Entry point: ``python -m repro.benchfab``."""

import sys

from repro.benchfab.cli import main

sys.exit(main())
