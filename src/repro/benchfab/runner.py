"""Executes declarative scenarios against the real system builders.

The runner owns every drive loop the seven hand-rolled bench scripts
used to copy around; scenarios own every knob.  One entry point —
:func:`run_scenario` — dispatches on ``scenario.workload``:

* ``ingest`` — ingest-only records/s (sync or durable collector);
* ``publication`` — full-publication records/s on any runtime, with
  optional named fault plans and checking-shard counts;
* ``burst-trickle`` — the adaptive-batching duty cycle: wall-clock
  burst throughput + simulated-clock trickle flush latency;
* ``churn`` — per-publication throughput across a scripted
  crash/admit/rejoin/retire sequence on the threaded runtime;
* ``recovery`` — durable crash drill: journal replay + recovery time;
* ``overhead`` — paired journal-on/off CPU rounds (median ratio);
* ``conformance`` — run the stream, return only the cloud-state
  fingerprint (the cross-runtime byte-identity matrix).

Every run emits one :class:`~repro.benchfab.scorecard.Scorecard` in the
unified schema, with telemetry-registry counters and stage-latency
quantiles attached when the runtime supports a private registry.
"""

from __future__ import annotations

import pathlib
import statistics
import tempfile
import time
from typing import Callable

from repro.benchfab.datasets import dataset
from repro.benchfab.fingerprint import (
    cloud_state_fingerprint,
    fingerprint_digest,
)
from repro.benchfab.scorecard import Scorecard
from repro.benchfab.spec import Scenario, SpecError
from repro.core.config import FresqueConfig
from repro.crypto.cipher import AesCbcCipher, SimulatedCipher
from repro.crypto.keys import KeyStore
from repro.telemetry.clock import SimulatedClock
from repro.telemetry.context import Telemetry

#: Master key every fabric deployment derives its cipher from — a fixed
#: benchmark constant so fingerprints are reproducible across runs.
MASTER_KEY = b"fresque-bench-master-key-32bytes"  # fresque-lint: disable=FRQ-X202 -- reproducible benchmark key, not a production secret

#: Named fault plans a scenario can reference (``Scenario.fault_plan``).
#: Names, not objects: the scenario stays serialisable data.
FAULT_PLANS: dict[str, Callable[[], object]] = {}


def _register_fault_plans() -> None:
    from repro.runtime.faults import FaultPlan

    FAULT_PLANS.update(
        {
            "sever-checking": lambda: FaultPlan(seed=5).sever_connection(
                "checking", at_frames=(50, 150)
            ),
            # The 1ms delay paces the driver against cn-1's worker so
            # the crash lands mid-stream (see bench_fault_recovery).
            "crash-cn1": lambda: FaultPlan(seed=5)
            .crash_node("cn-1", after_handled=30)
            .delay_frames("cn-1", 0.001, probability=1.0),
        }
    )


_register_fault_plans()


class RunnerError(RuntimeError):
    """Raised when a scenario cannot be executed as written."""


def _cipher(scenario: Scenario):
    kind = scenario.param("cipher", "sim")
    keys = KeyStore(MASTER_KEY, key_size=16)
    if kind == "sim":
        return SimulatedCipher(keys)
    if kind == "aes":
        return AesCbcCipher(keys)
    raise RunnerError(f"unknown cipher {kind!r} in {scenario.name}")


def build_config(scenario: Scenario) -> FresqueConfig:
    """The deployment config a scenario describes."""
    source = dataset(scenario.dataset)
    kwargs = dict(
        schema=source.schema(),
        domain=source.domain(),
        num_computing_nodes=scenario.workers,
        epsilon=float(scenario.param("epsilon", 1.0)),
        alpha=float(scenario.param("alpha", 2.0)),
        batch_size=scenario.batch_size,
        deterministic_ivs=scenario.deterministic_ivs,
    )
    delay = scenario.param("max_batch_delay")
    if delay is not None:
        kwargs["max_batch_delay"] = float(delay)
    if scenario.adaptive:
        kwargs["adaptive_batching"] = True
        kwargs["min_batch_size"] = int(scenario.param("min_batch_size", 1))
        kwargs["max_batch_size"] = int(
            scenario.param("max_batch_size", max(1024, scenario.batch_size))
        )
    credit = scenario.param("credit_window")
    if credit is not None:
        kwargs["credit_window"] = int(credit)
    return FresqueConfig(**kwargs)


def _fault_plan(scenario: Scenario):
    if not scenario.fault_plan:
        return None
    try:
        return FAULT_PLANS[scenario.fault_plan]()
    except KeyError:
        raise RunnerError(
            f"unknown fault plan {scenario.fault_plan!r} in {scenario.name}"
        ) from None


def _telemetry_counters(telemetry: Telemetry) -> dict[str, float]:
    """Nonzero counters/gauges of a run's private registry, flattened."""
    out: dict[str, float] = {}
    for sample in telemetry.registry.samples():
        if sample.kind == "histogram" or not sample.value:
            continue
        labels = ",".join(f"{k}={v}" for k, v in sample.labels)
        name = f"{sample.name}{{{labels}}}" if labels else sample.name
        out[name] = float(sample.value)
    return out


def _stage_quantiles(telemetry: Telemetry) -> dict[str, float]:
    """p50/p99 of the publish stage — the ingest-to-publish latency the
    unified scorecard reports when the runtime feeds the registry."""
    histogram = telemetry.registry.histogram(
        "pipeline_stage_seconds", stage="publish"
    )
    if not histogram.count:
        return {}
    return {
        "p50_latency_s": histogram.quantile(0.5),
        "p99_latency_s": histogram.quantile(0.99),
    }


def _scorecard(
    scenario: Scenario,
    metrics: dict[str, float],
    *,
    counters: dict[str, float] | None = None,
    fingerprint: str | None = None,
) -> Scorecard:
    return Scorecard(
        scenario=scenario.name,
        key=scenario.axes(),
        metrics=metrics,
        counters=counters or {},
        fingerprint=fingerprint,
    )


def _data_dir(scenario: Scenario, data_root, tag: str = "") -> pathlib.Path:
    root = pathlib.Path(data_root)
    safe = scenario.name.replace("/", "_").replace("=", "-")
    path = root / (f"{safe}-{tag}" if tag else safe)
    path.mkdir(parents=True, exist_ok=True)
    return path


# ---------------------------------------------------------------------------
# Deployment builders
# ---------------------------------------------------------------------------


def _build_sync(scenario, config, telemetry, data_root):
    from repro.core.system import FresqueSystem
    from repro.durability.system import DurableFresqueSystem

    if scenario.durability == "durable":
        system = DurableFresqueSystem(
            config,
            _cipher(scenario),
            _data_dir(scenario, data_root),
            seed=scenario.seed,
            checkpoint_every=scenario.checkpoint_every,
            sync_every=scenario.sync_every,
        )
    else:
        system = FresqueSystem(
            config, _cipher(scenario), seed=scenario.seed, telemetry=telemetry
        )
    system.start()
    return system, lambda: None


def _build_threaded(scenario, config, telemetry, data_root):
    del data_root
    from repro.runtime.cluster import ThreadedFresque

    if scenario.durability == "durable":
        raise RunnerError(
            f"{scenario.name}: the threaded runtime has no durable mode"
        )
    system = ThreadedFresque(
        config,
        _cipher(scenario),
        seed=scenario.seed,
        telemetry=telemetry,
        fault_plan=_fault_plan(scenario),
    )
    system.start()
    return system, system.shutdown


def _build_tcp(scenario, config, telemetry, data_root):
    del data_root
    from repro.runtime.tcp import RetryPolicy, TcpFresqueCluster

    if scenario.durability == "durable":
        raise RunnerError(
            f"{scenario.name}: the TCP runtime has no durable mode"
        )
    retry = scenario.param("retry_attempts")
    system = TcpFresqueCluster(
        config,
        _cipher(scenario),
        seed=scenario.seed,
        telemetry=telemetry,
        fault_plan=_fault_plan(scenario),
        retry_policy=RetryPolicy(
            max_attempts=int(retry), base_delay=0.01, max_delay=0.1
        )
        if retry is not None
        else None,
    )
    system.__enter__()
    return system, lambda: system.__exit__(None, None, None)


def _build_shm(scenario, config, telemetry, data_root):
    from repro.runtime.shm.cluster import ShmFresqueCluster

    system = ShmFresqueCluster(
        config,
        MASTER_KEY,
        seed=scenario.seed,
        telemetry=telemetry,
        data_dir=_data_dir(scenario, data_root)
        if scenario.durability == "durable"
        else None,
        fault_plan=_fault_plan(scenario),
    )
    system.__enter__()
    return system, lambda: system.__exit__(None, None, None)


_BUILDERS = {
    "sync": _build_sync,
    "threaded": _build_threaded,
    "tcp": _build_tcp,
    "shm": _build_shm,
}


def _deploy(scenario, config, telemetry, data_root):
    """(system, close) for the scenario's runtime × durability cell."""
    if scenario.shards:
        from repro.core.sharded import ShardedFresqueSystem

        if scenario.runtime != "sync" or scenario.durability != "memory":
            raise RunnerError(
                f"{scenario.name}: checking shards only deploy on the "
                "in-memory sync runtime"
            )
        system = ShardedFresqueSystem(
            config,
            _cipher(scenario),
            num_checking_shards=scenario.shards,
            seed=scenario.seed,
        )
        system.start()
        return system, lambda: None
    return _BUILDERS[scenario.runtime](scenario, config, telemetry, data_root)


def _fingerprint_of(scenario, system) -> str | None:
    if scenario.shards:
        return None  # sharded checking has no single counter set
    if scenario.runtime == "shm":
        return fingerprint_digest(system.fingerprint())
    return fingerprint_digest(cloud_state_fingerprint(system))


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def _run_ingest(scenario, data_root, telemetry) -> Scorecard:
    """Ingest-only records/s: dispatch/parse/encrypt/check amortisation
    (and, durable, the journal's group-commit discipline)."""
    if scenario.runtime != "sync":
        raise RunnerError(
            f"{scenario.name}: the ingest workload times the collector "
            "loop and only runs on the sync runtime"
        )
    lines = dataset(scenario.dataset).lines(
        scenario.stream_seed, scenario.records
    )[0]
    config = build_config(scenario)
    system, close = _deploy(scenario, config, telemetry, data_root)
    try:
        started = time.perf_counter()
        system.ingest_batch(lines)
        system.flush_ingest()
        elapsed = time.perf_counter() - started
    finally:
        close()
    metrics = {
        "records_total": float(len(lines)),
        "throughput_rps": len(lines) / elapsed if elapsed > 0 else 0.0,
    }
    metrics.update(_stage_quantiles(telemetry))
    return _scorecard(
        scenario, metrics, counters=_telemetry_counters(telemetry)
    )


def _run_publication(scenario, data_root, telemetry) -> Scorecard:
    """Full-publication records/s on any runtime, faults included."""
    source = dataset(scenario.dataset)
    publications = source.lines(
        scenario.stream_seed, scenario.records, scenario.publications
    )
    config = build_config(scenario)
    system, close = _deploy(scenario, config, telemetry, data_root)
    total = sum(len(lines) for lines in publications)
    try:
        started = time.perf_counter()
        returned = [system.run_publication(lines) for lines in publications]
        elapsed = time.perf_counter() - started
        # Matched-pair count: the tcp/shm clusters report it from
        # run_publication; single-process runtimes expose the checking
        # counters directly.
        if any(isinstance(value, int) for value in returned):
            matched = sum(
                value for value in returned if isinstance(value, int)
            )
        elif hasattr(system, "checking"):
            matched = (
                system.checking.pairs_processed
                - system.checking.records_removed
            )
        else:
            matched = None
        fingerprint = (
            _fingerprint_of(scenario, system)
            if scenario.deterministic_ivs and not scenario.fault_plan
            else None
        )
        counters = _telemetry_counters(telemetry)
        for name in ("records_rerouted",):
            value = getattr(system.dispatcher, name, 0)
            if value:
                counters[name] = float(value)
        router = getattr(system, "router", None)
        if router is not None:
            counters["tcp_retries"] = float(router.retries)
            counters["tcp_reconnects"] = float(router.reconnects)
        dead = getattr(system, "dead_nodes", None)
        if dead:
            counters["dead_nodes"] = float(len(dead))
    finally:
        close()
    metrics = {
        "records_total": float(total),
        "throughput_rps": total / elapsed if elapsed > 0 else 0.0,
    }
    if matched is not None:
        metrics["records_matched"] = float(matched)
    metrics.update(_stage_quantiles(telemetry))
    return _scorecard(
        scenario, metrics, counters=counters, fingerprint=fingerprint
    )


class _SimLoop:
    """Minimal event-loop stand-in the simulated clock reads."""

    def __init__(self) -> None:
        self.now = 0.0


def _run_burst_trickle(scenario, data_root, telemetry) -> Scorecard:
    """The adaptive-batching duty cycle (see bench_adaptive_batching):
    wall-clock burst throughput, simulated-clock trickle latency."""
    del telemetry  # this workload needs the simulated clock below
    from repro.core.system import FresqueSystem

    bursts = int(scenario.param("bursts", 6))
    warmup = int(scenario.param("warmup_bursts", 2))
    burst_records = int(scenario.param("burst_records", 2000))
    trickle_records = int(scenario.param("trickle_records", 40))
    arrival = float(scenario.param("arrival_s", 1.0 / 200_000.0))
    poll = float(scenario.param("poll_s", 0.01))
    if scenario.runtime != "sync" or scenario.durability != "memory":
        raise RunnerError(
            f"{scenario.name}: burst-trickle drives the sync in-memory "
            "pipeline (the controller's clock must be simulated)"
        )
    total = bursts * (burst_records + trickle_records)
    lines = iter(
        dataset(scenario.dataset)
        .generator_factory(scenario.stream_seed)
        .raw_lines(total)
    )
    loop = _SimLoop()
    sim_telemetry = Telemetry(clock=SimulatedClock(loop))
    config = build_config(scenario)
    system = FresqueSystem(
        config, _cipher(scenario), seed=scenario.seed, telemetry=sim_telemetry
    )
    system.start()
    busy_wall = 0.0
    busy_records = 0
    latencies: list[float] = []
    for burst in range(bursts):
        measured = burst >= warmup
        started = time.perf_counter()
        for _ in range(burst_records):
            loop.now += arrival
            system.ingest(next(lines))
        if measured:
            busy_wall += time.perf_counter() - started
            busy_records += burst_records
        system.flush_ingest()  # clear burst leftovers before the trickle
        for _ in range(trickle_records):
            system.ingest(next(lines))
            enqueued = loop.now
            for _ in range(10_000):
                if system.dispatcher.pending_batch_records == 0:
                    break
                loop.now += poll
                system.poll_flush()
            else:
                raise RunnerError(
                    f"{scenario.name}: trickle record never flushed"
                )
            if measured:
                latencies.append(loop.now - enqueued)
    latencies.sort()
    metrics = {
        "throughput_rps": busy_records / busy_wall if busy_wall else 0.0,
        "p50_latency_s": latencies[len(latencies) // 2],
        "p99_latency_s": latencies[int(0.99 * (len(latencies) - 1))],
        "final_batch_size": float(system.dispatcher.batch_size),
    }
    return _scorecard(
        scenario, metrics, counters=_telemetry_counters(sim_telemetry)
    )


def _run_churn(scenario, data_root, telemetry) -> list[Scorecard]:
    """Throughput trajectory across a scripted membership-churn event.

    Emits one card per publication (``phase`` in the key) plus a
    summary card — the fabric form of bench_membership_churn.
    """
    del data_root
    from repro.telemetry.clock import WALL_CLOCK

    if scenario.runtime != "threaded":
        raise RunnerError(
            f"{scenario.name}: the churn workload drives the threaded "
            "runtime (per-node threads crash/rejoin in-process)"
        )
    warmup = int(scenario.param("warmup_pubs", 2))
    baseline_pubs = int(scenario.param("baseline_pubs", 3))
    recovery_pubs = int(scenario.param("recovery_pubs", 5))
    victim = int(scenario.param("victim", 1))
    config = build_config(scenario)
    generator = dataset(scenario.dataset).generator_factory(
        scenario.stream_seed
    )
    from repro.runtime.cluster import ThreadedFresque

    runtime = ThreadedFresque(
        config, _cipher(scenario), seed=scenario.seed, telemetry=telemetry
    )
    series: list[dict] = []
    with runtime:
        def run_publication(lines, events=()) -> float:
            slots: dict[int, list] = {}
            for position, action in events:
                slots.setdefault(position, []).append(action)
            publication = runtime.dispatcher.publication
            total = max(1, len(lines))
            started = WALL_CLOCK.now()
            for position, line in enumerate(lines):
                for action in slots.get(position, ()):
                    action(runtime)
                runtime.pump_dummies((position + 1) / (total + 1))
                runtime.ingest(line)
            runtime.close_publication()
            runtime.settle(publication, timeout=120.0)
            return WALL_CLOCK.now() - started

        def measure(phase: str, events=()) -> None:
            lines = list(generator.raw_lines(scenario.records))
            seconds = run_publication(lines, events)
            series.append(
                {
                    "phase": phase,
                    "records": len(lines),
                    "seconds": seconds,
                    "throughput_rps": len(lines) / seconds
                    if seconds > 0
                    else 0.0,
                }
            )

        for _ in range(warmup):
            measure("warmup")
        for _ in range(baseline_pubs):
            measure("baseline")
        # Churn publication: the victim crashes a third of the way in,
        # a fresh node is admitted two thirds in.
        measure(
            "churn",
            events=(
                (scenario.records // 3, lambda r: r.crash_node(victim)),
                (2 * scenario.records // 3, lambda r: r.admit_node()),
            ),
        )
        # Recovery: the victim rejoins at the interval open and the
        # stand-in retires, restoring the baseline fleet shape.
        measure(
            "recovery",
            events=(
                (0, lambda r: r.rejoin_node(victim)),
                (0, lambda r: r.retire_node(scenario.workers)),
            ),
        )
        for _ in range(recovery_pubs - 1):
            measure("recovery")
        rerouted = runtime.dispatcher.records_rerouted
        stale = runtime.checking.stale_batches_discarded
        epoch = runtime.dispatcher.membership.epoch
        active = sorted(runtime.dispatcher.membership.active_ids)

    cards = [
        Scorecard(
            scenario=f"{scenario.name}/pub{index}",
            key={**scenario.axes(), "phase": run["phase"], "pub": index},
            metrics={
                "records_total": float(run["records"]),
                "seconds": run["seconds"],
                "throughput_rps": run["throughput_rps"],
            },
        )
        for index, run in enumerate(series)
    ]
    baseline = statistics.median(
        run["throughput_rps"] for run in series if run["phase"] == "baseline"
    )
    churn_rate = next(
        run["throughput_rps"] for run in series if run["phase"] == "churn"
    )
    recovery = [
        run["throughput_rps"] for run in series if run["phase"] == "recovery"
    ]
    summary = Scorecard(
        scenario=f"{scenario.name}/summary",
        key={**scenario.axes(), "phase": "summary"},
        metrics={
            "baseline_rps": baseline,
            "churn_rps": churn_rate,
            "dip_fraction": 1.0 - churn_rate / baseline if baseline else 0.0,
            "steady_state_rps": max(recovery),
            "median_recovery_rps": statistics.median(recovery),
            "records_rerouted": float(rerouted),
            "stale_batches_discarded": float(stale),
            "final_epoch": float(epoch),
            "final_fleet_size": float(len(active)),
        },
        counters=_telemetry_counters(telemetry),
    )
    return cards + [summary]


def _run_recovery(scenario, data_root, telemetry) -> Scorecard:
    """Durable crash drill: crash mid-interval, time the recovery."""
    del telemetry
    from repro.durability.recovery import RecoveryManager
    from repro.durability.system import CollectorCrash, DurableFresqueSystem
    from repro.runtime.faults import FaultPlan

    crash_after = int(scenario.param("crash_after", scenario.records // 2))
    config = build_config(scenario)
    root = _data_dir(scenario, data_root, "drill")
    plan = FaultPlan(seed=5).crash_collector(after_records=crash_after)
    system = DurableFresqueSystem(
        config,
        _cipher(scenario),
        root,
        seed=scenario.seed,
        fault_plan=plan,
        checkpoint_every=scenario.checkpoint_every,
        sync_every=scenario.sync_every,
    )
    system.start()
    lines = dataset(scenario.dataset).lines(
        scenario.stream_seed, scenario.records
    )[0]
    try:
        for line in lines:
            system.ingest(line)
    except CollectorCrash:
        pass
    started = time.perf_counter()
    _, report = RecoveryManager(
        config,
        _cipher(scenario),
        root,
        cloud=system.cloud,
        seed=scenario.seed + 101,
        checkpoint_every=scenario.checkpoint_every,
    ).recover()
    seconds = time.perf_counter() - started
    # checkpoint_every=0 is the field default and would be elided from
    # the key; the contrast rules select on it, so pin it explicitly.
    key = {**scenario.axes(), "checkpoint_every": scenario.checkpoint_every}
    return Scorecard(
        scenario=scenario.name,
        key=key,
        metrics={
            "recovery_s": seconds,
            "replayed_raw": float(report.replayed_raw),
            "checkpoint_used": 1.0 if report.checkpoint_used else 0.0,
            "crash_after": float(crash_after),
        },
    )


def _run_overhead(scenario, data_root, telemetry) -> Scorecard:
    """Journal-on vs journal-off ingestion cost, median CPU-time ratio
    of paired rounds (see bench_durability for why CPU, why median)."""
    del telemetry
    from repro.core.system import FresqueSystem
    from repro.durability.system import DurableFresqueSystem

    rounds = int(scenario.param("rounds", 7))
    config = build_config(scenario)
    lines = dataset(scenario.dataset).lines(
        scenario.stream_seed, scenario.records
    )[0]

    def ingest_cpu(system) -> float:
        system.start()
        total = max(1, len(lines))
        cpu = time.process_time()
        for position, line in enumerate(lines):
            system._pump(
                system.dispatcher.due_dummies((position + 1) / (total + 1))
            )
            system.ingest(line)
        return time.process_time() - cpu

    ratios = []
    for index in range(rounds):
        base = ingest_cpu(
            FresqueSystem(config, _cipher(scenario), seed=scenario.seed)
        )
        durable = ingest_cpu(
            DurableFresqueSystem(
                config,
                _cipher(scenario),
                _data_dir(scenario, data_root, f"round{index}"),
                seed=scenario.seed,
                checkpoint_every=0,
            )
        )
        ratios.append(durable / base if base > 0 else 1.0)
    return _scorecard(
        scenario,
        {
            "cpu_overhead_frac": statistics.median(ratios) - 1.0,
            "rounds": float(rounds),
            "records_total": float(len(lines)),
        },
    )


def _run_conformance(scenario, data_root, telemetry) -> Scorecard:
    """Run the stream; report only the cloud-state fingerprint."""
    source = dataset(scenario.dataset)
    publications = source.lines(
        scenario.stream_seed, scenario.records, scenario.publications
    )
    config = build_config(scenario)
    system, close = _deploy(scenario, config, telemetry, data_root)
    try:
        for lines in publications:
            system.run_publication(lines)
        digest = _fingerprint_of(scenario, system)
    finally:
        close()
    return _scorecard(
        scenario,
        {
            "records_total": float(
                sum(len(lines) for lines in publications)
            )
        },
        fingerprint=digest,
    )


_WORKLOADS = {
    "ingest": _run_ingest,
    "publication": _run_publication,
    "burst-trickle": _run_burst_trickle,
    "churn": _run_churn,
    "recovery": _run_recovery,
    "overhead": _run_overhead,
    "conformance": _run_conformance,
}


def run_scenario(
    scenario: Scenario, *, data_root=None
) -> list[Scorecard]:
    """Execute one scenario; returns its scorecards (usually one).

    ``data_root`` hosts journals/checkpoints for durable scenarios (a
    temporary directory when omitted).
    """
    if scenario.workload not in _WORKLOADS:
        raise SpecError(f"unknown workload {scenario.workload!r}")
    # Validate the fault-plan name up front: a sync run ignores plans
    # (no injection points), which would otherwise hide a typo forever.
    _fault_plan(scenario)
    telemetry = Telemetry()
    workload = _WORKLOADS[scenario.workload]
    if data_root is None:
        with tempfile.TemporaryDirectory(prefix="benchfab-") as tmp:
            result = workload(scenario, tmp, telemetry)
    else:
        result = workload(scenario, data_root, telemetry)
    return result if isinstance(result, list) else [result]
