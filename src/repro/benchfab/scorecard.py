"""The unified scorecard schema and the BENCH_*.json loader.

One schema for every benchmark: a :class:`Scorecard` is the measured
outcome of one scenario (throughput, p50/p99 ingest-to-publish latency,
recovery time, CPU overhead, cloud-state fingerprint, plus free-form
counters pulled from the telemetry registry).  A run writes its cards —
with the scenario records and tolerance rules embedded — through the
telemetry exporter's stable ``BENCH_*.json`` envelope.

The loader reads *every* artifact this repository has ever emitted:
new scorecard files and all the legacy layouts (series tables,
durability dicts, churn series, micro-op means, fault-recovery runs)
normalise into one list of :class:`Point` records the rule engine
evaluates.  Legacy artifacts stay readable forever; the round-trip test
(`tests/benchfab/test_scorecard.py`) pins that.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.telemetry.exporters import FORMAT_VERSION, write_bench_json

#: Version of the scorecard payload inside the BENCH envelope.
SCORECARD_VERSION = 1

#: The unified metric vocabulary.  Workloads may add extras, but these
#: names mean the same thing in every artifact (docs/BENCHMARKS.md).
METRIC_NAMES = (
    "throughput_rps",
    "p50_latency_s",
    "p99_latency_s",
    "recovery_s",
    "cpu_overhead_frac",
)


class ScorecardError(ValueError):
    """Raised for artifacts that fail validation."""


@dataclass
class Scorecard:
    """The measured outcome of one scenario run."""

    scenario: str
    key: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    fingerprint: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "key": dict(self.key),
            "metrics": dict(self.metrics),
            "counters": dict(self.counters),
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scorecard":
        unknown = set(data) - {
            "scenario",
            "key",
            "metrics",
            "counters",
            "fingerprint",
        }
        if unknown:
            raise ScorecardError(f"unknown scorecard fields: {sorted(unknown)}")
        if "scenario" not in data:
            raise ScorecardError("scorecard missing 'scenario'")
        metrics = dict(data.get("metrics", {}))
        for name, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ScorecardError(
                    f"metric {name!r} of {data['scenario']!r} is not a "
                    f"number: {value!r}"
                )
        return cls(
            scenario=str(data["scenario"]),
            key=dict(data.get("key", {})),
            metrics=metrics,
            counters=dict(data.get("counters", {})),
            fingerprint=data.get("fingerprint"),
        )


@dataclass(frozen=True)
class Point:
    """One evaluable point of a series: axis key → numeric metrics."""

    key: tuple[tuple[str, Any], ...]
    metrics: Mapping[str, float]
    scenario: str = ""

    def label(self) -> str:
        if self.scenario:
            return self.scenario
        return ", ".join(f"{k}={v}" for k, v in self.key) or "(point)"

    def get(self, axis: str, default: Any = None) -> Any:
        for name, value in self.key:
            if name == axis:
                return value
        return default


@dataclass
class BenchArtifact:
    """One parsed + validated ``BENCH_*.json`` file."""

    bench: str
    format: int
    python: str
    data: dict[str, Any]
    path: pathlib.Path | None = None

    @property
    def is_scorecard(self) -> bool:
        return "scorecards" in self.data

    def scorecards(self) -> list[Scorecard]:
        return [
            Scorecard.from_dict(card)
            for card in self.data.get("scorecards", [])
        ]

    def scenarios(self) -> list[dict[str, Any]]:
        return list(self.data.get("scenarios", []))

    def rules(self) -> list[dict[str, Any]]:
        return list(self.data.get("rules", []))


# ---------------------------------------------------------------------------
# Loading and validation
# ---------------------------------------------------------------------------


def load_bench_artifact(source) -> BenchArtifact:
    """Load and validate one BENCH artifact (path, or envelope dict)."""
    path = None
    if isinstance(source, Mapping):
        payload = dict(source)
    else:
        path = pathlib.Path(source)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ScorecardError(f"{path}: not valid JSON ({error})") from None
    for required in ("bench", "format", "data"):
        if required not in payload:
            raise ScorecardError(
                f"{path or 'artifact'}: missing envelope field {required!r}"
            )
    if not isinstance(payload["data"], dict):
        raise ScorecardError(f"{path or 'artifact'}: 'data' is not an object")
    if int(payload["format"]) > FORMAT_VERSION:
        raise ScorecardError(
            f"{path or 'artifact'}: format {payload['format']} is newer than "
            f"this loader ({FORMAT_VERSION})"
        )
    artifact = BenchArtifact(
        bench=str(payload["bench"]),
        format=int(payload["format"]),
        python=str(payload.get("python", "")),
        data=payload["data"],
        path=path,
    )
    if artifact.is_scorecard:
        artifact.scorecards()  # validates every card
    return artifact


_NUMBER = re.compile(
    r"^\s*([+-]?\d+(?:\.\d+)?)\s*(k|m|ms|us|µs|s|x|%)?\s*$", re.IGNORECASE
)

#: Unit suffix → multiplier into the base unit (records, seconds, ratio).
_UNIT_SCALE = {
    None: 1.0,
    "k": 1e3,
    "m": 1e6,
    "ms": 1e-3,
    "us": 1e-6,
    "µs": 1e-6,
    "s": 1.0,
    "x": 1.0,
    "%": 1e-2,
}


def coerce_number(value: Any) -> float | None:
    """Parse the repo's human series cells back into base-unit floats.

    ``49.7k`` → 49700.0, ``210.0 ms`` → 0.21, ``4.58x`` → 4.58,
    ``36104`` → 36104.0; non-numeric cells return ``None``.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if not isinstance(value, str):
        return None
    match = _NUMBER.match(value)
    if not match:
        return None
    magnitude, unit = match.groups()
    return float(magnitude) * _UNIT_SCALE[unit.lower() if unit else None]


def _table_points(data: Mapping[str, Any]) -> list[Point]:
    """Legacy ``emit_series`` layout: title/header/rows."""
    header = [str(column) for column in data["header"]]
    points = []
    for row in data["rows"]:
        key: list[tuple[str, Any]] = []
        metrics: dict[str, float] = {}
        for column, cell in zip(header, row):
            number = coerce_number(cell)
            if number is None:
                key.append((column, cell))
            else:
                metrics[column] = number
        if header and header[0] not in dict(key):
            # The leading column is the axis even when numeric (batch,
            # workers); keep it in the key as well as the metrics.
            key.insert(0, (header[0], row[0]))
        points.append(Point(tuple(key), metrics))
    return points


def _scorecard_points(artifact: BenchArtifact) -> list[Point]:
    # Counters are evaluable too (rules gate on reroutes/reconnects);
    # metrics win on a name collision.
    return [
        Point(
            tuple(sorted(card.key.items())),
            {**card.counters, **card.metrics},
            scenario=card.scenario,
        )
        for card in artifact.scorecards()
    ]


def _dict_series_points(name: str, rows: list, axis: str = "") -> list[Point]:
    """A list of flat dicts (churn series, recovery drills): numeric
    values become metrics, the rest key, plus a positional index."""
    points = []
    for index, row in enumerate(rows):
        key: list[tuple[str, Any]] = [("index", index)]
        metrics: dict[str, float] = {}
        for column, cell in row.items():
            number = coerce_number(cell)
            if number is not None and not isinstance(cell, str):
                metrics[column] = number
            else:
                key.append((column, cell))
        points.append(Point(tuple(key), metrics, scenario=f"{name}[{index}]"))
    return points


def _scalar_points(name: str, data: Mapping[str, Any]) -> list[Point]:
    """Flat numeric leaves of a legacy free-form dict, as one point."""
    metrics = {}
    for column, cell in data.items():
        number = coerce_number(cell)
        if number is not None and not isinstance(cell, str):
            metrics[column] = number
    if not metrics:
        return []
    return [Point((("section", name),), metrics, scenario=name)]


def extract_points(artifact: BenchArtifact) -> list[Point]:
    """Normalise any artifact — new or legacy — into evaluable points.

    Every layout the repo has ever written is covered:

    * scorecard artifacts (one point per card);
    * ``emit_series`` tables (title/header/rows, human cells coerced);
    * lists of flat dicts (churn ``series``, durability ``recovery``);
    * nested run dicts (fault-recovery) and flat scalar dicts.
    """
    data = artifact.data
    if artifact.is_scorecard:
        return _scorecard_points(artifact)
    if "header" in data and "rows" in data:
        return _table_points(data)
    points: list[Point] = []
    for name, value in data.items():
        if (
            isinstance(value, list)
            and value
            and all(isinstance(row, Mapping) for row in value)
        ):
            for point in _dict_series_points(name, value):
                points.append(
                    Point(
                        (("series", name),) + point.key,
                        point.metrics,
                        scenario=point.scenario,
                    )
                )
        elif isinstance(value, Mapping):
            if all(coerce_number(v) is not None for v in value.values()) and value:
                # A pure name→number map (micro-op means): one point
                # per entry, keyed by the entry name.
                for entry, cell in value.items():
                    points.append(
                        Point(
                            ((name, entry),),
                            {name: float(coerce_number(cell))},
                            scenario=f"{name}/{entry}",
                        )
                    )
            else:
                points.extend(_scalar_points(name, value))
    points.extend(_scalar_points("summary", data))
    return points


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def write_scorecards(
    path,
    bench: str,
    cards: list[Scorecard],
    *,
    title: str = "",
    scenarios: list[Mapping[str, Any]] | None = None,
    rules: list[Mapping[str, Any]] | None = None,
) -> pathlib.Path:
    """Emit one bench's unified scorecard artifact.

    Rides the telemetry exporter's stable envelope so every existing
    BENCH consumer (CI artifact upload, trajectory diffing) keeps
    working; the scenario records and the tolerance rules that gate the
    run are embedded so the artifact is self-describing.
    """
    data = {
        "title": title or bench,
        "scorecard": SCORECARD_VERSION,
        "scenarios": [dict(scenario) for scenario in (scenarios or [])],
        "scorecards": [card.to_dict() for card in cards],
        "rules": [dict(rule) for rule in (rules or [])],
    }
    target = pathlib.Path(path)
    if target.suffix != ".json":
        target.mkdir(parents=True, exist_ok=True)
        target = target / f"BENCH_{bench}.json"
    return write_bench_json(target, bench, data)
