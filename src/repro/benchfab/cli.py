"""``python -m repro.benchfab`` — run, compare, list.

* ``run <bench>`` executes one fabric bench (optionally a subset of its
  scenarios), writes the unified scorecard artifact, appends it to the
  trajectory, prints the scorecard report, and exits non-zero when a
  tolerance rule fails.
* ``compare <artifact-or-bench>`` evaluates an existing ``BENCH_*.json``
  — fabric or legacy — against its rules and the stored trajectory.
  This is the trend-regression gate CI runs, and the command that
  retroactively flags the batch-256 cliff in the stored
  ``BENCH_batching.json``.
* ``list`` prints the bench registry (``--scenarios`` expands each
  matrix so the conformance/CI tiers are inspectable as data).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.benchfab.scenarios import (
    BENCHES,
    DEFAULT_OUT_DIR,
    bench_spec,
    run_bench,
)
from repro.benchfab.trend import (
    DEFAULT_TRAJECTORY_DIR,
    TrajectoryStore,
    compare_artifact,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchfab",
        description="FRESQUE benchmark fabric: scenario matrices, "
        "unified scorecards, trend-regression gates.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one fabric bench")
    run.add_argument("bench", help="bench name (see `list`)")
    run.add_argument(
        "--out", default=DEFAULT_OUT_DIR, help="artifact directory"
    )
    run.add_argument(
        "--trajectory",
        default=DEFAULT_TRAJECTORY_DIR,
        help="trajectory directory (compared before this run is appended)",
    )
    run.add_argument(
        "--no-trajectory",
        action="store_true",
        help="neither read nor append the trajectory",
    )
    run.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="SCENARIO",
        help="run only the named scenario (repeatable)",
    )
    run.add_argument(
        "--data-root", default=None, help="directory for durable journals"
    )

    compare = commands.add_parser(
        "compare", help="evaluate an artifact against its tolerance rules"
    )
    compare.add_argument(
        "artifact",
        help="path to a BENCH_*.json, or a bench name resolved in "
        f"{DEFAULT_OUT_DIR}/",
    )
    compare.add_argument(
        "--trajectory",
        default=DEFAULT_TRAJECTORY_DIR,
        help="trajectory directory for trajectory-within rules",
    )
    compare.add_argument(
        "--cpus",
        type=int,
        default=None,
        help="override the CPU count rule guards see",
    )

    listing = commands.add_parser("list", help="print the bench registry")
    listing.add_argument(
        "--scenarios",
        action="store_true",
        help="expand every matrix into its concrete scenario rows",
    )
    return parser


def _resolve_artifact(spec: str) -> pathlib.Path:
    path = pathlib.Path(spec)
    if path.exists():
        return path
    named = pathlib.Path(DEFAULT_OUT_DIR) / f"BENCH_{spec}.json"
    if named.exists():
        return named
    raise SystemExit(f"no such artifact: {spec} (also tried {named})")


def _cmd_run(args) -> int:
    trajectory = (
        None
        if args.no_trajectory
        else TrajectoryStore(pathlib.Path(args.trajectory))
    )
    path, comparison = run_bench(
        args.bench,
        out_dir=args.out,
        data_root=args.data_root,
        trajectory=trajectory,
        only=args.only,
    )
    print(f"wrote {path}")
    print(comparison.report())
    return 1 if comparison.failed else 0


def _cmd_compare(args) -> int:
    comparison = compare_artifact(
        _resolve_artifact(args.artifact),
        trajectory=TrajectoryStore(pathlib.Path(args.trajectory)),
        cpu_count=args.cpus,
    )
    print(comparison.report())
    return 1 if comparison.failed else 0


def _cmd_list(args) -> int:
    for name in sorted(BENCHES):
        spec = bench_spec(name)
        scenarios = spec.scenarios()
        tier = " [smoke]" if spec.smoke else ""
        print(
            f"{name}{tier}: {spec.title} — {len(scenarios)} scenarios, "
            f"{len(spec.rules)} rules"
        )
        if args.scenarios:
            for scenario in scenarios:
                axes = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(scenario.axes().items())
                )
                print(f"  {scenario.name}  ({axes})")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {"run": _cmd_run, "compare": _cmd_compare, "list": _cmd_list}
    return handler[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
