"""The trend engine: trajectories, default rule sets, comparison.

``compare_artifact`` loads any ``BENCH_*.json`` — fabric scorecards or
legacy layouts — normalises it into points, picks the tolerance rules
(explicit > embedded in the artifact > the per-bench registry below),
optionally loads the stored trajectory of prior runs, and returns the
verdicts plus the readable scorecard diff.

The registry encodes the repo's standing trend expectations as data.
The flagship entry is the batching cliff: *durable throughput within
10% of best prior* over the batch axis retroactively flags the
batch-256 regression (49.7k vs 67.3k rec/s) that sat unnoticed in
``BENCH_batching.json`` until a human read the JSON —
``tests/benchfab/test_trend.py`` pins that forever.

A :class:`TrajectoryStore` is a directory of ``<bench>.jsonl`` files,
one envelope per line, append-only: ``benchfab run`` appends each
fresh artifact, ``benchfab compare`` reads the history for
``trajectory-within`` rules.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.benchfab.rules import (
    Rule,
    Verdict,
    evaluate_rules,
    render_report,
    violations,
)
from repro.benchfab.scorecard import (
    BenchArtifact,
    Point,
    extract_points,
    load_bench_artifact,
)

#: Default trajectory directory, next to ``benchmarks/out``.
DEFAULT_TRAJECTORY_DIR = "benchmarks/trajectory"


#: Standing trend expectations per bench family.  These apply to the
#: *stored* artifacts too — they are how the fabric retroactively
#: catches regressions the bespoke gates never looked for.
TREND_RULES: dict[str, tuple[Rule, ...]] = {
    "batching": (
        Rule(
            id="durable-no-batch-cliff",
            kind="monotone",
            metric="durable",
            order_by="batch",
            frac=0.10,
            note=(
                "the batch-256 durable-throughput cliff (49.7k vs 67.3k "
                "rec/s) sat unnoticed in BENCH_batching.json until a human "
                "read the JSON; this rule flags it from the stored data "
                "(monotone-with-tolerance, so the expected slow batch-1 "
                "point is not noise)"
            ),
        ),
        Rule(
            id="memory-no-batch-cliff",
            kind="monotone",
            metric="memory",
            order_by="batch",
            frac=0.15,
            note="in-memory sweep has no fsync cliff; wider band",
        ),
    ),
    "adaptive_batching": (
        Rule(
            id="trickle-p99-slo",
            kind="max-value",
            metric="trickle-p99",
            select=(("variant", "adaptive"),),
            agg="max",
            threshold=0.1,
            note="p99 SLO of bench_adaptive_batching (simulated seconds)",
        ),
    ),
    "shm_scaling": (
        Rule(
            id="shm-monotone-to-4-workers",
            kind="monotone",
            metric="shm",
            order_by="workers",
            select=(),
            frac=0.10,
            min_cpus=4,
            note=(
                "ported from bench_shm_scaling's scaling asserts; only "
                "meaningful on >= 4 cores (the stored artifact was "
                "generated on a smaller box and is exempt there)"
            ),
        ),
    ),
    "membership_churn": (
        Rule(
            id="steady-state-within-10pct",
            kind="min-ratio",
            metric="throughput_rps",
            select=(("series", "series"), ("phase", "recovery")),
            agg="max",
            baseline=(("series", "series"), ("phase", "baseline")),
            baseline_agg="median",
            threshold=0.90,
            note=(
                "ported from bench_membership_churn: best post-churn "
                "publication within 10% of the pre-churn median (best, "
                "not median — GIL runtimes jitter +-15% on shared boxes)"
            ),
        ),
    ),
    "durability": (
        Rule(
            id="journal-overhead-budget",
            kind="max-value",
            metric="overhead",
            select=(("section", "summary"),),
            agg="last",
            threshold=0.15,
            note="ported from bench_durability: <= 15% CPU overhead",
        ),
    ),
    "fault_recovery": (
        Rule(
            id="severed-loses-nothing",
            kind="min-ratio",
            metric="matched",
            select=(("section", "severed"),),
            agg="last",
            baseline=(("section", "baseline"),),
            baseline_agg="last",
            threshold=1.0,
            note="ported from bench_fault_recovery: retries recover all",
        ),
    ),
}


class TrajectoryStore:
    """Append-only JSONL history of BENCH artifacts, one file per bench."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)

    def _path(self, bench: str) -> pathlib.Path:
        return self.root / f"{bench}.jsonl"

    def append(self, artifact: BenchArtifact) -> pathlib.Path:
        """Record one run at the end of the bench's trajectory."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(artifact.bench)
        envelope = {
            "bench": artifact.bench,
            "format": artifact.format,
            "python": artifact.python,
            "data": artifact.data,
        }
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(envelope) + "\n")
        return path

    def history(self, bench: str) -> list[BenchArtifact]:
        """Prior runs, oldest first; empty when none recorded."""
        path = self._path(bench)
        if not path.exists():
            return []
        artifacts = []
        for line in path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                artifacts.append(load_bench_artifact(json.loads(line)))
        return artifacts

    def benches(self) -> list[str]:
        if not self.root.exists():
            return []
        return sorted(path.stem for path in self.root.glob("*.jsonl"))


@dataclass
class Comparison:
    """The outcome of one ``benchfab compare`` invocation."""

    artifact: BenchArtifact
    verdicts: list[Verdict] = field(default_factory=list)
    history_runs: int = 0

    @property
    def failed(self) -> bool:
        return any(verdict.status == "fail" for verdict in self.verdicts)

    def violations(self):
        return violations(self.verdicts)

    def report(self) -> str:
        suffix = (
            f"\ntrajectory: {self.history_runs} prior runs"
            if self.history_runs
            else ""
        )
        return render_report(self.artifact.bench, self.verdicts) + suffix


def rules_for(artifact: BenchArtifact) -> list[Rule]:
    """The tolerance rules governing an artifact.

    Fabric artifacts embed their rules; legacy artifacts fall back to
    the per-bench registry, so stored BENCH files get trend gates
    without being rewritten.
    """
    embedded = artifact.rules()
    if embedded:
        return [Rule.from_dict(rule) for rule in embedded]
    return list(TREND_RULES.get(artifact.bench, ()))


def compare_artifact(
    source,
    *,
    rules: Sequence[Rule] | None = None,
    trajectory: TrajectoryStore | None = None,
    cpu_count: int | None = None,
) -> Comparison:
    """Evaluate one BENCH artifact against its tolerance rules.

    ``source`` is a path or an envelope dict; ``rules`` overrides the
    artifact's own; ``trajectory`` feeds ``trajectory-within`` rules
    with the stored history of the same bench.
    """
    artifact = load_bench_artifact(source)
    chosen = list(rules) if rules is not None else rules_for(artifact)
    points = extract_points(artifact)
    cards = artifact.scorecards() if artifact.is_scorecard else []
    history: list[list[Point]] = []
    if trajectory is not None:
        history = [
            extract_points(prior)
            for prior in trajectory.history(artifact.bench)
        ]
    verdicts = evaluate_rules(
        points,
        chosen,
        cards=cards,
        history=history,
        cpu_count=cpu_count,
    )
    return Comparison(artifact, verdicts, history_runs=len(history))
