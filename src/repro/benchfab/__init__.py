"""benchfab — the declarative benchmark fabric.

Scenarios are *data*: a :class:`~repro.benchfab.spec.Scenario` is one
concrete run (dataset × runtime × batch size/adaptive × durability ×
fault/churn plan × sharding), a :class:`~repro.benchfab.spec.MatrixSpec`
expands an axes product into scenarios, the
:mod:`~repro.benchfab.runner` executes them against the existing system
builders, and every run emits the one unified scorecard schema
(:mod:`~repro.benchfab.scorecard`) into ``benchmarks/out/BENCH_*.json``.
Gates are declarative tolerance rules (:mod:`~repro.benchfab.rules`)
evaluated by the trend engine (:mod:`~repro.benchfab.trend`), which also
compares fresh results against the stored trajectory of any BENCH file.

``python -m repro.benchfab`` exposes ``run``, ``compare`` and ``list``
(see :mod:`~repro.benchfab.cli`); docs/BENCHMARKS.md is the manual.
"""

from repro.benchfab.rules import Rule, Violation, evaluate_rules, render_report
from repro.benchfab.scorecard import (
    BenchArtifact,
    Scorecard,
    extract_points,
    load_bench_artifact,
    write_scorecards,
)
from repro.benchfab.spec import MatrixSpec, Scenario
from repro.benchfab.trend import TrajectoryStore, compare_artifact

__all__ = [
    "BenchArtifact",
    "MatrixSpec",
    "Rule",
    "Scenario",
    "Scorecard",
    "TrajectoryStore",
    "compare_artifact",
    "evaluate_rules",
    "extract_points",
    "load_bench_artifact",
    "render_report",
    "write_scorecards",
]
