"""Declarative benchmark scenarios and the matrix that expands them.

A :class:`Scenario` is one concrete benchmark run, described entirely by
data — no drive logic, no gate code.  A :class:`MatrixSpec` is the
cartesian product of axes over a base scenario, with declarative
``exclude`` constraints (combinations that are meaningless or priced out
of the tier) and hand-written ``include`` rows.  The same expansion
doubles as the cross-runtime *conformance* matrix: every scenario row
names exactly one deployment whose cloud-state fingerprint can be
compared against the sync baseline.

Everything round-trips through plain dicts (``to_dict``/``from_dict``)
so specs can be embedded in scorecard artifacts and diffed across runs.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

#: Deployment runtimes the fabric can build (docs/RUNTIMES.md).
RUNTIMES = ("sync", "threaded", "tcp", "shm")

#: Durability modes: in-memory collector vs write-ahead journal + ledger.
DURABILITIES = ("memory", "durable")

#: Workload shapes the runner knows how to drive (docs/BENCHMARKS.md).
WORKLOADS = (
    "ingest",
    "publication",
    "burst-trickle",
    "churn",
    "recovery",
    "overhead",
    "conformance",
)


class SpecError(ValueError):
    """Raised for malformed scenarios or matrix specs."""


@dataclass(frozen=True)
class Scenario:
    """One concrete benchmark run, fully described by data.

    Parameters
    ----------
    name:
        Unique id within the bench (usually derived from the axes).
    bench:
        BENCH family the run belongs to (``BENCH_<bench>.json``).
    workload:
        Drive shape, one of :data:`WORKLOADS` — the runner owns the
        loop, the scenario owns every knob.
    dataset:
        Named arrival stream (:mod:`repro.benchfab.datasets`).
    records:
        Records per publication interval.
    publications:
        Publication intervals driven.
    runtime:
        Deployment, one of :data:`RUNTIMES`.
    workers:
        Computing-node count.
    batch_size / adaptive:
        Static dispatcher batch size, and whether the AIMD controller
        is live (``adaptive_batching``).
    durability:
        ``memory`` or ``durable`` (write-ahead journal + ε ledger).
    sync_every / checkpoint_every:
        Journal fsync cadence and checkpoint cadence when durable.
    fault_plan:
        Named fault/churn plan (:data:`repro.benchfab.runner.FAULT_PLANS`),
        empty for a healthy run.
    shards:
        Checking-node shards (0 = unsharded).
    deterministic_ivs:
        Ordinal-keyed IVs — required for cross-runtime byte identity.
    seed / stream_seed:
        System seed and arrival-stream seed.
    params:
        Workload-specific knobs as a sorted tuple of pairs (kept
        hashable; see :meth:`param`).
    drift:
        Recorded behaviour drift between a ported script's old gate and
        the fabric rule — never silently changed, always written here.
    """

    name: str
    bench: str
    workload: str = "publication"
    dataset: str = "flu"
    records: int = 250
    publications: int = 1
    runtime: str = "sync"
    workers: int = 3
    batch_size: int = 1
    adaptive: bool = False
    durability: str = "memory"
    sync_every: int = 256
    checkpoint_every: int = 0
    fault_plan: str = ""
    shards: int = 0
    deterministic_ivs: bool = False
    seed: int = 9
    stream_seed: int = 71
    params: tuple[tuple[str, Any], ...] = ()
    drift: str = ""

    def __post_init__(self) -> None:
        if self.runtime not in RUNTIMES:
            raise SpecError(f"unknown runtime {self.runtime!r}")
        if self.durability not in DURABILITIES:
            raise SpecError(f"unknown durability {self.durability!r}")
        if self.workload not in WORKLOADS:
            raise SpecError(f"unknown workload {self.workload!r}")
        if self.records < 0 or self.publications < 1:
            raise SpecError(
                f"bad stream shape: records={self.records}, "
                f"publications={self.publications}"
            )
        if self.batch_size < 1:
            raise SpecError(f"batch_size must be >= 1, got {self.batch_size}")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    def param(self, key: str, default: Any = None) -> Any:
        """Look up one workload-specific knob."""
        for name, value in self.params:
            if name == key:
                return value
        return default

    #: Axes always present in the point key, even at their defaults —
    #: rules must be able to select ``batch_size=1`` or ``runtime=sync``
    #: without the key shape depending on which cell of a sweep it is.
    _CORE_AXES = ("workload", "runtime", "durability", "batch_size", "adaptive")

    def axes(self) -> dict[str, Any]:
        """The identity of this run: the core axes plus every other
        non-default scalar field.

        This is the scorecard's point key — rules select points by a
        subset of it, so it must stay small, stable and hashable.
        """
        out: dict[str, Any] = {}
        for f in dataclasses.fields(self):
            if f.name in ("name", "bench", "params", "drift"):
                continue
            value = getattr(self, f.name)
            if f.name in self._CORE_AXES or value != f.default:
                out[f.name] = value
        out.update(dict(self.params))
        return out

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for embedding in scorecard artifacts."""
        out = dataclasses.asdict(self)
        out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown scenario fields: {sorted(unknown)}")
        kwargs = dict(data)
        kwargs["params"] = tuple(sorted(dict(data.get("params", {})).items()))
        return cls(**kwargs)


def _matches(row: Mapping[str, Any], constraint: Mapping[str, Any]) -> bool:
    """True when every constraint key is present in the row and equal."""
    return all(row.get(key) == value for key, value in constraint.items())


@dataclass(frozen=True)
class MatrixSpec:
    """A scenario matrix: axes product over a base row, as data.

    ``base`` holds shared scenario fields; ``axes`` maps field names to
    the values swept (non-field keys land in ``Scenario.params``);
    ``exclude`` drops any product row matching one of its constraint
    dicts; ``include`` appends hand-written rows on top.  ``expand()``
    yields concrete, uniquely named :class:`Scenario` records.
    """

    bench: str
    base: Mapping[str, Any] = field(default_factory=dict)
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    exclude: tuple[Mapping[str, Any], ...] = ()
    include: tuple[Mapping[str, Any], ...] = ()

    def _row_name(self, row: Mapping[str, Any]) -> str:
        parts = [f"{key}={row[key]}" for key in sorted(row) if key != "name"]
        return "/".join([self.bench] + parts) if parts else self.bench

    def _build(self, row: dict[str, Any]) -> Scenario:
        fields = {f.name for f in dataclasses.fields(Scenario)}
        merged: dict[str, Any] = {**self.base, **row}
        params = dict(merged.pop("params", {}))
        scenario_kwargs: dict[str, Any] = {}
        for key, value in merged.items():
            if key in fields:
                scenario_kwargs[key] = value
            else:
                params[key] = value
        scenario_kwargs["params"] = tuple(sorted(params.items()))
        scenario_kwargs.setdefault("name", self._row_name(row))
        scenario_kwargs["bench"] = self.bench
        return Scenario(**scenario_kwargs)

    def expand(self) -> tuple[Scenario, ...]:
        """Expand the product, apply excludes, append includes."""
        names = sorted(self.axes)
        rows: list[dict[str, Any]] = []
        if names:
            for values in itertools.product(
                *(self.axes[name] for name in names)
            ):
                row = dict(zip(names, values))
                if any(_matches(row, block) for block in self.exclude):
                    continue
                rows.append(row)
        elif not self.include:
            rows.append({})
        rows.extend(dict(extra) for extra in self.include)
        scenarios = tuple(self._build(row) for row in rows)
        seen: set[str] = set()
        for scenario in scenarios:
            if scenario.name in seen:
                raise SpecError(f"duplicate scenario name {scenario.name!r}")
            seen.add(scenario.name)
        return scenarios

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for embedding in artifacts and docs."""
        return {
            "bench": self.bench,
            "base": dict(self.base),
            "axes": {key: list(values) for key, values in self.axes.items()},
            "exclude": [dict(block) for block in self.exclude],
            "include": [dict(row) for row in self.include],
        }
