"""Declarative tolerance rules and their evaluation engine.

A :class:`Rule` is data — the fabric's replacement for every bespoke
``assert`` the seven hand-rolled bench scripts used to carry.  Rules
select points out of a normalised series (see
:mod:`repro.benchfab.scorecard`), aggregate them, and check one of a
small catalogue of conditions:

========================  ==================================================
kind                      meaning
========================  ==================================================
``min-value``             agg(selected metric) >= ``threshold``
``max-value``             agg(selected metric) <= ``threshold``
``min-ratio``             agg(selected) / agg(baseline) >= ``threshold``
``max-ratio``             agg(selected) / agg(baseline) <= ``threshold``
``within-frac-of-best``   every selected point >= (1 - frac) * series best
``monotone``              ordered by ``order_by``: each next point >=
                          (1 - frac) * previous
``fingerprint-match``     every selected scorecard fingerprint equals the
                          baseline card's (cross-runtime conformance)
``trajectory-within``     agg(selected) >= (1 - frac) * best prior run
                          (needs a trajectory history; skipped otherwise)
========================  ==================================================

Failures render as a readable scorecard diff
(:func:`render_report`) — the trend engine's CI output.  Rules may
carry environment guards (``min_cpus``) so machine-bound gates skip
rather than flake, and a ``note`` recording provenance or behaviour
drift from the ported script.
"""

from __future__ import annotations

import os
import statistics
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.benchfab.scorecard import Point

KINDS = (
    "min-value",
    "max-value",
    "min-ratio",
    "max-ratio",
    "within-frac-of-best",
    "monotone",
    "fingerprint-match",
    "trajectory-within",
)

_AGGREGATES = {
    "first": lambda values: values[0],
    "last": lambda values: values[-1],
    "min": min,
    "max": max,
    "best": max,
    "median": statistics.median,
    "mean": lambda values: sum(values) / len(values),
}


class RuleError(ValueError):
    """Raised for malformed rules."""


@dataclass(frozen=True)
class Rule:
    """One declarative tolerance gate.

    ``select``/``baseline`` filter points by key subset (a point
    matches when every named axis equals the given value); ``agg`` and
    ``baseline_agg`` reduce the matching values; ``threshold``/``frac``
    parameterise the condition; ``min_cpus`` skips machine-bound gates
    on small runners; ``note`` records provenance and any drift from
    the gate a ported script used to hard-code.
    """

    id: str
    kind: str
    metric: str = ""
    select: tuple[tuple[str, Any], ...] = ()
    baseline: tuple[tuple[str, Any], ...] = ()
    agg: str = "last"
    baseline_agg: str = "median"
    threshold: float = 0.0
    frac: float = 0.10
    order_by: str = ""
    min_cpus: int = 0
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise RuleError(f"unknown rule kind {self.kind!r}")
        if self.agg not in _AGGREGATES or self.baseline_agg not in _AGGREGATES:
            raise RuleError(
                f"unknown aggregate in rule {self.id!r}: "
                f"{self.agg!r}/{self.baseline_agg!r}"
            )
        if self.kind != "fingerprint-match" and not self.metric:
            raise RuleError(f"rule {self.id!r} names no metric")
        object.__setattr__(self, "select", tuple(sorted(self.select)))
        object.__setattr__(self, "baseline", tuple(sorted(self.baseline)))

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "metric": self.metric,
            "select": dict(self.select),
            "baseline": dict(self.baseline),
            "agg": self.agg,
            "baseline_agg": self.baseline_agg,
            "threshold": self.threshold,
            "frac": self.frac,
            "order_by": self.order_by,
            "min_cpus": self.min_cpus,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Rule":
        kwargs = dict(data)
        kwargs["select"] = tuple(dict(data.get("select", {})).items())
        kwargs["baseline"] = tuple(dict(data.get("baseline", {})).items())
        return cls(**kwargs)


@dataclass(frozen=True)
class Violation:
    """One failed rule, with enough context to read without the JSON."""

    rule_id: str
    kind: str
    metric: str
    message: str
    points: tuple[str, ...] = ()
    note: str = ""


@dataclass
class Verdict:
    """The outcome of one rule over one series."""

    rule: Rule
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""
    violations: tuple[Violation, ...] = ()


def _match(point: Point, constraint: tuple[tuple[str, Any], ...]) -> bool:
    key = dict(point.key)
    return all(key.get(axis) == value for axis, value in constraint)


def _selected(
    points: Sequence[Point], rule: Rule, constraint
) -> list[Point]:
    return [
        point
        for point in points
        if _match(point, constraint) and rule.metric in point.metrics
    ]


def _values(points: Sequence[Point], metric: str) -> list[float]:
    return [point.metrics[metric] for point in points]


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def _where(constraint: tuple[tuple[str, Any], ...]) -> str:
    return (
        " where " + ", ".join(f"{k}={v}" for k, v in constraint)
        if constraint
        else ""
    )


def _skip(rule: Rule, why: str) -> Verdict:
    return Verdict(rule, "skip", why)


def _fail(rule: Rule, message: str, points: Sequence[Point] = ()) -> Verdict:
    violation = Violation(
        rule_id=rule.id,
        kind=rule.kind,
        metric=rule.metric,
        message=message,
        points=tuple(point.label() for point in points),
        note=rule.note,
    )
    return Verdict(rule, "fail", message, (violation,))


def _evaluate_bounds(rule: Rule, points: Sequence[Point]) -> Verdict:
    selected = _selected(points, rule, rule.select)
    if not selected:
        return _fail(
            rule,
            f"no points carry metric {rule.metric!r}{_where(rule.select)}",
        )
    value = _AGGREGATES[rule.agg](_values(selected, rule.metric))
    if rule.kind in ("min-value", "max-value"):
        ok = (
            value >= rule.threshold
            if rule.kind == "min-value"
            else value <= rule.threshold
        )
        sign = ">=" if rule.kind == "min-value" else "<="
        if ok:
            return Verdict(
                rule,
                "pass",
                f"{rule.metric} {rule.agg} {_fmt(value)} {sign} "
                f"{_fmt(rule.threshold)}",
            )
        return _fail(
            rule,
            f"{rule.metric}{_where(rule.select)}: {rule.agg} "
            f"{_fmt(value)} violates {sign} {_fmt(rule.threshold)}",
            selected,
        )
    # ratio kinds
    reference = _selected(points, rule, rule.baseline)
    if not reference:
        return _fail(
            rule,
            f"no baseline points carry metric {rule.metric!r}"
            f"{_where(rule.baseline)}",
        )
    base = _AGGREGATES[rule.baseline_agg](_values(reference, rule.metric))
    if base == 0:
        return _fail(rule, f"baseline {rule.metric} is zero{_where(rule.baseline)}")
    ratio = value / base
    ok = (
        ratio >= rule.threshold
        if rule.kind == "min-ratio"
        else ratio <= rule.threshold
    )
    sign = ">=" if rule.kind == "min-ratio" else "<="
    detail = (
        f"{rule.metric}{_where(rule.select)} {_fmt(value)} vs baseline"
        f"{_where(rule.baseline)} {_fmt(base)}: ratio {ratio:.2f} "
        f"{sign} {_fmt(rule.threshold)}"
    )
    if ok:
        return Verdict(rule, "pass", detail)
    return _fail(rule, detail.replace(sign, f"violates {sign}"), selected)


def _evaluate_within_best(rule: Rule, points: Sequence[Point]) -> Verdict:
    selected = _selected(points, rule, rule.select)
    if len(selected) < 2:
        return _skip(rule, f"fewer than two points carry {rule.metric!r}")
    values = _values(selected, rule.metric)
    best = max(values)
    best_point = selected[values.index(best)]
    floor = (1.0 - rule.frac) * best
    offenders = [
        point for point in selected if point.metrics[rule.metric] < floor
    ]
    if not offenders:
        return Verdict(
            rule,
            "pass",
            f"all {len(selected)} points within {rule.frac:.0%} of best "
            f"{rule.metric} {_fmt(best)} ({best_point.label()})",
        )
    drops = "; ".join(
        f"{point.label()} {rule.metric}={_fmt(point.metrics[rule.metric])} is "
        f"{1.0 - point.metrics[rule.metric] / best:.1%} below best"
        for point in offenders
    )
    return _fail(
        rule,
        f"best {rule.metric} {_fmt(best)} at {best_point.label()} "
        f"(tolerance {rule.frac:.0%}): {drops}",
        offenders,
    )


def _evaluate_monotone(rule: Rule, points: Sequence[Point]) -> Verdict:
    if not rule.order_by:
        return _fail(rule, "monotone rule needs order_by")
    selected = [
        point
        for point in _selected(points, rule, rule.select)
        if point.get(rule.order_by) is not None
    ]
    selected.sort(key=lambda point: point.get(rule.order_by))
    if len(selected) < 2:
        return _skip(rule, f"fewer than two points ordered by {rule.order_by!r}")
    for previous, current in zip(selected, selected[1:]):
        floor = (1.0 - rule.frac) * previous.metrics[rule.metric]
        if current.metrics[rule.metric] < floor:
            return _fail(
                rule,
                f"{rule.metric} not monotone in {rule.order_by} "
                f"(tolerance {rule.frac:.0%}): "
                f"{current.label()} {_fmt(current.metrics[rule.metric])} < "
                f"{previous.label()} {_fmt(previous.metrics[rule.metric])}",
                (previous, current),
            )
    return Verdict(
        rule,
        "pass",
        f"{rule.metric} monotone in {rule.order_by} over "
        f"{len(selected)} points",
    )


def _evaluate_fingerprints(
    rule: Rule, cards: Sequence, points: Sequence[Point]
) -> Verdict:
    del points
    select = dict(rule.select)
    baseline = dict(rule.baseline)

    def matches(card, constraint: dict) -> bool:
        return all(card.key.get(k) == v for k, v in constraint.items())

    reference = [card for card in cards if matches(card, baseline)]
    if len(reference) != 1 or reference[0].fingerprint is None:
        return _fail(
            rule,
            f"need exactly one fingerprinted baseline card{_where(rule.baseline)}, "
            f"found {len(reference)}",
        )
    expected = reference[0].fingerprint
    candidates = [
        card
        for card in cards
        if matches(card, select) and card is not reference[0]
    ]
    if not candidates:
        return _skip(rule, f"no candidate cards{_where(rule.select)}")
    mismatched = [
        card for card in candidates if card.fingerprint != expected
    ]
    if not mismatched:
        return Verdict(
            rule,
            "pass",
            f"{len(candidates)} deployments byte-identical to "
            f"{reference[0].scenario}",
        )
    names = ", ".join(card.scenario for card in mismatched)
    return _fail(
        rule,
        f"cloud state diverged from {reference[0].scenario}: {names}",
    )


def _evaluate_trajectory(
    rule: Rule, points: Sequence[Point], history: Sequence[Sequence[Point]]
) -> Verdict:
    if not history:
        return _skip(rule, "no trajectory history")
    selected = _selected(points, rule, rule.select)
    if not selected:
        return _fail(
            rule,
            f"no points carry metric {rule.metric!r}{_where(rule.select)}",
        )
    current = _AGGREGATES[rule.agg](_values(selected, rule.metric))
    priors = []
    for run in history:
        prior_points = _selected(run, rule, rule.select)
        if prior_points:
            priors.append(
                _AGGREGATES[rule.agg](_values(prior_points, rule.metric))
            )
    if not priors:
        return _skip(rule, "trajectory carries no matching points")
    best = max(priors)
    floor = (1.0 - rule.frac) * best
    if current >= floor:
        return Verdict(
            rule,
            "pass",
            f"{rule.metric} {_fmt(current)} within {rule.frac:.0%} of best "
            f"prior {_fmt(best)} over {len(priors)} runs",
        )
    return _fail(
        rule,
        f"{rule.metric}{_where(rule.select)} {_fmt(current)} fell "
        f"{1.0 - current / best:.1%} below best prior {_fmt(best)} "
        f"(tolerance {rule.frac:.0%}, {len(priors)} prior runs)",
        selected,
    )


def evaluate_rules(
    points: Sequence[Point],
    rules: Sequence[Rule],
    *,
    cards: Sequence = (),
    history: Sequence[Sequence[Point]] = (),
    cpu_count: int | None = None,
) -> list[Verdict]:
    """Evaluate every rule over one normalised series.

    ``cards`` supplies scorecards for fingerprint rules; ``history`` is
    the prior trajectory (newest last) for ``trajectory-within`` rules;
    ``cpu_count`` defaults to the machine's (injectable for tests).
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    verdicts = []
    for rule in rules:
        if rule.min_cpus and cpus < rule.min_cpus:
            verdicts.append(
                _skip(rule, f"needs >= {rule.min_cpus} CPUs, have {cpus}")
            )
            continue
        if rule.kind in ("min-value", "max-value", "min-ratio", "max-ratio"):
            verdicts.append(_evaluate_bounds(rule, points))
        elif rule.kind == "within-frac-of-best":
            verdicts.append(_evaluate_within_best(rule, points))
        elif rule.kind == "monotone":
            verdicts.append(_evaluate_monotone(rule, points))
        elif rule.kind == "fingerprint-match":
            verdicts.append(_evaluate_fingerprints(rule, cards, points))
        else:  # trajectory-within (KINDS is closed)
            verdicts.append(_evaluate_trajectory(rule, points, history))
    return verdicts


def violations(verdicts: Sequence[Verdict]) -> list[Violation]:
    """Flatten the failed verdicts' violations."""
    out: list[Violation] = []
    for verdict in verdicts:
        out.extend(verdict.violations)
    return out


def render_report(bench: str, verdicts: Sequence[Verdict]) -> str:
    """The readable scorecard diff CI prints on a trend regression."""
    marks = {"pass": "ok", "fail": "FAIL", "skip": "skip"}
    lines = [f"scorecard: {bench}", "=" * (11 + len(bench))]
    for verdict in verdicts:
        rule = verdict.rule
        lines.append(
            f"[{marks[verdict.status]:>4}] {rule.id} ({rule.kind})"
        )
        if verdict.detail:
            lines.append(f"       {verdict.detail}")
        for violation in verdict.violations:
            if violation.points:
                lines.append(
                    "       points: " + ", ".join(violation.points)
                )
            if violation.note:
                lines.append(f"       note: {violation.note}")
    failed = sum(1 for verdict in verdicts if verdict.status == "fail")
    skipped = sum(1 for verdict in verdicts if verdict.status == "skip")
    lines.append(
        f"{len(verdicts)} rules: {len(verdicts) - failed - skipped} passed, "
        f"{failed} failed, {skipped} skipped"
    )
    return "\n".join(lines)
