"""PINED-RQ++ collectors: non-parallel and parallel variants.

Functionally the two variants produce identical publications; they differ in
*where* the pipeline stages run, which only matters for the performance
model (``repro.simulation`` places the stages on machines accordingly):

* non-parallel — the whole parser → checker → enricher → updater →
  encrypter workflow runs on the single collector node;
* parallel — updater and encrypter instances run on ``k`` computing nodes,
  but the parser and checker stay sequential because the checker reads the
  shared index template (the *partial parallelism* limitation of
  Section 4.2).

Both publish *synchronously*: at the end of an interval the collector
encrypts the buffered removed records, builds the overflow arrays and ships
the publication before any new record is admitted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cloud.node import MatchingTableCloud
from repro.crypto.cipher import RecordCipher
from repro.index.domain import AttributeDomain
from repro.index.overflow import OverflowArray
from repro.index.perturb import NoisePlan
from repro.index.template import IndexTemplate
from repro.privacy.laplace import LaplaceMechanism
from repro.records.record import EncryptedRecord, Record, make_dummy
from repro.records.schema import Schema

from repro.pinedrqpp.components import (
    Checker,
    Encrypter,
    Enricher,
    Parser,
    Updater,
)


@dataclass(frozen=True)
class StreamPublicationReport:
    """Outcome of one PINED-RQ++ publication."""

    publication: int
    real_records: int
    dummies_sent: int
    records_removed: int
    overflow_capacity: int
    matching_table_size: int
    publish_encrypt_ops: int


class PinedRqPPCollector:
    """The PINED-RQ++ trusted collector (index-template streaming).

    Parameters
    ----------
    schema, domain:
        Relation schema and binned attribute domain.
    cipher:
        Record cipher shared with the client.
    epsilon, delta:
        Per-publication privacy budget and overflow-sizing probability.
    fanout:
        Index branching factor.
    parallel_nodes:
        0 for the non-parallel variant; otherwise the number of computing
        nodes the updater/encrypter stages are spread over (cost model
        placement only — the logic is identical).
    rng:
        Seeded randomness.
    """

    def __init__(
        self,
        schema: Schema,
        domain: AttributeDomain,
        cipher: RecordCipher,
        epsilon: float = 1.0,
        delta: float = 0.99,
        fanout: int = 16,
        parallel_nodes: int = 0,
        rng: random.Random | None = None,
    ):
        if parallel_nodes < 0:
            raise ValueError("parallel_nodes must be non-negative")
        self.schema = schema
        self.domain = domain
        self.epsilon = epsilon
        self.delta = delta
        self.fanout = fanout
        self.parallel_nodes = parallel_nodes
        self._rng = rng if rng is not None else random.Random()
        self.parser = Parser(schema)
        self.checker = Checker(schema, domain)
        self.enricher = Enricher(rng=self._rng)
        self.updater = Updater(schema, domain)
        self.encrypter = Encrypter(schema, cipher)
        self._publication = -1
        self._template: IndexTemplate | None = None
        self._dummy_queue: list[Record] = []
        self._real_seen = 0
        self._dummies_sent = 0
        self.rejected = 0

    @property
    def publication(self) -> int:
        """Current publication number (-1 before :meth:`start_publication`)."""
        return self._publication

    @property
    def plan(self) -> NoisePlan:
        """Noise plan of the current publication."""
        if self._template is None:
            raise RuntimeError("no active publication")
        return self._template.plan

    def start_publication(self, cloud: MatchingTableCloud) -> None:
        """Begin a new publishing time interval.

        Creates and perturbs the index template, announces the publication
        to the cloud, and prepares the dummy records implied by positive
        noise (to be interleaved with real arrivals).
        """
        self._publication += 1
        # fresque-lint: disable=FRQ-P311 -- PINED-RQ++ baseline reproduction: the published scheme spends a fixed per-publication epsilon and predates the accountant/ledger layer
        self._template = IndexTemplate(
            self.domain,
            fanout=self.fanout,
            epsilon=self.epsilon,
            rng=self._rng,
        )
        self.checker.begin_publication(self._template)
        self.enricher.begin_publication()
        self.updater.begin_publication(self._template)
        self._real_seen = 0
        self._dummies_sent = 0
        self._dummy_queue = []
        for offset, noise in enumerate(self._template.plan.leaf_noise):
            low, high = self.domain.leaf_range(offset)
            for _ in range(max(0, noise)):
                value = low if high <= low else low + self._rng.random() * (
                    high - low
                )
                self._dummy_queue.append(make_dummy(self.schema, value))
        self._rng.shuffle(self._dummy_queue)
        cloud.announce_publication(self._publication)

    def ingest_line(self, line: str, cloud: MatchingTableCloud) -> None:
        """Run one raw line through the full workflow (Figure 4).

        Malformed or out-of-domain lines are dropped and counted in
        :attr:`rejected` rather than aborting the publication.
        """
        try:
            record = self.parser.parse(line)
            self.domain.leaf_offset(record.indexed_value(self.schema))
        except ValueError:
            self.rejected += 1
            return
        self.ingest_record(record, cloud)

    def ingest_record(self, record: Record, cloud: MatchingTableCloud) -> None:
        """Workflow from the checker onwards, for an already parsed record."""
        if self._template is None:
            raise RuntimeError("call start_publication first")
        if not record.is_dummy:
            self._real_seen += 1
        if self.checker.check(record):
            return  # buffered at the collector until publishing time
        tag = self.enricher.tag()
        self.updater.update(record, tag)
        ciphertext = self.encrypter.encrypt(record)
        cloud.receive_tagged(
            self._publication,
            tag,
            EncryptedRecord(
                leaf_offset=None,
                ciphertext=ciphertext,
                tag=tag,
                publication=self._publication,
            ),
        )
        if record.is_dummy:
            self._dummies_sent += 1

    def next_dummy(self) -> Record | None:
        """Pop the next scheduled dummy record, if any remain."""
        if self._dummy_queue:
            return self._dummy_queue.pop()
        return None

    @property
    def pending_dummies(self) -> int:
        """Dummies not yet interleaved into the stream."""
        return len(self._dummy_queue)

    def publish(self, cloud: MatchingTableCloud) -> StreamPublicationReport:
        """Synchronous end-of-interval publication.

        Flushes remaining dummies, sequentially encrypts the removed
        records into overflow arrays, and ships the updated template (now
        true + noise counts), the overflow arrays and the matching table.
        """
        if self._template is None:
            raise RuntimeError("no active publication")
        while self._dummy_queue:
            self.ingest_record(self._dummy_queue.pop(), cloud)

        publication = self._publication
        template = self._template
        bound = LaplaceMechanism(
            1.0 / template.plan.per_level_scale
        ).positive_noise_bound(self.delta)
        publish_encrypts = 0
        removed = self.checker.drain_removed()
        per_leaf_removed: dict[int, list[Record]] = {}
        for record in removed:
            offset = self.domain.leaf_offset(record.indexed_value(self.schema))
            per_leaf_removed.setdefault(offset, []).append(record)

        overflow: dict[int, OverflowArray] = {}
        for offset in range(self.domain.num_leaves):
            array = OverflowArray(offset, capacity=bound)
            for record in per_leaf_removed.get(offset, ())[: array.capacity]:
                array.add_removed(
                    EncryptedRecord(
                        leaf_offset=None,
                        ciphertext=self.encrypter.encrypt(record),
                        publication=publication,
                    )
                )
                publish_encrypts += 1

            def padding(offset=offset):
                nonlocal publish_encrypts
                publish_encrypts += 1
                low, high = self.domain.leaf_range(offset)
                value = low if high <= low else low + self._rng.random() * (
                    high - low
                )
                return EncryptedRecord(
                    leaf_offset=None,
                    ciphertext=self.encrypter.encrypt(
                        make_dummy(self.schema, value)
                    ),
                    publication=publication,
                )

            array.seal(padding, rng=self._rng)
            overflow[offset] = array

        matching_table = dict(self.updater.matching_table)
        cloud.receive_publication(
            publication, template.tree, overflow, matching_table
        )
        report = StreamPublicationReport(
            publication=publication,
            real_records=self._real_seen,
            dummies_sent=self._dummies_sent,
            records_removed=len(removed),
            overflow_capacity=sum(a.capacity for a in overflow.values()),
            matching_table_size=len(matching_table),
            publish_encrypt_ops=publish_encrypts,
        )
        self._template = None
        return report
