"""Parallel PINED-RQ++ as message-passing components (Figure 5).

The paper's parallel variant keeps the parser and checker *sequential* on
the front node — both touch the shared index template — and distributes
the enricher/encrypter over ``k`` worker nodes.  Publication stays
synchronous: the front node stops admitting records, waits for every
worker to flush, performs the publishing tasks (removed-record encryption,
overflow arrays, matching table) itself, and only then opens the next
publication.

Functionally equivalent to
:class:`~repro.pinedrqpp.collector.PinedRqPPCollector`; this executable
form exists so the *architecture* (who does what, in which order) can be
tested and contrasted with FRESQUE's component graph.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

from repro.cloud.node import MatchingTableCloud
from repro.crypto.cipher import RecordCipher
from repro.index.domain import AttributeDomain
from repro.index.overflow import OverflowArray
from repro.index.template import IndexTemplate
from repro.pinedrqpp.components import Encrypter, Enricher, Parser
from repro.privacy.laplace import LaplaceMechanism
from repro.records.record import EncryptedRecord, Record, make_dummy
from repro.records.schema import Schema


@dataclass(frozen=True)
class WorkerTask:
    """Front node → worker: a checked record to enrich and encrypt."""

    publication: int
    record: Record
    leaf_offset: int


@dataclass(frozen=True)
class WorkerOutput:
    """Worker → front node: tag + ciphertext, ready for the cloud."""

    publication: int
    tag: int
    leaf_offset: int
    ciphertext: bytes
    dummy: bool


class FrontNode:
    """Sequential parser + checker + template owner.

    The shared index template forces this stage to stay on one node — the
    *partial parallelism* limitation FRESQUE removes (Section 4.2).
    """

    def __init__(
        self,
        schema: Schema,
        domain: AttributeDomain,
        epsilon: float,
        fanout: int = 16,
        rng: random.Random | None = None,
    ):
        self.schema = schema
        self.domain = domain
        self.epsilon = epsilon
        self.fanout = fanout
        self._rng = rng if rng is not None else random.Random()
        self.parser = Parser(schema)
        self.template: IndexTemplate | None = None
        self._negative_budget: list[int] = []
        self.removed: list[Record] = []
        self.publication = -1

    def start_publication(self) -> None:
        """Draw a fresh perturbed template."""
        self.publication += 1
        # fresque-lint: disable=FRQ-P311 -- PINED-RQ++ baseline reproduction: workers draw from the configured per-publication epsilon; the accountant belongs to the FRESQUE pipeline
        self.template = IndexTemplate(
            self.domain, fanout=self.fanout, epsilon=self.epsilon,
            rng=self._rng,
        )
        self._negative_budget = [
            max(0, -noise) for noise in self.template.plan.leaf_noise
        ]
        self.removed = []

    def admit_line(self, line: str) -> WorkerTask | None:
        """Parse + check one raw line; ``None`` if buffered as removed."""
        record = self.parser.parse(line)
        return self.admit_record(record)

    def admit_record(self, record: Record) -> WorkerTask | None:
        """Check one record against the template's remaining noise."""
        if self.template is None:
            raise RuntimeError("no active publication")
        offset = self.domain.leaf_offset(record.indexed_value(self.schema))
        if not record.is_dummy and self._negative_budget[offset] > 0:
            self._negative_budget[offset] -= 1
            self.removed.append(record)
            self.template.update_with_record(offset)
            return None
        if not record.is_dummy:
            self.template.update_with_record(offset)
        return WorkerTask(self.publication, record, offset)


class WorkerNode:
    """One enricher + encrypter worker."""

    def __init__(
        self,
        worker_id: int,
        schema: Schema,
        cipher: RecordCipher,
        rng: random.Random | None = None,
    ):
        self.worker_id = worker_id
        self.enricher = Enricher(rng=rng)
        self.encrypter = Encrypter(schema, cipher)
        self.enricher.begin_publication()
        self.processed = 0

    def process(self, task: WorkerTask) -> WorkerOutput:
        """Tag and encrypt one record."""
        tag = self.enricher.tag()
        ciphertext = self.encrypter.encrypt(task.record)
        self.processed += 1
        return WorkerOutput(
            publication=task.publication,
            tag=tag,
            leaf_offset=task.leaf_offset,
            ciphertext=ciphertext,
            dummy=task.record.is_dummy,
        )


class ParallelPinedRqPPSystem:
    """The full parallel PINED-RQ++ deployment (synchronous driver).

    Parameters
    ----------
    schema, domain:
        Relation schema and binned domain.
    cipher:
        Record cipher shared with the client.
    num_workers:
        Enricher/encrypter nodes.
    epsilon, delta:
        Privacy budget and overflow-sizing probability.
    """

    def __init__(
        self,
        schema: Schema,
        domain: AttributeDomain,
        cipher: RecordCipher,
        num_workers: int = 4,
        epsilon: float = 1.0,
        delta: float = 0.99,
        fanout: int = 16,
        seed: int | None = None,
    ):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        rng = random.Random(seed)
        self.schema = schema
        self.domain = domain
        self.cipher = cipher
        self.delta = delta
        self.front = FrontNode(
            schema, domain, epsilon, fanout=fanout,
            rng=random.Random(rng.random()),
        )
        self.workers = [
            WorkerNode(i, schema, cipher, rng=random.Random(rng.random()))
            for i in range(num_workers)
        ]
        self._rng = random.Random(rng.random())
        self.cloud = MatchingTableCloud(domain)
        self._matching_table: dict[int, int] = {}
        self._next_worker = 0
        self._dummy_queue: deque[Record] = deque()

    def start_publication(self) -> None:
        """Open a publication on the front node and the cloud."""
        self.front.start_publication()
        self.cloud.announce_publication(self.front.publication)
        self._matching_table = {}
        for worker in self.workers:
            worker.enricher.begin_publication()
        self._dummy_queue = deque()
        plan = self.front.template.plan
        for offset, noise in enumerate(plan.leaf_noise):
            low, high = self.domain.leaf_range(offset)
            for _ in range(max(0, noise)):
                value = low if high <= low else low + self._rng.random() * (
                    high - low
                )
                self._dummy_queue.append(make_dummy(self.schema, value))
        self._rng.shuffle(self._dummy_queue)

    def _forward(self, task: WorkerTask) -> None:
        worker = self.workers[self._next_worker]
        self._next_worker = (self._next_worker + 1) % len(self.workers)
        output = worker.process(task)
        self._matching_table[output.tag] = output.leaf_offset
        self.cloud.receive_tagged(
            output.publication,
            output.tag,
            EncryptedRecord(
                leaf_offset=None,
                ciphertext=output.ciphertext,
                tag=output.tag,
                publication=output.publication,
            ),
        )

    def ingest_line(self, line: str) -> None:
        """One raw line through front → worker → cloud; dummies interleave."""
        if self._dummy_queue and self._rng.random() < 0.5:
            dummy_task = self.front.admit_record(self._dummy_queue.popleft())
            if dummy_task is not None:
                self._forward(dummy_task)
        task = self.front.admit_line(line)
        if task is not None:
            self._forward(task)

    def publish(self) -> int:
        """Synchronous publication; returns the records matched."""
        while self._dummy_queue:
            task = self.front.admit_record(self._dummy_queue.popleft())
            if task is not None:
                self._forward(task)
        template = self.front.template
        bound = LaplaceMechanism(
            1.0 / template.plan.per_level_scale
        ).positive_noise_bound(self.delta)
        encrypter = Encrypter(self.schema, self.cipher)
        per_leaf: dict[int, list[Record]] = {}
        for record in self.front.removed:
            offset = self.domain.leaf_offset(
                record.indexed_value(self.schema)
            )
            per_leaf.setdefault(offset, []).append(record)
        overflow: dict[int, OverflowArray] = {}
        for offset in range(self.domain.num_leaves):
            array = OverflowArray(offset, capacity=bound)
            for record in per_leaf.get(offset, ())[:bound]:
                array.add_removed(
                    EncryptedRecord(
                        leaf_offset=None,
                        ciphertext=encrypter.encrypt(record),
                        publication=self.front.publication,
                    )
                )

            def padding(offset=offset):
                low, high = self.domain.leaf_range(offset)
                value = low if high <= low else low + self._rng.random() * (
                    high - low
                )
                return EncryptedRecord(
                    leaf_offset=None,
                    ciphertext=encrypter.encrypt(
                        make_dummy(self.schema, value)
                    ),
                    publication=self.front.publication,
                )

            array.seal(padding, rng=self._rng)
            overflow[offset] = array
        receipt = self.cloud.receive_publication(
            self.front.publication,
            template.tree,
            overflow,
            dict(self._matching_table),
        )
        return receipt.records_matched
