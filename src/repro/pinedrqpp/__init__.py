"""PINED-RQ++: index-template streaming ingestion (Tran et al.)."""

from repro.pinedrqpp.collector import PinedRqPPCollector, StreamPublicationReport
from repro.pinedrqpp.components import (
    Checker,
    Encrypter,
    Enricher,
    Parser,
    Updater,
)
from repro.pinedrqpp.parallel import (
    FrontNode,
    ParallelPinedRqPPSystem,
    WorkerNode,
)

__all__ = [
    "Checker",
    "Encrypter",
    "Enricher",
    "FrontNode",
    "ParallelPinedRqPPSystem",
    "Parser",
    "PinedRqPPCollector",
    "StreamPublicationReport",
    "Updater",
    "WorkerNode",
]
