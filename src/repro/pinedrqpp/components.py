"""The PINED-RQ++ collector workflow components (Section 4.1, Figure 4).

Incoming raw data sequentially passes: **parser** → **checker** →
**enricher** → **updater** → **encrypter**.  Each component counts the
operations it performs so the cost model can charge it accurately, and the
checker/updater expose the O(log_k n) template traversals that motivate
FRESQUE's O(1) AL/ALN redesign.
"""

from __future__ import annotations

import random

from repro.crypto.cipher import RecordCipher
from repro.index.domain import AttributeDomain
from repro.index.template import IndexTemplate
from repro.records.record import Record
from repro.records.schema import Schema
from repro.records.serialize import parse_raw_line, serialize_record


class Parser:
    """Transforms incoming raw lines into typed records."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self.parsed = 0
        self.bytes_parsed = 0

    def parse(self, line: str) -> Record:
        """Parse one raw line (the heavy, record-size-dependent task)."""
        self.parsed += 1
        self.bytes_parsed += len(line)
        return parse_raw_line(line, self.schema)


class Checker:
    """Buffers records that fall in leaves with remaining negative noise.

    PINED-RQ++ consults the *index template* for the check, paying a
    root-to-leaf traversal per record; the remaining negative noise of each
    leaf is consumed one buffered record at a time.  Buffered records still
    update the template ("the index template is then updated", Section
    4.1) so that published counts stay consistent with leaf pointers.
    """

    def __init__(self, schema: Schema, domain: AttributeDomain):
        self.schema = schema
        self.domain = domain
        self.checked = 0
        self.traversal_steps = 0
        self._negative_budget: list[int] = []
        self._removed: list[Record] = []
        self._template: IndexTemplate | None = None

    def begin_publication(self, template: IndexTemplate) -> None:
        """Reset per-publication state from the fresh template's noise."""
        self._negative_budget = [
            max(0, -noise) for noise in template.plan.leaf_noise
        ]
        self._removed = []
        self._template = template

    def check(self, record: Record) -> bool:
        """Return True (and buffer the record) if it must be removed."""
        if self._template is None:
            raise RuntimeError("checker has no active publication")
        self.checked += 1
        # Emulate the template traversal cost: one step per level.
        self.traversal_steps += self._template.tree.height
        offset = self.domain.leaf_offset(record.indexed_value(self.schema))
        if record.is_dummy:
            return False
        if self._negative_budget[offset] > 0:
            self._negative_budget[offset] -= 1
            self._removed.append(record)
            # The buffered record still counts towards the index.
            self._template.update_with_record(offset)
            self.traversal_steps += self._template.tree.height
            return True
        return False

    def drain_removed(self) -> list[Record]:
        """Hand the buffered (to-be-removed) records to the publisher."""
        removed = self._removed
        self._removed = []
        return removed


class Enricher:
    """Adds the random id (tag) used by the matching table."""

    def __init__(self, rng: random.Random | None = None):
        self._rng = rng if rng is not None else random.Random()
        self.enriched = 0
        self._used: set[int] = set()

    def begin_publication(self) -> None:
        """Tags only need to be unique within a publication."""
        self._used.clear()

    def tag(self) -> int:
        """Draw a fresh random tag."""
        self.enriched += 1
        while True:
            candidate = self._rng.getrandbits(63)
            if candidate not in self._used:
                self._used.add(candidate)
                return candidate


class Updater:
    """Updates the index template and the matching table per record."""

    def __init__(self, schema: Schema, domain: AttributeDomain):
        self.schema = schema
        self.domain = domain
        self.updates = 0
        self.traversal_steps = 0
        self._template: IndexTemplate | None = None
        self.matching_table: dict[int, int] = {}

    def begin_publication(self, template: IndexTemplate) -> None:
        """Attach the fresh template and reset the matching table."""
        self._template = template
        self.matching_table = {}

    def update(self, record: Record, tag: int) -> int:
        """Apply one record: O(log_k n) path update + table entry.

        Dummy records only contribute a matching-table entry (their counts
        are already in the template's noise).  Returns the leaf offset.
        """
        if self._template is None:
            raise RuntimeError("updater has no active publication")
        offset = self.domain.leaf_offset(record.indexed_value(self.schema))
        self.updates += 1
        self.matching_table[tag] = offset
        if not record.is_dummy:
            self._template.update_with_record(offset)
            self.traversal_steps += self._template.tree.height
        return offset


class Encrypter:
    """Encrypts records for shipment to the cloud."""

    def __init__(self, schema: Schema, cipher: RecordCipher):
        self.schema = schema
        self.cipher = cipher
        self.encrypted = 0
        self.bytes_out = 0

    def encrypt(self, record: Record) -> bytes:
        """Serialize and encrypt one record."""
        ciphertext = self.cipher.encrypt(serialize_record(record, self.schema))
        self.encrypted += 1
        self.bytes_out += len(ciphertext)
        return ciphertext
