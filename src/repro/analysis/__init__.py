"""Security and quality analysis: attacker simulation, query quality."""

from repro.analysis.attacker import (
    AttackOutcome,
    InformedAttacker,
    ObservedRelease,
    advantage_vs_buffer,
    simulate_interval,
)
from repro.analysis.leakage import (
    fresque_observed_histogram,
    histogram_distance,
    rank_correlation,
)
from repro.analysis.quality import (
    QueryQuality,
    StorageOverhead,
    evaluate_query,
    storage_overhead,
)

__all__ = [
    "AttackOutcome",
    "InformedAttacker",
    "ObservedRelease",
    "QueryQuality",
    "StorageOverhead",
    "advantage_vs_buffer",
    "evaluate_query",
    "fresque_observed_histogram",
    "histogram_distance",
    "rank_correlation",
    "simulate_interval",
    "storage_overhead",
]
