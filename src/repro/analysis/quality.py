"""Query-quality and storage-overhead metrics.

The differentially private index trades exactness for privacy: leaves whose
noisy count went negative are pruned (recall loss), leaves kept alive by
positive noise ship dummies the client must discard (bandwidth overhead).
These helpers quantify both against ground truth, plus the storage-overhead
requirement of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.query_client import ClientResult
from repro.records.record import Record
from repro.records.schema import Schema


@dataclass(frozen=True)
class QueryQuality:
    """Precision/recall of one range query against ground truth.

    Precision counts *real in-range* results over all decrypted payloads
    (dummies and bin-granularity over-returns included), i.e. the client's
    useful fraction of received ciphertexts.
    """

    true_positives: int
    expected: int
    received_ciphertexts: int

    @property
    def recall(self) -> float:
        """Fraction of truly matching records the client got back."""
        if self.expected == 0:
            return 1.0
        return self.true_positives / self.expected

    @property
    def precision(self) -> float:
        """Useful fraction of the ciphertexts transferred."""
        if self.received_ciphertexts == 0:
            return 1.0
        return self.true_positives / self.received_ciphertexts


def evaluate_query(
    truth: list[Record],
    schema: Schema,
    low: float,
    high: float,
    result: ClientResult,
) -> QueryQuality:
    """Score a client result against the ground-truth record list."""
    expected = {
        record.values
        for record in truth
        if low <= record.indexed_value(schema) <= high
    }
    got = {record.values for record in result.records}
    unexpected = got - expected
    if unexpected:
        raise AssertionError(
            f"client returned {len(unexpected)} records outside ground "
            "truth — decryption or filtering is broken"
        )
    return QueryQuality(
        true_positives=len(got & expected),
        expected=len(expected),
        received_ciphertexts=result.ciphertexts_received,
    )


@dataclass(frozen=True)
class StorageOverhead:
    """Published bytes versus the plaintext dataset (Table 1 metric)."""

    plaintext_bytes: int
    published_bytes: int
    index_nodes: int
    overflow_slots: int

    @property
    def expansion_factor(self) -> float:
        """Published size over plaintext size."""
        if self.plaintext_bytes == 0:
            return 0.0
        return self.published_bytes / self.plaintext_bytes


def storage_overhead(
    plaintext_bytes: int,
    store_bytes: int,
    index_nodes: int,
    overflow_slots: int,
    slot_bytes: int,
) -> StorageOverhead:
    """Assemble the storage-overhead summary for one publication.

    The published footprint is the encrypted dataset plus the (small)
    index — ``index_nodes`` counts at ~16 bytes each — plus the padded
    overflow arrays.
    """
    published = store_bytes + index_nodes * 16 + overflow_slots * slot_bytes
    return StorageOverhead(
        plaintext_bytes=plaintext_bytes,
        published_bytes=published,
        index_nodes=index_nodes,
        overflow_slots=overflow_slots,
    )
