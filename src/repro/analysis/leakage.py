"""Leakage metrics: what the honest-but-curious server learns.

Quantifies the structural leakage of each scheme's server-side view so the
Table 1 'formal security' column can be backed by numbers:

* **OPE** — the storage order is the plaintext order: rank correlation 1.0;
* **bucketization** — per-bucket cardinalities equal the true histogram:
  leakage distance 0;
* **FRESQUE / PINED-RQ** — the observable per-leaf pair counts differ from
  the true histogram by the Laplace noise (dummies added, removals hidden
  in fixed-size overflow arrays): the leakage distance is bounded by the
  calibrated noise, never zero.
"""

from __future__ import annotations


def rank_correlation(plaintexts: list[float], observed: list[float]) -> float:
    """Spearman rank correlation between plaintexts and the observed keys.

    1.0 means the server-side ordering reveals the plaintext order
    exactly (OPE); ~0 means no ordinal information.
    """
    if len(plaintexts) != len(observed):
        raise ValueError("sequences must have equal length")
    n = len(plaintexts)
    if n < 2:
        return 0.0

    def ranks(values: list[float]) -> list[float]:
        order = sorted(range(n), key=lambda i: values[i])
        result = [0.0] * n
        i = 0
        while i < n:
            j = i
            while j + 1 < n and values[order[j + 1]] == values[order[i]]:
                j += 1
            average = (i + j) / 2.0
            for k in range(i, j + 1):
                result[order[k]] = average
            i = j + 1
        return result

    rank_a = ranks(list(plaintexts))
    rank_b = ranks(list(observed))
    mean = (n - 1) / 2.0
    cov = sum((a - mean) * (b - mean) for a, b in zip(rank_a, rank_b))
    var_a = sum((a - mean) ** 2 for a in rank_a)
    var_b = sum((b - mean) ** 2 for b in rank_b)
    if var_a == 0 or var_b == 0:
        return 0.0
    return cov / (var_a * var_b) ** 0.5


def histogram_distance(
    observed: list[float] | dict[int, float],
    truth: list[float] | dict[int, float],
    num_bins: int,
) -> float:
    """Normalised L1 distance between an observed and the true histogram.

    0 means the server sees the exact histogram (bucketization's leak);
    larger values mean the published counts hide the true distribution
    behind noise.  Normalised by the total true mass.
    """
    def as_list(source) -> list[float]:
        if isinstance(source, dict):
            values = [0.0] * num_bins
            for key, count in source.items():
                values[key] = count
            return values
        if len(source) != num_bins:
            raise ValueError(f"expected {num_bins} bins, got {len(source)}")
        return list(source)

    observed_bins = as_list(observed)
    true_bins = as_list(truth)
    total = sum(true_bins)
    if total == 0:
        return 0.0
    return sum(
        abs(a - b) for a, b in zip(observed_bins, true_bins)
    ) / total


def fresque_observed_histogram(cloud, publication: int = 0) -> list[int]:
    """The per-leaf pair counts an adversary reads off a published FRESQUE
    dataset: real records minus removals plus dummies — i.e. the noisy
    counts, never the true histogram."""
    dataset = next(
        d for d in cloud.engine.published if d.publication == publication
    )
    return [
        len(dataset.pointers.addresses(offset))
        for offset in range(dataset.tree.num_leaves)
    ]
