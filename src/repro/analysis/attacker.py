"""Informed-online-attacker simulation (Sections 2.1, 5.2, 6).

The informed online attacker observes when each record reaches the cloud
and knows the time distribution of *real* arrivals.  Records showing up at
times where no real data should exist are, absent countermeasures, dummies
with certainty — leaking the positive noise values.  The randomer's mixing
buffer destroys that certainty.

:func:`simulate_interval` replays one publishing interval through a
randomer of configurable size (size 1 ≡ no randomer, the paper's extreme
case) and :class:`InformedAttacker` mounts the paper's Figure 7 attack:
classify every record released during the known quiet period as dummy.
The measured identification rate and precision quantify the leak — the
randomer-sizing experiment shows both collapsing once the buffer exceeds
the dummy count (the ``α ≥ 2`` rule).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.messages import Pair
from repro.core.randomer import Randomer
from repro.records.record import EncryptedRecord


@dataclass(frozen=True)
class ObservedRelease:
    """One record arrival as the cloud (attacker) sees it."""

    time: float
    is_dummy: bool  # ground truth, hidden from the attacker
    from_flush: bool


@dataclass(frozen=True)
class AttackOutcome:
    """How well the informed attacker did on one interval.

    Parameters
    ----------
    dummies_identified:
        Dummies the attacker flagged (correct guesses).
    reals_misflagged:
        Real records wrongly flagged as dummies.
    total_dummies:
        Dummies in the interval (for the identification rate).
    """

    dummies_identified: int
    reals_misflagged: int
    total_dummies: int

    @property
    def identification_rate(self) -> float:
        """Fraction of dummies the attacker confidently identified."""
        if self.total_dummies == 0:
            return 0.0
        return self.dummies_identified / self.total_dummies

    @property
    def precision(self) -> float:
        """Fraction of the attacker's flags that were actually dummies."""
        flagged = self.dummies_identified + self.reals_misflagged
        if flagged == 0:
            return 0.0
        return self.dummies_identified / flagged


def _dummy_pair(index: int) -> Pair:
    return Pair(
        publication=0,
        leaf_offset=0,
        encrypted=EncryptedRecord(0, b"\x00" * 32),
        dummy=True,
    )


def _real_pair(index: int) -> Pair:
    return Pair(
        publication=0,
        leaf_offset=0,
        encrypted=EncryptedRecord(0, b"\x01" * 32),
        dummy=False,
    )


def simulate_interval(
    n_real: int,
    n_dummies: int,
    buffer_size: int,
    quiet_fraction: float = 0.3,
    rng: random.Random | None = None,
) -> list[ObservedRelease]:
    """Replay one interval through a randomer and record the cloud's view.

    Real records arrive uniformly over the *active* part of the interval
    ``[quiet_fraction, 1)``; dummies are scheduled uniformly over the whole
    interval (as FRESQUE's dispatcher does).  A ``buffer_size`` of 1 is the
    degenerate no-randomer case: every insert immediately evicts.
    """
    if not 0 <= quiet_fraction < 1:
        raise ValueError("quiet fraction must be in [0, 1)")
    clock = rng if rng is not None else random.Random()
    arrivals: list[tuple[float, Pair]] = []
    for index in range(n_real):
        time = quiet_fraction + clock.random() * (1.0 - quiet_fraction)
        arrivals.append((time, _real_pair(index)))
    for index in range(n_dummies):
        arrivals.append((clock.random(), _dummy_pair(index)))
    arrivals.sort(key=lambda item: item[0])

    randomer = Randomer(buffer_size, rng=clock)
    observed: list[ObservedRelease] = []
    for time, pair in arrivals:
        evicted = randomer.insert(pair)
        if evicted is not None:
            observed.append(
                ObservedRelease(
                    time=time, is_dummy=evicted.dummy, from_flush=False
                )
            )
    for pair in randomer.flush():
        observed.append(
            ObservedRelease(time=1.0, is_dummy=pair.dummy, from_flush=True)
        )
    return observed


class InformedAttacker:
    """Knows the real-data time distribution; flags improbable arrivals.

    Parameters
    ----------
    quiet_until:
        The attacker's background knowledge: no real record arrives before
        this fraction of the interval.
    """

    def __init__(self, quiet_until: float = 0.3):
        self.quiet_until = quiet_until

    def attack(self, observed: list[ObservedRelease]) -> AttackOutcome:
        """Classify quiet-period releases as dummies and score the attack.

        End-of-interval flush releases are not flagged — the attacker knows
        the whole buffer is published then, real and dummy mixed.
        """
        identified = 0
        misflagged = 0
        total_dummies = sum(1 for release in observed if release.is_dummy)
        for release in observed:
            flagged = not release.from_flush and release.time < self.quiet_until
            if not flagged:
                continue
            if release.is_dummy:
                identified += 1
            else:
                misflagged += 1
        return AttackOutcome(
            dummies_identified=identified,
            reals_misflagged=misflagged,
            total_dummies=total_dummies,
        )


def advantage_vs_buffer(
    n_real: int,
    n_dummies: int,
    buffer_sizes: list[int],
    quiet_fraction: float = 0.3,
    trials: int = 5,
    seed: int = 0,
) -> dict[int, float]:
    """Average dummy-identification rate for each buffer size.

    The randomer-security curve: ≈1 identification at buffer size 1 (no
    randomer), dropping to 0 once the buffer safely exceeds the dummy
    count.
    """
    results: dict[int, float] = {}
    for size in buffer_sizes:
        total = 0.0
        for trial in range(trials):
            rng = random.Random(seed * 1000 + size * 17 + trial)
            observed = simulate_interval(
                n_real, n_dummies, size, quiet_fraction, rng=rng
            )
            outcome = InformedAttacker(quiet_fraction).attack(observed)
            total += outcome.identification_rate
        results[size] = total / trials
    return results
