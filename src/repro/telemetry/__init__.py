"""``repro.telemetry`` — metrics, tracing and the flight recorder.

The measurement layer of the reproduction: a thread-safe metrics
registry (counters, gauges, fixed-bucket histograms), span-based tracing
with a per-publication flight recorder, pluggable wall/simulated clocks,
and exporters (JSON lines, Prometheus text, console tables).

Enable it by passing a :class:`Telemetry` to any driver::

    from repro.telemetry import Telemetry
    telemetry = Telemetry()
    system = FresqueSystem(config, cipher, seed=1, telemetry=telemetry)
    ...
    print(console_report(telemetry))

Every component defaults to :data:`NULL_TELEMETRY`, whose operations are
no-ops — disabled overhead is one attribute lookup per instrumented
operation.
"""

from repro.telemetry.clock import WALL_CLOCK, Clock, SimulatedClock, WallClock
from repro.telemetry.context import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    coalesce,
)
from repro.telemetry.exporters import (
    console_report,
    prometheus_text,
    read_jsonl,
    stage_table,
    write_bench_json,
    write_jsonl,
)
from repro.telemetry.registry import (
    DURATION_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricSample,
    NullRegistry,
)
from repro.telemetry.spans import (
    PUBLICATION_SPAN,
    STAGES,
    FlightRecorder,
    NullFlightRecorder,
    Span,
)

__all__ = [
    "Clock",
    "Counter",
    "DURATION_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullFlightRecorder",
    "NullRegistry",
    "NullTelemetry",
    "PUBLICATION_SPAN",
    "SIZE_BUCKETS",
    "STAGES",
    "SimulatedClock",
    "Span",
    "Telemetry",
    "WALL_CLOCK",
    "WallClock",
    "coalesce",
    "console_report",
    "prometheus_text",
    "read_jsonl",
    "stage_table",
    "write_bench_json",
    "write_jsonl",
]
