"""Time sources for the telemetry subsystem.

Every timestamp in the pipeline — span start/end, stage latencies, wall
budgets — goes through a :class:`Clock` so the discrete-event simulator
and the real runtimes share one span model: :class:`WallClock` reads the
process's monotonic clock, :class:`SimulatedClock` reads a simulation
:class:`~repro.simulation.events.EventLoop`.  Library code under
``repro/{core,cloud,runtime}`` must not call ``time.time()`` /
``time.perf_counter()`` / ``time.monotonic()`` directly (enforced by
fresque-lint FRQ-T501); it takes timestamps from a clock instead.
"""

from __future__ import annotations

import time


class Clock:
    """Interface: a monotonically non-decreasing time source in seconds."""

    def now(self) -> float:
        """Current time in (wall or simulated) seconds."""
        raise NotImplementedError


class WallClock(Clock):
    """Monotonic wall time (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


class SimulatedClock(Clock):
    """Reads the simulated time of a discrete-event loop.

    Parameters
    ----------
    loop:
        Any object with a ``now`` attribute in seconds — in practice a
        :class:`repro.simulation.events.EventLoop`.
    """

    def __init__(self, loop):
        self._loop = loop

    def now(self) -> float:
        return self._loop.now


#: Shared wall clock — the sanctioned way for runtime code to read wall
#: time (deadlines, wall-second budgets) without bypassing telemetry.
WALL_CLOCK = WallClock()
