"""Exporters: JSON lines, Prometheus text format, console table.

Three consumers, three formats:

* **JSON lines** — the machine-readable recording a run leaves behind
  (metrics snapshot + retained spans, one JSON object per line).  This
  is what ``python -m repro.telemetry.report`` renders and what the
  ``BENCH_*.json`` artifacts are built from.
* **Prometheus text** — scrape-compatible exposition of the registry.
* **Console table** — the per-stage latency/throughput breakdown a
  human reads after a run.
"""

from __future__ import annotations

import json
import pathlib
import platform
from typing import Iterable

from repro.telemetry.registry import MetricSample
from repro.telemetry.spans import PUBLICATION_SPAN, STAGES, Span

FORMAT_VERSION = 1


def mirror_shared_stats(telemetry, scope: str, stats: dict) -> None:
    """Mirror one cross-process stats block into local gauges.

    Multiprocess runtimes cannot share a registry: workers publish their
    counters through a shared-memory stats block (one f64 cell per
    field), and the parent periodically mirrors the block into
    ``shm_worker_stat{scope=...,field=...}`` gauges so the ordinary
    exporters above see them.  Gauges (not counters) because the block
    holds absolute values — re-reading must overwrite, not accumulate.
    """
    for field, value in stats.items():
        telemetry.gauge("shm_worker_stat", scope=scope, field=field).set(
            value
        )


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def metric_to_dict(sample: MetricSample) -> dict:
    """One metric sample as a JSON-ready dict."""
    out = {
        "type": "metric",
        "kind": sample.kind,
        "name": sample.name,
        "labels": dict(sample.labels),
        "value": sample.value,
    }
    if sample.kind == "histogram":
        out["sum"] = sample.sum
        out["buckets"] = [
            ["+Inf" if bound == float("inf") else bound, count]
            for bound, count in sample.buckets
        ]
    return out


def span_to_dict(span: Span) -> dict:
    """One span as a JSON-ready dict."""
    return {
        "type": "span",
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "publication": span.publication,
        "start": span.start,
        "end": span.end,
    }


def write_jsonl(path, telemetry, meta: dict | None = None) -> pathlib.Path:
    """Write one run's recording (meta + metrics + spans) as JSON lines."""
    path = pathlib.Path(path)
    lines = [
        json.dumps(
            {
                "type": "meta",
                "format": FORMAT_VERSION,
                "python": platform.python_version(),
                **(meta or {}),
            }
        )
    ]
    lines.extend(
        json.dumps(metric_to_dict(sample))
        for sample in telemetry.registry.samples()
    )
    lines.extend(
        json.dumps(span_to_dict(span)) for span in telemetry.recorder.spans()
    )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_jsonl(path) -> tuple[dict, list[dict], list[dict]]:
    """Load a recording back: ``(meta, metric dicts, span dicts)``."""
    meta: dict = {}
    metrics: list[dict] = []
    spans: list[dict] = []
    for line in pathlib.Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        kind = entry.get("type")
        if kind == "meta":
            meta = entry
        elif kind == "metric":
            metrics.append(entry)
        elif kind == "span":
            spans.append(entry)
    return meta, metrics, spans


def write_bench_json(path, bench: str, data: dict) -> pathlib.Path:
    """Write one benchmark's machine-readable ``BENCH_*.json`` artifact.

    The envelope is stable (``bench``, ``format``, ``python``, ``data``)
    so the perf trajectory can diff runs across PRs.
    """
    path = pathlib.Path(path)
    payload = {
        "bench": bench,
        "format": FORMAT_VERSION,
        "python": platform.python_version(),
        "data": data,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------


def _label_text(labels: Iterable[tuple[str, str]], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry) -> str:
    """Render the registry in the Prometheus exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for sample in registry.samples():
        if sample.name not in typed:
            typed.add(sample.name)
            lines.append(f"# TYPE {sample.name} {sample.kind}")
        if sample.kind == "histogram":
            cumulative = 0
            for bound, count in sample.buckets:
                cumulative += count
                labels = _label_text(
                    sample.labels, f'le="{_format_value(bound)}"'
                )
                lines.append(f"{sample.name}_bucket{labels} {cumulative}")
            labels = _label_text(sample.labels)
            lines.append(f"{sample.name}_sum{labels} {sample.sum!r}")
            lines.append(
                f"{sample.name}_count{labels} {_format_value(sample.value)}"
            )
        else:
            labels = _label_text(sample.labels)
            lines.append(
                f"{sample.name}{labels} {_format_value(sample.value)}"
            )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Console table
# ---------------------------------------------------------------------------


def _table(header: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(header[col]), max((len(r[col]) for r in rows), default=0))
        for col in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return lines


def _stage_rows(stage_stats: dict[str, dict]) -> list[list[str]]:
    total_time = sum(s["sum"] for s in stage_stats.values()) or 1.0
    rows = []
    for stage in STAGES:
        stats = stage_stats.get(
            stage, {"count": 0, "sum": 0.0, "mean": 0.0, "p95": 0.0}
        )
        rows.append(
            [
                stage,
                str(int(stats["count"])),
                f"{stats['sum'] * 1000:.2f}",
                f"{stats['mean'] * 1e6:.1f}",
                f"{stats['p95'] * 1e6:.1f}",
                f"{stats['sum'] / total_time:6.1%}",
            ]
        )
    return rows


def stage_table(stage_stats: dict[str, dict], title: str = "per-stage latency") -> str:
    """Render the seven-stage latency breakdown as an aligned table.

    ``stage_stats`` maps stage name to ``{"count", "sum", "mean",
    "p95"}`` (seconds).
    """
    lines = [title, "=" * len(title)]
    lines.extend(
        _table(
            ["stage", "ops", "total ms", "mean µs", "p95 µs", "share"],
            _stage_rows(stage_stats),
        )
    )
    return "\n".join(lines)


def live_stage_stats(telemetry) -> dict[str, dict]:
    """Per-stage stats straight from a live telemetry facade."""
    stats: dict[str, dict] = {}
    for stage in STAGES:
        histogram = telemetry.stage_histogram(stage)
        stats[stage] = {
            "count": histogram.count,
            "sum": histogram.sum,
            "mean": histogram.mean(),
            "p95": histogram.quantile(0.95),
        }
    return stats


def console_report(telemetry, title: str = "telemetry report") -> str:
    """Full console rendering: stage table + publication roots + counters."""
    lines = [stage_table(live_stage_stats(telemetry), title=title)]
    roots = [
        span
        for span in telemetry.recorder.spans()
        if span.name == PUBLICATION_SPAN
    ]
    if roots:
        lines.append("")
        lines.extend(
            _table(
                ["publication", "duration ms", "stage spans"],
                [
                    [
                        str(root.publication),
                        f"{root.duration * 1000:.2f}",
                        str(len(telemetry.recorder.children_of(root.span_id))),
                    ]
                    for root in roots
                ],
            )
        )
    counters = [
        sample
        for sample in telemetry.registry.samples()
        if sample.kind in ("counter", "gauge")
    ]
    if counters:
        lines.append("")
        lines.extend(
            _table(
                ["metric", "value"],
                [
                    [
                        sample.name + _label_text(sample.labels),
                        _format_value(sample.value),
                    ]
                    for sample in counters
                ],
            )
        )
    return "\n".join(lines)
