"""Span-based tracing: the per-publication flight recorder.

A :class:`Span` is one timed unit of pipeline work — a stage applied to
one record or one publication-level job.  Spans carry explicit
parent/child links: stage spans point at their publication's root span,
so a recorded run can be re-assembled into per-publication traces.

The :class:`FlightRecorder` keeps completed spans in a bounded ring
buffer (newest win), making it safe to leave enabled during long runs:
memory is capped, and the recorder always holds the most recent flight's
worth of spans — exactly what you want when diagnosing why the last
publication was slow.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass

#: The seven pipeline stages every FRESQUE deployment reports on, in
#: pipeline order.  ``dispatch`` through ``check`` are per-record;
#: ``merge``, ``publish`` and ``match`` are per-publication jobs.
STAGES = ("dispatch", "parse", "encrypt", "check", "merge", "publish", "match")

#: Span name of the per-publication root (parent of all stage spans).
PUBLICATION_SPAN = "publication"


@dataclass(frozen=True)
class Span:
    """One completed timed operation.

    Parameters
    ----------
    span_id:
        Unique id within this recorder.
    parent_id:
        Id of the enclosing span (``None`` for roots).
    name:
        Stage name (one of :data:`STAGES`) or :data:`PUBLICATION_SPAN`.
    publication:
        Publication number the work belonged to (``-1`` if none).
    start, end:
        Clock readings in seconds (wall or simulated, per the recorder's
        clock source).
    """

    span_id: int
    parent_id: int | None
    name: str
    publication: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return self.end - self.start


class FlightRecorder:
    """Ring buffer of completed spans.

    Parameters
    ----------
    capacity:
        Maximum retained spans; older spans fall off the ring.
    """

    def __init__(self, capacity: int = 8192):
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._open_roots: dict[int, tuple[int, float]] = {}
        self.recorded = 0

    def next_id(self) -> int:
        """Allocate a fresh span id."""
        return next(self._ids)

    def record(
        self,
        name: str,
        publication: int,
        start: float,
        end: float,
        parent_id: int | None = None,
    ) -> int:
        """Append one completed span; returns its id."""
        span_id = self.next_id()
        self._ring.append(
            Span(
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                publication=publication,
                start=start,
                end=end,
            )
        )
        self.recorded += 1
        return span_id

    # -- publication roots -------------------------------------------------

    def open_root(self, publication: int, start: float) -> int:
        """Open the root span of ``publication``; stage spans recorded
        while it is open become its children."""
        with self._lock:
            entry = self._open_roots.get(publication)
            if entry is None:
                entry = (self.next_id(), start)
                self._open_roots[publication] = entry
            return entry[0]

    def root_of(self, publication: int) -> int | None:
        """Id of the open root span for ``publication``, if any."""
        entry = self._open_roots.get(publication)
        return entry[0] if entry is not None else None

    def close_root(self, publication: int, end: float) -> int | None:
        """Complete and record the root span of ``publication``."""
        with self._lock:
            entry = self._open_roots.pop(publication, None)
        if entry is None:
            return None
        span_id, start = entry
        self._ring.append(
            Span(
                span_id=span_id,
                parent_id=None,
                name=PUBLICATION_SPAN,
                publication=publication,
                start=start,
                end=end,
            )
        )
        self.recorded += 1
        return span_id

    # -- reading -----------------------------------------------------------

    def spans(self) -> tuple[Span, ...]:
        """Every retained span, oldest first."""
        return tuple(self._ring)

    def spans_for(self, publication: int) -> tuple[Span, ...]:
        """Retained spans of one publication."""
        return tuple(s for s in self._ring if s.publication == publication)

    def children_of(self, span_id: int) -> tuple[Span, ...]:
        """Retained spans whose parent is ``span_id``."""
        return tuple(s for s in self._ring if s.parent_id == span_id)

    def stage_durations(self) -> dict[str, list[float]]:
        """Retained span durations grouped by span name."""
        grouped: dict[str, list[float]] = {}
        for span in self._ring:
            grouped.setdefault(span.name, []).append(span.duration)
        return grouped

    def clear(self) -> None:
        """Drop every retained span (open roots are kept)."""
        self._ring.clear()


class NullFlightRecorder:
    """Disabled recorder: records nothing, reads as empty."""

    capacity = 0
    recorded = 0

    def next_id(self) -> int:
        return 0

    def record(self, name, publication, start, end, parent_id=None) -> int:
        return 0

    def open_root(self, publication: int, start: float) -> int:
        return 0

    def root_of(self, publication: int) -> None:
        return None

    def close_root(self, publication: int, end: float) -> None:
        return None

    def spans(self) -> tuple[Span, ...]:
        return ()

    def spans_for(self, publication: int) -> tuple[Span, ...]:
        return ()

    def children_of(self, span_id: int) -> tuple[Span, ...]:
        return ()

    def stage_durations(self) -> dict[str, list[float]]:
        return {}

    def clear(self) -> None:
        pass
