"""Thread-safe metrics: counters, gauges and fixed-bucket histograms.

Designed to stay enabled inside the threaded and TCP runtimes: the hot
path (``Counter.inc``, ``Histogram.observe``) takes no locks.  Each
instrument keeps one *cell* per writer thread, keyed by thread id — a
thread only ever mutates its own cell, and CPython's per-key dict
operations make the cell bookkeeping safe without a mutex.  Reads
aggregate across cells; a read racing a writer may be one update stale,
never corrupt.

A :class:`NullRegistry` hands out shared no-op instruments so
instrumented code pays only an attribute lookup and an empty call when
telemetry is disabled.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass

#: Default duration buckets (seconds): 1 µs … 10 s, roughly log-spaced.
#: Chosen to resolve both Python-scale per-record operations (µs) and
#: whole-publication jobs (ms–s).
DURATION_BUCKETS = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)

#: Default size buckets (bytes / records): 1 … 1M, log-spaced.
SIZE_BUCKETS = (
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)


class Counter:
    """Monotonic counter with lock-free per-thread increment cells."""

    __slots__ = ("name", "labels", "_cells")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._cells: dict[int, int] = {}

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (only this thread ever writes this cell)."""
        cells = self._cells
        ident = threading.get_ident()
        cells[ident] = cells.get(ident, 0) + amount

    @property
    def value(self) -> int:
        """Aggregated total across all writer threads."""
        while True:
            try:
                return sum(self._cells.values())
            except RuntimeError:
                # A writer registered a new cell mid-iteration; retry.
                continue


class Gauge:
    """Last-write-wins instantaneous value (queue depth, buffer occupancy)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._value: float = 0.0

    def set(self, value: float) -> None:
        """Store the current value (a single atomic attribute store)."""
        self._value = value

    @property
    def value(self) -> float:
        """Most recently stored value."""
        return self._value


class Histogram:
    """Fixed-bucket histogram with lock-free per-thread cells.

    Parameters
    ----------
    name:
        Metric name.
    buckets:
        Strictly increasing upper bounds; an implicit ``+Inf`` bucket is
        appended.  Bounds are fixed at construction — observation never
        allocates or rebalances.
    """

    __slots__ = ("name", "labels", "buckets", "_cells")

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...] = DURATION_BUCKETS,
        labels: tuple[tuple[str, str], ...] = (),
    ):
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be strictly increasing and non-empty")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        # cell layout per thread: [count, sum, bucket_0, ..., bucket_inf]
        self._cells: dict[int, list[float]] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        cells = self._cells
        ident = threading.get_ident()
        cell = cells.get(ident)
        if cell is None:
            cell = cells[ident] = [0.0] * (2 + len(self.buckets) + 1)
        cell[0] += 1
        cell[1] += value
        cell[2 + bisect_left(self.buckets, value)] += 1

    def _aggregate(self) -> list[float]:
        width = 2 + len(self.buckets) + 1
        total = [0.0] * width
        while True:
            try:
                snapshot = list(self._cells.values())
                break
            except RuntimeError:
                continue
        for cell in snapshot:
            for index in range(width):
                total[index] += cell[index]
        return total

    @property
    def count(self) -> int:
        """Observations recorded."""
        return int(self._aggregate()[0])

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._aggregate()[1]

    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        total = self._aggregate()
        return total[1] / total[0] if total[0] else 0.0

    def bucket_counts(self) -> list[int]:
        """Per-bucket counts, one per bound plus the ``+Inf`` bucket."""
        return [int(c) for c in self._aggregate()[2:]]

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the bucket boundaries.

        Returns the upper bound of the bucket holding the quantile (the
        last finite bound for the ``+Inf`` bucket); 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self._aggregate()
        count = total[0]
        if not count:
            return 0.0
        rank = q * count
        seen = 0.0
        for index, bound in enumerate(self.buckets):
            seen += total[2 + index]
            if seen >= rank:
                return bound
        return self.buckets[-1]


@dataclass(frozen=True)
class MetricSample:
    """One exported metric: kind, name, labels and its current data."""

    kind: str
    name: str
    labels: tuple[tuple[str, str], ...]
    value: float
    sum: float = 0.0
    buckets: tuple[tuple[float, int], ...] = ()


class MetricsRegistry:
    """Names and hands out instruments; snapshots them for exporters.

    Instrument creation (``counter()`` / ``gauge()`` / ``histogram()``)
    takes a lock and should happen once per call site — components bind
    their instruments at construction time, not per record.
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    def _get(self, cls, name: str, labels: dict[str, str], **kwargs):
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            instrument = self._metrics.get(key)
            if instrument is None:
                instrument = cls(name, labels=key[1], **kwargs)
                self._metrics[key] = instrument
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DURATION_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        return self._get(Histogram, name, labels, buckets=buckets)

    def samples(self) -> list[MetricSample]:
        """Point-in-time snapshot of every instrument, sorted by name."""
        with self._lock:
            instruments = list(self._metrics.values())
        out: list[MetricSample] = []
        for instrument in instruments:
            if isinstance(instrument, Counter):
                out.append(
                    MetricSample(
                        kind="counter",
                        name=instrument.name,
                        labels=instrument.labels,
                        value=instrument.value,
                    )
                )
            elif isinstance(instrument, Gauge):
                out.append(
                    MetricSample(
                        kind="gauge",
                        name=instrument.name,
                        labels=instrument.labels,
                        value=instrument.value,
                    )
                )
            else:
                histogram = instrument
                counts = histogram.bucket_counts()
                bounds = list(histogram.buckets) + [float("inf")]
                out.append(
                    MetricSample(
                        kind="histogram",
                        name=histogram.name,
                        labels=histogram.labels,
                        value=histogram.count,
                        sum=histogram.sum,
                        buckets=tuple(zip(bounds, counts)),
                    )
                )
        return sorted(out, key=lambda s: (s.name, s.labels))


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = ""
    labels = ()
    value = 0
    count = 0
    sum = 0.0
    buckets = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def mean(self) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0

    def bucket_counts(self) -> list[int]:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DURATION_BUCKETS,
        **labels: str,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def samples(self) -> list[MetricSample]:
        return []
