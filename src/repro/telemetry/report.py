"""Render a per-stage latency/throughput breakdown from a recorded run.

Usage::

    python -m repro.telemetry.report run.jsonl        # recorded run
    python -m repro.telemetry.report                  # built-in demo run
    python -m repro.telemetry.report --demo -o run.jsonl

With a JSON-lines recording (written by
:func:`repro.telemetry.exporters.write_jsonl`) the report is rebuilt
entirely from the file.  Without one, a small instrumented
:class:`~repro.core.system.FresqueSystem` run is executed in-process and
reported live — covering all seven pipeline stages end to end.
"""

from __future__ import annotations

import argparse
import sys

from repro.telemetry.exporters import (
    _table,
    console_report,
    read_jsonl,
    stage_table,
    write_jsonl,
)
from repro.telemetry.spans import PUBLICATION_SPAN, STAGES


def _quantile_from_buckets(buckets: list[list], count: float, q: float) -> float:
    """Approximate quantile from recorded ``[bound, count]`` rows."""
    if not count:
        return 0.0
    rank = q * count
    seen = 0.0
    last_finite = 0.0
    for bound, bucket_count in buckets:
        finite = bound != "+Inf"
        if finite:
            last_finite = float(bound)
        seen += bucket_count
        if seen >= rank and finite:
            return float(bound)
    return last_finite


def recorded_stage_stats(metrics: list[dict]) -> dict[str, dict]:
    """Per-stage stats from recorded ``pipeline_stage_seconds`` samples."""
    stats: dict[str, dict] = {}
    for entry in metrics:
        if entry["name"] != "pipeline_stage_seconds":
            continue
        stage = entry.get("labels", {}).get("stage")
        if stage not in STAGES:
            continue
        count = entry["value"]
        total = entry.get("sum", 0.0)
        stats[stage] = {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "p95": _quantile_from_buckets(
                entry.get("buckets", []), count, 0.95
            ),
        }
    return stats


def _counter_value(metrics: list[dict], name: str) -> float:
    return sum(
        entry["value"]
        for entry in metrics
        if entry["name"] == name and entry["kind"] == "counter"
    )


def render_recording(path: str) -> str:
    """The full report for one JSON-lines recording."""
    meta, metrics, spans = read_jsonl(path)
    lines = [stage_table(recorded_stage_stats(metrics), title=f"per-stage latency — {path}")]

    roots = [s for s in spans if s["name"] == PUBLICATION_SPAN]
    children = {
        root["span_id"]: sum(
            1 for s in spans if s.get("parent_id") == root["span_id"]
        )
        for root in roots
    }
    if roots:
        lines.append("")
        lines.extend(
            _table(
                ["publication", "duration ms", "stage spans"],
                [
                    [
                        str(root["publication"]),
                        f"{(root['end'] - root['start']) * 1000:.2f}",
                        str(children[root["span_id"]]),
                    ]
                    for root in roots
                ],
            )
        )
        wall = sum(root["end"] - root["start"] for root in roots)
        dispatched = _counter_value(metrics, "dispatcher_records_total")
        if wall > 0 and dispatched:
            lines.append("")
            lines.append(
                f"throughput: {dispatched / wall:,.0f} records/s "
                f"({int(dispatched)} records over {wall:.3f} s of "
                f"publication time)"
            )
    return "\n".join(lines)


def demo_run(records: int = 400, publications: int = 2):
    """A small instrumented FresqueSystem run (returns its telemetry)."""
    from repro.core.config import FresqueConfig
    from repro.core.system import FresqueSystem
    from repro.crypto.cipher import SimulatedCipher
    from repro.crypto.keys import KeyStore
    from repro.datasets.flu import FluSurveyGenerator, flu_domain
    from repro.records.schema import flu_survey_schema
    from repro.telemetry.context import Telemetry

    config = FresqueConfig(
        schema=flu_survey_schema(),
        domain=flu_domain(),
        num_computing_nodes=3,
        # Self-contained demo deployment: there is no configured budget
        # to thread through here.
        epsilon=1.0,  # fresque-lint: disable=FRQ-P302 -- demo-only config
        alpha=2.0,
    )
    telemetry = Telemetry()
    cipher = SimulatedCipher(KeyStore(b"telemetry-report-demo-key-32byte"))
    system = FresqueSystem(config, cipher, seed=7, telemetry=telemetry)
    generator = FluSurveyGenerator(seed=7)
    for _ in range(publications):
        system.run_publication(list(generator.raw_lines(records)))
    return telemetry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.telemetry.report",
        description="Per-stage latency/throughput report from a recorded run.",
    )
    parser.add_argument(
        "recording",
        nargs="?",
        default=None,
        help="JSON-lines recording (omit to run the built-in demo)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run the built-in instrumented FresqueSystem demo",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the run's recording to this JSON-lines file",
    )
    parser.add_argument(
        "--records",
        type=int,
        default=400,
        help="records per publication in the demo run",
    )
    args = parser.parse_args(argv)

    if args.recording and not args.demo:
        print(render_recording(args.recording))
        return 0

    telemetry = demo_run(records=args.records)
    if args.output:
        write_jsonl(args.output, telemetry, meta={"source": "demo"})
        print(f"recording written to {args.output}", file=sys.stderr)
    print(console_report(telemetry, title="per-stage latency — demo run"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
