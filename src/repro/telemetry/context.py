"""The :class:`Telemetry` facade instrumented components talk to.

One object bundles the three telemetry pieces — metrics registry, flight
recorder and clock — behind a hot-path-friendly API:

* ``tel.now()`` reads the clock (0.0 on the null facade);
* ``tel.observe_stage(stage, publication, start)`` records one stage
  span (child of the publication root) *and* feeds the per-stage
  latency histogram;
* ``tel.counter/gauge/histogram`` bind instruments once at component
  construction time.

Components always hold a facade: :data:`NULL_TELEMETRY` when telemetry
is off, so the disabled cost is an attribute lookup and an empty method
call — no branching in component code.
"""

from __future__ import annotations

from repro.telemetry.clock import Clock, WallClock
from repro.telemetry.registry import (
    DURATION_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    _NULL_INSTRUMENT,
)
from repro.telemetry.spans import (
    STAGES,
    FlightRecorder,
    NullFlightRecorder,
)


class Telemetry:
    """Enabled telemetry: registry + flight recorder + clock.

    Parameters
    ----------
    registry:
        Metrics registry (a fresh :class:`MetricsRegistry` by default).
    recorder:
        Flight recorder (fresh, 8192-span ring by default).
    clock:
        Time source — :class:`~repro.telemetry.clock.WallClock` for real
        runtimes, :class:`~repro.telemetry.clock.SimulatedClock` when
        driven from the discrete-event simulator.
    """

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        recorder: FlightRecorder | None = None,
        clock: Clock | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.clock = clock if clock is not None else WallClock()
        self._stage_histograms = {
            stage: self.registry.histogram("pipeline_stage_seconds", stage=stage)
            for stage in STAGES
        }

    def now(self) -> float:
        """Current clock reading in seconds."""
        return self.clock.now()

    # -- stage spans -------------------------------------------------------

    def observe_stage(
        self,
        stage: str,
        publication: int,
        start: float,
        end: float | None = None,
    ) -> None:
        """Record one completed stage operation.

        Feeds the ``pipeline_stage_seconds{stage=...}`` histogram and
        appends a span linked to the publication's root span (if open).
        """
        if end is None:
            end = self.clock.now()
        self._stage_histograms[stage].observe(end - start)
        self.recorder.record(
            stage,
            publication,
            start,
            end,
            parent_id=self.recorder.root_of(publication),
        )

    def open_publication(self, publication: int) -> None:
        """Open the root span of ``publication`` (idempotent)."""
        self.recorder.open_root(publication, self.clock.now())

    def close_publication(self, publication: int) -> None:
        """Close the root span — the publication is fully matched."""
        self.recorder.close_root(publication, self.clock.now())

    # -- instruments -------------------------------------------------------

    def counter(self, name: str, **labels: str):
        """Bind a counter (do this once, at construction time)."""
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: str):
        """Bind a gauge."""
        return self.registry.gauge(name, **labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DURATION_BUCKETS,
        **labels: str,
    ):
        """Bind a histogram."""
        return self.registry.histogram(name, buckets=buckets, **labels)

    def stage_histogram(self, stage: str):
        """The pre-bound per-stage latency histogram."""
        return self._stage_histograms[stage]


class NullTelemetry:
    """Disabled facade: every operation is a cheap no-op."""

    enabled = False

    def __init__(self):
        self.registry = NullRegistry()
        self.recorder = NullFlightRecorder()
        self.clock = None

    def now(self) -> float:
        return 0.0

    def observe_stage(self, stage, publication, start, end=None) -> None:
        pass

    def open_publication(self, publication: int) -> None:
        pass

    def close_publication(self, publication: int) -> None:
        pass

    def counter(self, name: str, **labels: str):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str):
        return _NULL_INSTRUMENT

    def histogram(self, name, buckets=DURATION_BUCKETS, **labels):
        return _NULL_INSTRUMENT

    def stage_histogram(self, stage: str):
        return _NULL_INSTRUMENT


#: The shared disabled facade every component defaults to.
NULL_TELEMETRY = NullTelemetry()


def coalesce(telemetry: Telemetry | None):
    """``telemetry`` if given, else the shared null facade."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
