"""Checker protocol and the pluggable checker registry.

A checker is a class with a ``codes`` table (diagnostic code → one-line
description) and a ``check(module)`` generator.  Registering is one
decorator::

    @register
    class MyChecker(Checker):
        name = "my-family"
        codes = {"FRQ-Z901": "something the repo must never do"}

        def check(self, module):
            ...

The CLI instantiates every registered checker and feeds it each parsed
module; path-scoped rules use :meth:`ModuleInfo.in_package`.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.devtools.diagnostics import Diagnostic


@dataclass
class ModuleInfo:
    """One parsed source module handed to every checker.

    Parameters
    ----------
    path:
        Filesystem path of the module.
    display_path:
        The (usually repo-relative, posix-style) path used in diagnostics
        and baseline entries.
    tree:
        Parsed ``ast.Module``.
    source_lines:
        Source split into lines (for suppression directives).
    """

    path: Path
    display_path: str
    tree: ast.Module
    source_lines: list[str] = field(default_factory=list)

    @property
    def package_parts(self) -> tuple[str, ...]:
        """Path segments below the ``repro`` package root.

        For ``src/repro/crypto/cipher.py`` this is ``("crypto",
        "cipher.py")``; for paths outside a ``repro`` tree it falls back
        to the display path's own segments, so path-scoped checkers still
        behave sensibly on fixture files.
        """
        parts = Path(self.display_path).parts
        if "repro" in parts:
            return tuple(parts[parts.index("repro") + 1 :])
        return tuple(parts)

    def in_package(self, *names: str) -> bool:
        """Whether the module lives under any of the given subpackages."""
        parts = self.package_parts
        return any(name in parts[:-1] for name in names)

    def is_module(self, *relpaths: str) -> bool:
        """Whether the module is exactly one of ``repro``-relative paths
        such as ``"core/config.py"``."""
        joined = "/".join(self.package_parts)
        return joined in relpaths


class BaseChecker(ABC):
    """Shared surface of module- and project-scoped checkers."""

    #: Short family name (used by ``--list-codes``).
    name: str = ""

    #: Diagnostic code → one-line description.
    codes: dict[str, str] = {}

    def diagnostic(
        self, module: ModuleInfo, node: ast.AST, code: str, message: str
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node``."""
        if code not in self.codes:
            raise ValueError(f"{type(self).__name__} does not own code {code}")
        return Diagnostic(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


class Checker(BaseChecker):
    """Base class for one per-module diagnostic family."""

    @abstractmethod
    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        """Yield diagnostics for one module."""


class ProjectChecker(BaseChecker):
    """Base class for one whole-program diagnostic family.

    Runs once per lint invocation over the
    :class:`~repro.devtools.callgraph.Project` built from every module
    on the command line, instead of once per module.  Diagnostics may
    land in any of the project's modules.
    """

    @abstractmethod
    def check_project(self, project) -> Iterable[Diagnostic]:
        """Yield diagnostics for the whole project."""


_CHECKERS: list[type[BaseChecker]] = []


def register(cls: type[BaseChecker]) -> type[BaseChecker]:
    """Class decorator adding a checker to the global registry."""
    duplicate = set(cls.codes) & {
        code for existing in _CHECKERS for code in existing.codes
    }
    if duplicate:
        raise ValueError(f"diagnostic codes already registered: {duplicate}")
    _CHECKERS.append(cls)
    return cls


def all_checkers() -> list[Checker]:
    """Fresh instances of every per-module checker (importing built-ins)."""
    # Importing the package registers the built-in checker families.
    import repro.devtools.checkers  # noqa: F401

    return [cls() for cls in _CHECKERS if issubclass(cls, Checker)]


def all_project_checkers() -> list[ProjectChecker]:
    """Fresh instances of every whole-program checker."""
    import repro.devtools.checkers  # noqa: F401

    return [cls() for cls in _CHECKERS if issubclass(cls, ProjectChecker)]


def all_codes() -> dict[str, tuple[str, str]]:
    """Every known code → (family name, description)."""
    import repro.devtools.checkers  # noqa: F401

    return {
        code: (cls.name, description)
        for cls in _CHECKERS
        for code, description in cls.codes.items()
    }


def iter_diagnostics(
    checkers: Iterable[Checker], module: ModuleInfo
) -> Iterator[Diagnostic]:
    """Run every checker over one module."""
    for checker in checkers:
        yield from checker.check(module)
