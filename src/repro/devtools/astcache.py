"""Content-addressed cache of parsed module ASTs.

Whole-program linting parses every file on every run; on a warm tree the
parse step dominates.  The cache keys each entry by the SHA-256 of the
file's *content* (not its path or mtime), so renames, checkouts and
``touch`` never invalidate a byte-identical file, while any edit misses
automatically.  Entries are pickled ``ast.Module`` trees, tagged with
the interpreter's ``major.minor`` version because AST node layouts
change between Python releases.

The cache is purely an accelerator: every failure mode (missing dir,
corrupt pickle, version mismatch, permission error) silently degrades to
a fresh parse.  ``--no-cache`` on the CLI bypasses it entirely.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
import sys
from pathlib import Path

#: Directory created under the repo root to hold cache entries.
CACHE_DIR_NAME = ".fresque-lint-cache"

_VERSION_TAG = f"py{sys.version_info.major}{sys.version_info.minor}"


def content_key(source: bytes) -> str:
    """Stable cache key for one file's exact byte content."""
    return hashlib.sha256(source).hexdigest()


class AstCache:
    """Pickled-AST store keyed by file content hash."""

    def __init__(self, directory: Path):
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def _entry(self, key: str) -> Path:
        return self.directory / f"{key}.{_VERSION_TAG}.ast"

    def get(self, source: bytes) -> ast.Module | None:
        """Cached tree for ``source``, or ``None`` on any miss."""
        entry = self._entry(content_key(source))
        try:
            payload = entry.read_bytes()
            tree = pickle.loads(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupt or incompatible entry: drop it and reparse.
            self.misses += 1
            try:
                entry.unlink()
            except OSError:
                pass
            return None
        if not isinstance(tree, ast.Module):
            self.misses += 1
            return None
        self.hits += 1
        return tree

    def put(self, source: bytes, tree: ast.Module) -> None:
        """Store ``tree`` for ``source``; failures are ignored."""
        entry = self._entry(content_key(source))
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            # Write-then-rename so a crashed run never leaves a torn entry.
            tmp = entry.with_suffix(entry.suffix + f".tmp{os.getpid()}")
            tmp.write_bytes(pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL))
            tmp.replace(entry)
        except (OSError, pickle.PicklingError):
            return  # read-only tree or unpicklable node: cache stays cold
