"""Project-wide symbol table and call graph.

The per-module checkers see one file at a time; the whole-program
checkers (security dataflow, global lock order, budget flow) need to
know *who calls whom* across the entire ``repro`` tree.  This module
builds that view from the already-parsed :class:`ModuleInfo` list:

* :class:`Project` — every class, method and module-level function,
  indexed by qualified name, plus per-module import resolution
  (``from repro.x import f`` / ``import repro.x as y`` / package
  ``__init__`` re-exports);
* :func:`Project.resolve_call` — best-effort resolution of one
  ``ast.Call`` to its target function(s) or class constructor;
* :class:`CallGraph` — caller/callee adjacency with call sites, plus a
  Tarjan SCC condensation giving a callee-first traversal order so
  dataflow summaries converge in one or two passes.

Resolution is deliberately *under*-approximate: an attribute call on an
unknown receiver resolves only when exactly one project class defines a
method of that name (and the name is not a common container method).
Unresolvable calls simply contribute no edges — the analyses built on
top document this as a false-negative, never a false-positive, source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.devtools.astutil import call_name, dotted_name, function_params
from repro.devtools.registry import ModuleInfo

#: Attribute-call names never resolved by the unique-method-name rule:
#: they collide with list/dict/set/str/queue/socket builtins, so a lone
#: project method of the same name would capture unrelated calls.
_AMBIGUOUS_METHODS = frozenset(
    {
        "append", "add", "extend", "insert", "remove", "discard", "pop",
        "clear", "update", "get", "put", "join", "split", "strip", "read",
        "write", "close", "open", "send", "recv", "items", "keys", "values",
        "copy", "index", "count", "sort", "reverse", "encode", "decode",
        "format", "replace", "setdefault", "popitem", "start", "stop",
        "run", "wait", "notify", "acquire", "release", "flush", "reset",
    }
)


def module_dotted_name(display_path: str) -> str | None:
    """Dotted import path for a repo display path, or ``None``.

    ``src/repro/records/serialize.py`` → ``repro.records.serialize``;
    package ``__init__.py`` files map to the package itself.
    """
    parts = list(Path(display_path).parts)
    if "repro" not in parts:
        return None
    parts = parts[parts.index("repro") :]
    if not parts[-1].endswith(".py"):
        return None
    leaf = parts[-1][: -len(".py")]
    parts = parts[:-1] if leaf == "__init__" else parts[:-1] + [leaf]
    return ".".join(parts)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    module: ModuleInfo
    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def params(self) -> tuple[ast.arg, ...]:
        """Named parameters, with a leading ``self``/``cls`` stripped."""
        params = function_params(self.node)
        if self.is_method and params and params[0].arg in ("self", "cls"):
            has_static = any(
                isinstance(d, ast.Name) and d.id == "staticmethod"
                for d in self.node.decorator_list
            )
            if not has_static:
                params = params[1:]
        return tuple(params)

    def param_index(self, name: str) -> int | None:
        for index, param in enumerate(self.params):
            if param.arg == name:
                return index
        return None


@dataclass
class ClassInfo:
    """One class definition: its methods and (dataclass) fields."""

    module: ModuleInfo
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def init(self) -> FunctionInfo | None:
        return self.methods.get("__init__")

    def constructor_fields(self) -> tuple[str, ...]:
        """Field names a constructor call binds, in positional order.

        An explicit ``__init__`` wins; otherwise class-body annotated
        assignments (the dataclass field list) define the order.
        """
        init = self.init
        if init is not None:
            return tuple(param.arg for param in init.params)
        names = []
        for stmt in self.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                names.append(stmt.target.id)
        return tuple(names)


class Project:
    """Symbol table over a set of parsed modules."""

    def __init__(self, modules: Iterable[ModuleInfo]):
        self.modules: list[ModuleInfo] = list(modules)
        self.by_display: dict[str, ModuleInfo] = {
            module.display_path: module for module in self.modules
        }
        #: dotted module name → {symbol name → Function/ClassInfo}
        self._symbols: dict[str, dict[str, object]] = {}
        #: (display path, local alias) → dotted target ("repro.x.y" or
        #: "repro.x.y.symbol")
        self._imports: dict[tuple[str, str], str] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, list[ClassInfo]] = {}
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        self._collect()

    # -- construction ------------------------------------------------------

    def _collect(self) -> None:
        for module in self.modules:
            dotted = module_dotted_name(module.display_path)
            table: dict[str, object] = {}
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = FunctionInfo(
                        module=module,
                        node=stmt,
                        qualname=f"{module.display_path}::{stmt.name}",
                    )
                    table[stmt.name] = info
                    self.functions[info.qualname] = info
                elif isinstance(stmt, ast.ClassDef):
                    cls = ClassInfo(module=module, node=stmt)
                    for member in stmt.body:
                        if isinstance(
                            member, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            info = FunctionInfo(
                                module=module,
                                node=member,
                                qualname=(
                                    f"{module.display_path}::"
                                    f"{stmt.name}.{member.name}"
                                ),
                                class_name=stmt.name,
                            )
                            cls.methods[member.name] = info
                            self.functions[info.qualname] = info
                            self._methods_by_name.setdefault(
                                member.name, []
                            ).append(info)
                    table[stmt.name] = cls
                    self.classes.setdefault(stmt.name, []).append(cls)
                elif isinstance(stmt, ast.Import):
                    for alias in stmt.names:
                        local = alias.asname or alias.name.split(".")[0]
                        target = alias.name if alias.asname else alias.name
                        self._imports[(module.display_path, local)] = target
                elif isinstance(stmt, ast.ImportFrom):
                    if stmt.module is None or stmt.level:
                        continue  # relative imports are not used in repro
                    for alias in stmt.names:
                        if alias.name == "*":
                            continue
                        local = alias.asname or alias.name
                        self._imports[(module.display_path, local)] = (
                            f"{stmt.module}.{alias.name}"
                        )
            if dotted is not None:
                self._symbols[dotted] = table

    # -- resolution --------------------------------------------------------

    def class_named(self, name: str) -> ClassInfo | None:
        """The project class of that name, when unambiguous."""
        candidates = self.classes.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def _resolve_dotted(
        self, dotted: str, _depth: int = 0
    ) -> object | None:
        """``repro.x.y.symbol`` → symbol info, following re-exports."""
        if _depth > 4:
            return None
        module_part, _, symbol = dotted.rpartition(".")
        if not module_part:
            return None
        table = self._symbols.get(module_part)
        if table is not None:
            if symbol in table:
                return table[symbol]
            # Package __init__ re-export: follow its own import of the name.
            for module in self.modules:
                if module_dotted_name(module.display_path) == module_part:
                    onward = self._imports.get((module.display_path, symbol))
                    if onward is not None:
                        return self._resolve_dotted(onward, _depth + 1)
        return None

    def resolve_name(self, name: str, module: ModuleInfo) -> object | None:
        """A bare name in ``module`` → Function/ClassInfo, if known."""
        dotted = module_dotted_name(module.display_path)
        if dotted is not None:
            table = self._symbols.get(dotted, {})
            if name in table:
                return table[name]
        target = self._imports.get((module.display_path, name))
        if target is not None:
            return self._resolve_dotted(target)
        return None

    def resolve_call(
        self, call: ast.Call, scope: FunctionInfo
    ) -> list[object]:
        """Possible targets of ``call`` made inside ``scope``.

        Returns a (possibly empty) list of :class:`FunctionInfo` /
        :class:`ClassInfo` (constructor) entries.  Best-effort and
        under-approximate — see the module docstring.
        """
        func = call.func
        if isinstance(func, ast.Name):
            target = self.resolve_name(func.id, scope.module)
            return [target] if target is not None else []
        if not isinstance(func, ast.Attribute):
            return []
        method = func.attr
        receiver = func.value
        # self.m() / cls.m(): the enclosing class wins.
        if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
            if scope.class_name is not None:
                cls = self.class_named(scope.class_name)
                if cls is not None and method in cls.methods:
                    return [cls.methods[method]]
            return []
        # module_alias.f() via a plain or dotted import.
        receiver_dotted = dotted_name(receiver)
        if receiver_dotted is not None:
            root = receiver_dotted.split(".")[0]
            imported = self._imports.get((scope.module.display_path, root))
            if imported is not None:
                base = receiver_dotted.replace(root, imported, 1)
                resolved = self._resolve_dotted(f"{base}.{method}")
                if resolved is not None:
                    return [resolved]
            # ClassName.method(...) on an imported or local class.
            tail = receiver_dotted.rsplit(".", 1)[-1]
            named = self.resolve_name(tail, scope.module)
            if isinstance(named, ClassInfo) and method in named.methods:
                return [named.methods[method]]
        # Unknown receiver: unique project method name, if unambiguous.
        if method in _AMBIGUOUS_METHODS:
            return []
        candidates = self._methods_by_name.get(method, [])
        if len(candidates) == 1:
            return [candidates[0]]
        return []


@dataclass
class CallSite:
    """One resolved call: who calls whom, from which ``ast.Call``."""

    caller: FunctionInfo
    callee: FunctionInfo
    call: ast.Call


class CallGraph:
    """Caller/callee adjacency over a :class:`Project`."""

    def __init__(self, project: Project):
        self.project = project
        self.callees: dict[str, list[CallSite]] = {}
        self.callers: dict[str, list[CallSite]] = {}
        for info in project.functions.values():
            sites = []
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                for target in project.resolve_call(node, info):
                    if isinstance(target, ClassInfo):
                        target = target.init
                        if target is None:
                            continue
                    site = CallSite(caller=info, callee=target, call=node)
                    sites.append(site)
                    self.callers.setdefault(target.qualname, []).append(site)
            self.callees[info.qualname] = sites

    def call_sites_of(self, qualname: str) -> list[CallSite]:
        """Every resolved call site targeting ``qualname``."""
        return self.callers.get(qualname, [])

    def callee_first_order(self) -> list[FunctionInfo]:
        """Functions ordered callees-before-callers (Tarjan SCC order).

        Tarjan emits strongly connected components in reverse
        topological order of the condensation, which is exactly the
        order a bottom-up summary computation wants.
        """
        order: list[str] = []
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]

        graph = {
            name: [site.callee.qualname for site in sites]
            for name, sites in self.callees.items()
        }

        def strongconnect(root: str) -> None:
            # Iterative Tarjan: (node, iterator position) work stack.
            work = [(root, 0)]
            while work:
                node, pos = work.pop()
                if pos == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                successors = graph.get(node, [])
                for i in range(pos, len(successors)):
                    succ = successors[i]
                    if succ not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        order.append(member)
                        if member == node:
                            break
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for name in graph:
            if name not in index:
                strongconnect(name)
        functions = self.project.functions
        return [functions[name] for name in order if name in functions]


def iter_calls(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Call]:
    """Every call expression inside ``function`` (including nested)."""
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            yield node


def build_project(modules: Iterable[ModuleInfo]) -> Project:
    """Convenience constructor mirroring the checker-facing API."""
    return Project(modules)
