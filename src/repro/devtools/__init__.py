"""fresque-lint: domain-aware static analysis for this repository.

The reproduction's correctness claims rest on invariants that ordinary
unit tests exercise poorly:

* **shared-nothing parallelism** (paper Section 4.1) — races between
  parser/encrypter threads and the checker silently corrupt leaf offsets;
* **crypto hygiene** — an IV reuse or a non-constant-time tag compare
  breaks the security model even though every functional test still passes;
* **privacy-budget discipline** — any Laplace draw that bypasses the
  accountant invalidates the published ε guarantee.

This package is an AST-based (stdlib ``ast``, no third-party runtime
dependencies) checker framework enforcing those invariants::

    python -m repro.devtools.lint src

See ``docs/STATIC_ANALYSIS.md`` for every diagnostic code, the paper
invariant it protects, and how to suppress or baseline a finding.
"""

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import Checker, ModuleInfo, all_checkers, register

__all__ = [
    "Checker",
    "Diagnostic",
    "ModuleInfo",
    "all_checkers",
    "register",
]
