"""Diagnostics and inline suppression directives.

A diagnostic renders as ``file:line:col: CODE message`` — the format most
editors and CI annotations understand.  A finding can be silenced at the
exact line it fires on (or on a comment line directly above it) with::

    risky_call()  # fresque-lint: disable=FRQ-C102 -- why this is safe

The justification after the code list is free text; the directive parser
only reads the comma-separated codes (or ``all``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Matches an inline suppression directive anywhere in a source line.
_DIRECTIVE_RE = re.compile(
    r"#\s*fresque-lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding of one checker at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical ``file:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def directive_codes(line: str) -> frozenset[str]:
    """Codes suppressed by the directive on ``line`` (empty if none)."""
    match = _DIRECTIVE_RE.search(line)
    if match is None:
        return frozenset()
    return frozenset(
        code.strip() for code in match.group(1).split(",") if code.strip()
    )


def suppressed_codes(lines: list[str], lineno: int) -> frozenset[str]:
    """Codes suppressed at 1-based ``lineno``.

    A directive applies when it sits on the flagged line itself or on a
    comment-only line immediately above it.
    """
    codes: set[str] = set()
    if 1 <= lineno <= len(lines):
        codes |= directive_codes(lines[lineno - 1])
    if lineno >= 2:
        above = lines[lineno - 2].strip()
        if above.startswith("#"):
            codes |= directive_codes(above)
    return frozenset(codes)


def is_suppressed(diagnostic: Diagnostic, lines: list[str]) -> bool:
    """Whether an inline directive silences ``diagnostic``."""
    codes = suppressed_codes(lines, diagnostic.line)
    return diagnostic.code in codes or "all" in codes
