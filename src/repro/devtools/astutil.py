"""Small AST helpers shared by the checker families."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` for Name/Attribute chains, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call's callee (``None`` for computed callees)."""
    return dotted_name(call.func)


def self_attr(node: ast.AST) -> str | None:
    """Attribute name for ``self.X`` expressions, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def keyword_arg(call: ast.Call, name: str) -> ast.expr | None:
    """The value of keyword argument ``name``, if present."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_constant(node: ast.AST) -> bool:
    """Whether ``node`` is a literal constant expression."""
    return isinstance(node, ast.Constant)


def iter_functions(tree: ast.AST):
    """Every function/method definition in ``tree`` (including nested)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
