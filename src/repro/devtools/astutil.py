"""Small AST helpers shared by the checker families."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` for Name/Attribute chains, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call's callee (``None`` for computed callees)."""
    return dotted_name(call.func)


def self_attr(node: ast.AST) -> str | None:
    """Attribute name for ``self.X`` expressions, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def keyword_arg(call: ast.Call, name: str) -> ast.expr | None:
    """The value of keyword argument ``name``, if present."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_constant(node: ast.AST) -> bool:
    """Whether ``node`` is a literal constant expression."""
    return isinstance(node, ast.Constant)


def iter_functions(tree: ast.AST):
    """Every function/method definition in ``tree`` (including nested)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def assigned_names(target: ast.expr):
    """Every plain name bound by an assignment target.

    Handles tuple/list destructuring and ``*rest`` starred targets;
    attribute and subscript targets yield nothing (they bind no local
    name).  Walrus targets are plain ``ast.Name`` nodes, so
    ``assigned_names(node.target)`` covers ``ast.NamedExpr`` too.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from assigned_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from assigned_names(element)


def annotation_names(annotation: ast.expr | None) -> frozenset[str]:
    """Type names mentioned in an annotation expression.

    ``Record | None``, ``Optional[Record]``, ``list[Record]`` and string
    annotations (``"Record"``) all yield ``{"Record", ...}``; dotted
    names contribute their final attribute (``records.Record`` →
    ``Record``).
    """
    if annotation is None:
        return frozenset()
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return frozenset()
    names: set[str] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return frozenset(names)


def function_params(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.arg]:
    """Named parameters of a function, in call-mapping order.

    Positional-only then positional-or-keyword then keyword-only;
    ``*args``/``**kwargs`` catch-alls are excluded (nothing flows
    through them name-wise).
    """
    args = function.args
    return [*args.posonlyargs, *args.args, *args.kwonlyargs]
