"""Forward taint/dataflow engine over the project call graph.

The engine answers one question per :class:`TaintSpec`: can a value
produced by a *source* reach a *sink* without passing through a
*sanitizer* — following assignments, attribute access, container
literals, calls and returns, across function boundaries?

Values
------
A taint value (:class:`Val`) is a set of labels plus optional per-field
taint.  Labels are either ``"T"`` (derived from a source) or parameter
placeholders ``"p0"`` / ``"p0.attr"`` (derived from the enclosing
function's 0th parameter, or from its ``attr`` field).  Field taint is
what keeps the analysis precise on the repo's message dataclasses: a
``Pair(leaf_offset=clean, encrypted=clean, dummy=tainted)`` constructor
produces a *struct* whose ``encrypted`` field stays clean, so shipping
``pair.encrypted`` to the cloud does not fire while shipping
``pair.dummy`` would.

Summaries
---------
Each function gets a :class:`Summary`: the taint of its return value
(expressed over ``T``/param labels, structure preserved one level) and
the sinks its parameters reach internally.  Summaries are computed in
callee-first (Tarjan SCC) order and iterated to a fixed point, so taint
crosses any number of call boundaries; recursion converges because the
label alphabet is finite and field depth is capped.

Soundness limits (documented in docs/STATIC_ANALYSIS.md)
--------------------------------------------------------
The engine under-approximates: taint dies at queue/channel hops, at
``self.X`` attributes assigned in one method and read in another, inside
lambda/nested-function bodies, and at calls it cannot resolve.  It never
guesses a flow it cannot see, which keeps false positives near zero at
the cost of documented false negatives.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.devtools.astutil import (
    annotation_names,
    assigned_names,
    dotted_name,
)
from repro.devtools.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    Project,
)
from repro.devtools.registry import ModuleInfo

#: Builtin calls through which taint flows from arguments to result.
_PROPAGATING_BUILTINS = frozenset(
    {
        "tuple", "list", "set", "frozenset", "dict", "bytes", "bytearray",
        "str", "repr", "sorted", "reversed", "zip", "enumerate", "min",
        "max", "next", "iter", "sum", "abs", "round", "format", "vars",
    }
)

#: Maximum struct nesting tracked before flattening to plain labels.
_MAX_FIELD_DEPTH = 3

#: Maximum ``p0.a`` label depth (segments after the parameter root).
_MAX_LABEL_FIELDS = 1


class Val:
    """One taint value: labels plus optional per-field structure."""

    __slots__ = ("labels", "fields")

    def __init__(
        self,
        labels: frozenset[str] = frozenset(),
        fields: Mapping[str, "Val"] | None = None,
    ):
        self.labels = labels
        self.fields: dict[str, Val] = dict(fields) if fields else {}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Val)
            and self.labels == other.labels
            and self.fields == other.fields
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.labels, tuple(sorted(self.fields))))

    def __repr__(self) -> str:
        parts = sorted(self.labels)
        if self.fields:
            parts.append(
                "{" + ", ".join(
                    f"{k}: {v!r}" for k, v in sorted(self.fields.items())
                ) + "}"
            )
        return f"Val({', '.join(parts)})"

    @property
    def is_empty(self) -> bool:
        return not self.labels and not self.fields


EMPTY = Val()


def deep_labels(val: Val) -> frozenset[str]:
    """Every label in ``val`` and its nested fields."""
    labels = val.labels
    for sub in val.fields.values():
        labels = labels | deep_labels(sub)
    return labels


def union(*vals: Val) -> Val:
    """Field-wise union of taint values."""
    vals = tuple(v for v in vals if v is not None and not v.is_empty)
    if not vals:
        return EMPTY
    if len(vals) == 1:
        return vals[0]
    labels: frozenset[str] = frozenset()
    fields: dict[str, Val] = {}
    for val in vals:
        labels |= val.labels
        for name, sub in val.fields.items():
            fields[name] = union(fields[name], sub) if name in fields else sub
    return Val(labels, fields)


def flatten(val: Val) -> Val:
    """Collapse structure into plain labels."""
    if not val.fields:
        return val
    return Val(deep_labels(val))


def _clamp_depth(val: Val, depth: int = 0) -> Val:
    if not val.fields:
        return val
    if depth >= _MAX_FIELD_DEPTH:
        return flatten(val)
    return Val(
        val.labels,
        {k: _clamp_depth(v, depth + 1) for k, v in val.fields.items()},
    )


def _derive_label(label: str, attr: str) -> str:
    """Label for ``<value with label>.attr``."""
    if label == "T":
        return "T"
    root, *rest = label.split(".")
    if len(rest) >= _MAX_LABEL_FIELDS:
        return label  # depth cap: stay conservative at the param root
    return f"{label}.{attr}"


def field_of(val: Val, attr: str) -> Val:
    """Taint of ``value.attr``."""
    if attr in val.fields:
        return val.fields[attr]
    if not val.labels:
        return EMPTY
    return Val(frozenset(_derive_label(label, attr) for label in val.labels))


def with_field(val: Val, attr: str, sub: Val) -> Val:
    fields = dict(val.fields)
    fields[attr] = sub
    return _clamp_depth(Val(val.labels, fields))


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SinkSpec:
    """One family of sink calls.

    ``methods`` match attribute calls whose receiver's final name
    matches ``receiver_re`` (``None`` accepts any receiver); ``names``
    match bare-name calls.
    """

    description: str
    methods: frozenset[str] = frozenset()
    receiver_re: re.Pattern | None = None
    names: frozenset[str] = frozenset()

    def matches(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr not in self.methods:
                return False
            if self.receiver_re is None:
                return True
            receiver = dotted_name(func.value)
            if receiver is None:
                return False
            return bool(self.receiver_re.search(receiver.rsplit(".", 1)[-1]))
        if isinstance(func, ast.Name):
            return func.id in self.names
        return False


@dataclass(frozen=True)
class TaintSpec:
    """Sources, sinks and sanitizers of one dataflow property."""

    label: str
    #: Call matchers whose *result* is tainted: ``"parse_raw_line"``
    #: (bare/dotted-tail name) or ``".decrypt"`` (any-receiver method).
    source_calls: frozenset[str] = frozenset()
    #: Parameter annotations that taint the parameter at entry.
    source_param_annotations: frozenset[str] = frozenset()
    #: Attribute names whose *read* is a source on any base.
    source_attrs: frozenset[str] = frozenset()
    sinks: tuple[SinkSpec, ...] = ()
    #: Callee-name prefixes whose result is clean (declassifiers).
    sanitizers: tuple[str, ...] = ()

    def is_source_call(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            return f".{func.attr}" in self.source_calls
        name = dotted_name(func)
        if name is None:
            return False
        return name.rsplit(".", 1)[-1] in self.source_calls

    def is_sanitizer(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            tail = func.attr
        else:
            name = dotted_name(func)
            if name is None:
                return False
            tail = name.rsplit(".", 1)[-1]
        # ``_encrypt`` helpers are sanitizers too: match past the
        # private-name underscore prefix.
        tail = tail.lstrip("_")
        return any(tail.startswith(prefix) for prefix in self.sanitizers)


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SinkHit:
    """A taint label reaching one sink call."""

    label: str
    module: ModuleInfo
    node: ast.AST
    sink: str
    #: Human-readable hops the taint crossed (innermost last).
    trace: tuple[str, ...] = ()

    def key(self):
        return (
            self.label,
            self.module.display_path,
            getattr(self.node, "lineno", 0),
            getattr(self.node, "col_offset", 0),
            self.sink,
            self.trace,
        )


@dataclass
class Summary:
    """Interprocedural behaviour of one function."""

    returns: Val = field(default_factory=lambda: EMPTY)
    #: Sinks reached by parameter labels inside this function.
    param_hits: tuple[SinkHit, ...] = ()

    def signature(self):
        return (repr(self.returns), frozenset(h.key() for h in self.param_hits))


@dataclass
class CallEval:
    """Evaluated argument taint of one call site."""

    args: list[Val]
    keywords: dict[str, Val]

    def argument(self, position: int, keyword: str | None) -> Val:
        if keyword is not None:
            return self.keywords.get(keyword, EMPTY)
        if 0 <= position < len(self.args):
            return self.args[position]
        return EMPTY


@dataclass
class FunctionResult:
    summary: Summary
    #: Fully-resolved hits (source taint reached a sink) found here.
    hits: list[SinkHit]
    #: id(ast.Call) → evaluated argument taint, for checker queries.
    call_evals: dict[int, CallEval]


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class TaintEngine:
    """Runs one :class:`TaintSpec` over a whole :class:`Project`."""

    def __init__(
        self,
        project: Project,
        graph: CallGraph,
        spec: TaintSpec,
        max_rounds: int = 4,
    ):
        self.project = project
        self.graph = graph
        self.spec = spec
        self.max_rounds = max_rounds
        self.summaries: dict[str, Summary] = {}
        self.results: dict[str, FunctionResult] = {}

    def run(self) -> None:
        order = self.graph.callee_first_order()
        for _ in range(self.max_rounds):
            changed = False
            for info in order:
                result = _FunctionAnalysis(self, info).run()
                previous = self.summaries.get(info.qualname)
                if (
                    previous is None
                    or previous.signature() != result.summary.signature()
                ):
                    changed = True
                self.summaries[info.qualname] = result.summary
                self.results[info.qualname] = result
            if not changed:
                break

    @property
    def hits(self) -> list[SinkHit]:
        """Every resolved source-to-sink flow, deduplicated."""
        seen: dict[tuple, SinkHit] = {}
        for result in self.results.values():
            for hit in result.hits:
                seen.setdefault(hit.key(), hit)
        return sorted(
            seen.values(),
            key=lambda h: (
                h.module.display_path,
                getattr(h.node, "lineno", 0),
                getattr(h.node, "col_offset", 0),
            ),
        )

    def result_for(self, info: FunctionInfo) -> FunctionResult | None:
        return self.results.get(info.qualname)


class _FunctionAnalysis:
    """One intraprocedural pass over one function."""

    def __init__(self, engine: TaintEngine, info: FunctionInfo):
        self.engine = engine
        self.spec = engine.spec
        self.info = info
        self.env: dict[str, Val] = {}
        self.returns: Val = EMPTY
        self.param_hits: dict[tuple, SinkHit] = {}
        self.hits: dict[tuple, SinkHit] = {}
        self.call_evals: dict[int, CallEval] = {}

    def run(self) -> FunctionResult:
        spec = self.spec
        for index, param in enumerate(self.info.params):
            labels = {f"p{index}"}
            if annotation_names(param.annotation) & spec.source_param_annotations:
                labels.add("T")
            self.env[param.arg] = Val(frozenset(labels))
        self.env.setdefault("self", EMPTY)
        self.exec_block(self.info.node.body)
        return FunctionResult(
            summary=Summary(
                returns=_clamp_depth(self.returns),
                param_hits=tuple(self.param_hits.values()),
            ),
            hits=list(self.hits.values()),
            call_evals=self.call_evals,
        )

    # -- statements --------------------------------------------------------

    def exec_block(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def _merge_branches(self, *branch_envs: dict[str, Val]) -> None:
        merged: dict[str, Val] = {}
        for env in branch_envs:
            for name, val in env.items():
                merged[name] = (
                    union(merged[name], val) if name in merged else val
                )
        self.env = merged

    def _exec_on_copy(self, stmts: Iterable[ast.stmt]) -> dict[str, Val]:
        saved = self.env
        self.env = dict(saved)
        self.exec_block(stmts)
        result = self.env
        self.env = saved
        return result

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self.bind(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            value = union(self.eval(stmt.value), self.load(stmt.target))
            self.bind(stmt.target, value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns = union(self.returns, self.eval(stmt.value))
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            body = self._exec_on_copy(stmt.body)
            orelse = self._exec_on_copy(stmt.orelse)
            self._merge_branches(body, orelse)
        elif isinstance(stmt, (ast.While,)):
            self.eval(stmt.test)
            first = self._exec_on_copy(stmt.body)
            self._merge_branches(self.env, first)
            second = self._exec_on_copy(stmt.body)
            self._merge_branches(self.env, second)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self.eval(stmt.iter)
            self.bind(stmt.target, iterable)
            first = self._exec_on_copy(stmt.body)
            self._merge_branches(self.env, first)
            second = self._exec_on_copy(stmt.body)
            self._merge_branches(self.env, second)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                context = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, context)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                if handler.name is not None:
                    self.env[handler.name] = EMPTY
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject)
            branches = [self._exec_on_copy(case.body) for case in stmt.cases]
            if branches:
                self._merge_branches(self.env, *branches)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
            if stmt.msg is not None:
                self.eval(stmt.msg)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # Nested def/class bodies run later, in another frame: skip.
        # (Import/Pass/Break/Continue/Global/Nonlocal carry no data flow.)

    def bind(self, target: ast.expr, value: Val) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Starred):
            self.bind(target.value, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for index, element in enumerate(target.elts):
                self.bind(element, field_of(value, str(index)))
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name):
                current = self.env.get(base.id, EMPTY)
                self.env[base.id] = with_field(current, target.attr, value)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                current = self.env.get(base.id, EMPTY)
                self.env[base.id] = union(current, Val(deep_labels(value)))

    def load(self, target: ast.expr) -> Val:
        """Current taint of an assignment target (for ``+=``)."""
        if isinstance(target, ast.Name):
            return self.env.get(target.id, EMPTY)
        if isinstance(target, ast.Attribute):
            return field_of(self.eval(target.value), target.attr)
        if isinstance(target, ast.Subscript):
            return self.eval(target)
        return EMPTY

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr | None) -> Val:
        if node is None:
            return EMPTY
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # Fallback: evaluate children (sink detection) and stay clean.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return EMPTY

    def _eval_Name(self, node: ast.Name) -> Val:
        return self.env.get(node.id, EMPTY)

    def _eval_Constant(self, node: ast.Constant) -> Val:
        return EMPTY

    def _eval_Attribute(self, node: ast.Attribute) -> Val:
        base = self.eval(node.value)
        value = field_of(base, node.attr)
        if node.attr in self.spec.source_attrs:
            value = union(value, Val(frozenset({"T"})))
        return value

    def _eval_BinOp(self, node: ast.BinOp) -> Val:
        return Val(
            deep_labels(self.eval(node.left))
            | deep_labels(self.eval(node.right))
        )

    def _eval_BoolOp(self, node: ast.BoolOp) -> Val:
        return union(*(self.eval(value) for value in node.values))

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> Val:
        return self.eval(node.operand)

    def _eval_Compare(self, node: ast.Compare) -> Val:
        self.eval(node.left)
        for comparator in node.comparators:
            self.eval(comparator)
        return EMPTY

    def _eval_Subscript(self, node: ast.Subscript) -> Val:
        base = self.eval(node.value)
        index = node.slice
        self.eval(index)
        if isinstance(index, ast.Constant) and isinstance(
            index.value, (int, str)
        ):
            return field_of(base, str(index.value))
        return Val(deep_labels(base))

    def _eval_Tuple(self, node: ast.Tuple) -> Val:
        fields = {
            str(i): self.eval(element) for i, element in enumerate(node.elts)
        }
        return _clamp_depth(Val(frozenset(), fields))

    def _eval_List(self, node: ast.List) -> Val:
        return union(*(self.eval(element) for element in node.elts))

    _eval_Set = _eval_List

    def _eval_Dict(self, node: ast.Dict) -> Val:
        labels: frozenset[str] = frozenset()
        for key in node.keys:
            if key is not None:
                labels |= deep_labels(self.eval(key))
        for value in node.values:
            labels |= deep_labels(self.eval(value))
        return Val(labels)

    def _eval_JoinedStr(self, node: ast.JoinedStr) -> Val:
        labels: frozenset[str] = frozenset()
        for value in node.values:
            labels |= deep_labels(self.eval(value))
        return Val(labels)

    def _eval_FormattedValue(self, node: ast.FormattedValue) -> Val:
        return self.eval(node.value)

    def _eval_IfExp(self, node: ast.IfExp) -> Val:
        self.eval(node.test)
        return union(self.eval(node.body), self.eval(node.orelse))

    def _eval_Starred(self, node: ast.Starred) -> Val:
        return self.eval(node.value)

    def _eval_Await(self, node: ast.Await) -> Val:
        return self.eval(node.value)

    def _eval_Yield(self, node: ast.Yield) -> Val:
        if node.value is not None:
            value = self.eval(node.value)
            self.returns = union(self.returns, value)
        return EMPTY

    def _eval_YieldFrom(self, node: ast.YieldFrom) -> Val:
        value = self.eval(node.value)
        self.returns = union(self.returns, value)
        return EMPTY

    def _eval_NamedExpr(self, node: ast.NamedExpr) -> Val:
        value = self.eval(node.value)
        self.bind(node.target, value)
        return value

    def _eval_Lambda(self, node: ast.Lambda) -> Val:
        # The body runs in another frame, later; analysing it here would
        # mix frames.  Documented false-negative.
        return EMPTY

    def _eval_comprehension(self, node) -> Val:
        saved = self.env
        self.env = dict(saved)
        try:
            for generator in node.generators:
                iterable = self.eval(generator.iter)
                self.bind(generator.target, iterable)
                for condition in generator.ifs:
                    self.eval(condition)
            if isinstance(node, ast.DictComp):
                return Val(
                    deep_labels(self.eval(node.key))
                    | deep_labels(self.eval(node.value))
                )
            return union(self.eval(node.elt))
        finally:
            self.env = saved

    _eval_ListComp = _eval_comprehension
    _eval_SetComp = _eval_comprehension
    _eval_GeneratorExp = _eval_comprehension
    _eval_DictComp = _eval_comprehension

    # -- calls -------------------------------------------------------------

    def _eval_Call(self, node: ast.Call) -> Val:
        spec = self.spec
        arg_vals = [self.eval(arg) for arg in node.args]
        kw_vals = {
            kw.arg: self.eval(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs splat
                self.eval(kw.value)
        self.call_evals[id(node)] = CallEval(args=arg_vals, keywords=kw_vals)

        receiver_val = EMPTY
        if isinstance(node.func, ast.Attribute):
            receiver_val = self.eval(node.func.value)
        elif not isinstance(node.func, ast.Name):
            self.eval(node.func)  # computed callee, e.g. factories[k](...)

        # 1. Sinks fire on tainted arguments regardless of resolution.
        self._check_sinks(node, arg_vals, kw_vals)

        # 2. Sanitizers produce clean results.
        if spec.is_sanitizer(node):
            return EMPTY

        # 3. Resolved project callees: apply their summaries.
        targets = self.engine.project.resolve_call(node, self.info)
        result = EMPTY
        resolved = False
        for target in targets:
            if isinstance(target, ClassInfo):
                resolved = True
                result = union(
                    result,
                    self._construct(target, node, arg_vals, kw_vals),
                )
            elif isinstance(target, FunctionInfo):
                resolved = True
                result = union(
                    result,
                    self._apply_summary(target, node, arg_vals, kw_vals),
                )

        # 4. Sources taint the result.
        if spec.is_source_call(node):
            result = union(result, Val(frozenset({"T"})))
            resolved = True

        if resolved:
            return result

        # 5. Unresolved calls: propagate conservatively through builtins
        #    and through methods of tainted receivers; otherwise clean.
        if isinstance(node.func, ast.Name):
            if node.func.id in _PROPAGATING_BUILTINS:
                return union(
                    Val(
                        frozenset().union(
                            *(deep_labels(v) for v in arg_vals),
                            *(deep_labels(v) for v in kw_vals.values()),
                        )
                    )
                )
            return EMPTY
        if isinstance(node.func, ast.Attribute):
            labels = deep_labels(receiver_val)
            for val in arg_vals:
                labels |= deep_labels(val)
            for val in kw_vals.values():
                labels |= deep_labels(val)
            return Val(labels)
        return EMPTY

    def _construct(
        self,
        cls: ClassInfo,
        node: ast.Call,
        arg_vals: list[Val],
        kw_vals: dict[str, Val],
    ) -> Val:
        """A project-class constructor captures its arguments as fields."""
        names = cls.constructor_fields()
        fields: dict[str, Val] = {}
        for index, val in enumerate(arg_vals):
            if val.is_empty:
                continue
            name = names[index] if index < len(names) else f"arg{index}"
            fields[name] = union(fields.get(name), val)
        for name, val in kw_vals.items():
            if not val.is_empty:
                fields[name] = union(fields.get(name), val)
        init = cls.init
        if init is not None:
            # An explicit __init__ may also sink its arguments.
            self._apply_summary(init, node, arg_vals, kw_vals)
        if not fields:
            return EMPTY
        return _clamp_depth(Val(frozenset(), fields))

    def _apply_summary(
        self,
        callee: FunctionInfo,
        node: ast.Call,
        arg_vals: list[Val],
        kw_vals: dict[str, Val],
    ) -> Val:
        summary = self.engine.summaries.get(callee.qualname)
        if summary is None:
            return EMPTY
        params = callee.params
        by_index: dict[int, Val] = {}
        for position, val in enumerate(arg_vals):
            by_index[position] = val
        for name, val in kw_vals.items():
            index = callee.param_index(name)
            if index is not None:
                by_index[index] = union(by_index.get(index), val)

        def resolve_label(label: str) -> frozenset[str]:
            if label == "T":
                return frozenset({"T"})
            root, _, attr = label.partition(".")
            try:
                index = int(root[1:])
            except ValueError:
                return frozenset()
            arg = by_index.get(index, EMPTY)
            if attr:
                arg = field_of(arg, attr)
            return deep_labels(arg)

        # Parameter taint reaching sinks inside the callee.
        for hit in summary.param_hits:
            labels = resolve_label(hit.label)
            trace = (f"{callee.name}()",) + hit.trace
            for label in labels:
                self._record_hit(
                    SinkHit(
                        label=label,
                        module=self.info.module,
                        node=node,
                        sink=hit.sink,
                        trace=trace,
                    )
                )

        def substitute(val: Val) -> Val:
            labels: frozenset[str] = frozenset()
            for label in val.labels:
                labels |= resolve_label(label)
            return Val(
                labels,
                {name: substitute(sub) for name, sub in val.fields.items()},
            )

        result = substitute(summary.returns)
        return _clamp_depth(Val(result.labels, result.fields))

    def _check_sinks(
        self,
        node: ast.Call,
        arg_vals: list[Val],
        kw_vals: dict[str, Val],
    ) -> None:
        for sink in self.spec.sinks:
            if not sink.matches(node):
                continue
            tainted: frozenset[str] = frozenset()
            for val in arg_vals:
                tainted |= deep_labels(val)
            for val in kw_vals.values():
                tainted |= deep_labels(val)
            for label in tainted:
                self._record_hit(
                    SinkHit(
                        label=label,
                        module=self.info.module,
                        node=node,
                        sink=sink.description,
                        trace=(),
                    )
                )

    def _record_hit(self, hit: SinkHit) -> None:
        if hit.label == "T":
            self.hits[hit.key()] = hit
        elif hit.label.startswith("p"):
            self.param_hits[hit.key()] = hit
