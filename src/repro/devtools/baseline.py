"""Count-based baseline (suppression) file for fresque-lint.

Each non-comment line grandfathers a known finding::

    src/repro/index/perturb.py:FRQ-P301:1  # sanctioned noise-plan layer

The count is per (file, code).  During a lint run every diagnostic is
matched against the baseline: up to ``count`` findings of that code in
that file are swallowed; anything beyond the count is reported normally.
Entries whose file no longer produces the finding are *stale* — the CLI
warns so the entry gets deleted, but stale entries never fail the build.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.diagnostics import Diagnostic


@dataclass
class Baseline:
    """Parsed baseline file: (display path, code) → allowed count."""

    allowed: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Justification comments by entry, kept for reporting.
    comments: dict[tuple[str, str], str] = field(default_factory=dict)
    _seen: Counter = field(default_factory=Counter)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Parse ``path`` (missing file → empty baseline)."""
        baseline = cls()
        if not path.exists():
            return baseline
        for raw in path.read_text().splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            entry, _, comment = line.partition("#")
            parts = entry.strip().rsplit(":", 2)
            if len(parts) != 3 or not parts[2].isdigit():
                raise ValueError(f"malformed baseline entry: {raw!r}")
            file_path, code, count = parts[0], parts[1], int(parts[2])
            key = (file_path, code)
            baseline.allowed[key] = baseline.allowed.get(key, 0) + count
            if comment.strip():
                baseline.comments[key] = comment.strip()
        return baseline

    def absorbs(self, diagnostic: Diagnostic) -> bool:
        """Whether the baseline swallows ``diagnostic`` (stateful: each
        entry only absorbs up to its count)."""
        key = (diagnostic.path, diagnostic.code)
        if self._seen[key] < self.allowed.get(key, 0):
            self._seen[key] += 1
            return True
        return False

    def stale_entries(self) -> list[tuple[str, str, int, int]]:
        """Entries that absorbed fewer findings than budgeted, as
        ``(path, code, allowed, actually_seen)``."""
        return [
            (path, code, count, self._seen[(path, code)])
            for (path, code), count in sorted(self.allowed.items())
            if self._seen[(path, code)] < count
        ]


def render_baseline(diagnostics: list[Diagnostic]) -> str:
    """A fresh baseline file body covering ``diagnostics``."""
    counts: Counter = Counter(
        (diagnostic.path, diagnostic.code) for diagnostic in diagnostics
    )
    lines = [
        "# fresque-lint baseline: path:CODE:count  # justification",
        "# Regenerate with: python -m repro.devtools.lint --update-baseline src",
    ]
    for (path, code), count in sorted(counts.items()):
        lines.append(f"{path}:{code}:{count}  # TODO: justify or fix")
    return "\n".join(lines) + "\n"
