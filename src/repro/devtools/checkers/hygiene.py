"""Repo-tuned hygiene checkers (FRQ-H4xx).

* ``FRQ-H401`` — a bare ``except:`` (or ``except Exception: pass``)
  swallows the checker/merger invariant violations the tests rely on
  surfacing;
* ``FRQ-H402`` — mutable default arguments (shared across calls);
* ``FRQ-H403`` — nondeterminism in ``simulation/``: wall-clock reads and
  unseeded global ``random`` make the paper-figure reproductions
  non-replayable, defeating their purpose.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.astutil import call_name
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import Checker, ModuleInfo, register

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set)
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}
_WALLCLOCK_CALLS = {
    "time.time",
    "time.perf_counter",
    "time.monotonic",
    "datetime.now",
    "datetime.datetime.now",
}
#: Global (module-level, implicitly seeded) random functions.
_GLOBAL_RANDOM_CALLS = {
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.uniform",
    "random.gauss",
    "random.sample",
    "random.seed",
}


@register
class HygieneChecker(Checker):
    """Error-handling and determinism hygiene."""

    name = "hygiene"
    codes = {
        "FRQ-H401": "bare or swallowed exception handler",
        "FRQ-H402": "mutable default argument",
        "FRQ-H403": "nondeterministic call in simulation code",
    }

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        yield from self._check_handlers(module)
        yield from self._check_mutable_defaults(module)
        if module.in_package("simulation"):
            yield from self._check_determinism(module)

    # -- FRQ-H401 ----------------------------------------------------------

    def _check_handlers(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.diagnostic(
                    module,
                    node,
                    "FRQ-H401",
                    "bare except: catches KeyboardInterrupt and SystemExit "
                    "too — name the exception types",
                )
                continue
            handler_type = (
                node.type.id if isinstance(node.type, ast.Name) else None
            )
            body_is_swallow = all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
                for stmt in node.body
            )
            if handler_type in ("Exception", "BaseException") and body_is_swallow:
                yield self.diagnostic(
                    module,
                    node,
                    "FRQ-H401",
                    f"except {handler_type}: pass silently swallows every "
                    f"failure — handle, log, or re-raise",
                )

    # -- FRQ-H402 ----------------------------------------------------------

    def _check_mutable_defaults(
        self, module: ModuleInfo
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                is_mutable = isinstance(default, _MUTABLE_LITERALS) or (
                    isinstance(default, ast.Call)
                    and call_name(default) in _MUTABLE_FACTORIES
                )
                if is_mutable:
                    yield self.diagnostic(
                        module,
                        default,
                        "FRQ-H402",
                        f"mutable default in {node.name}() is shared across "
                        f"calls — default to None and construct inside",
                    )

    # -- FRQ-H403 ----------------------------------------------------------

    def _check_determinism(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _WALLCLOCK_CALLS:
                yield self.diagnostic(
                    module,
                    node,
                    "FRQ-H403",
                    f"{name}() makes the simulation non-replayable — take "
                    f"timestamps from the workload clock or a parameter",
                )
            elif name in _GLOBAL_RANDOM_CALLS:
                yield self.diagnostic(
                    module,
                    node,
                    "FRQ-H403",
                    f"{name}() uses the global unseeded RNG — draw from a "
                    f"seeded random.Random instance",
                )
            elif name in ("random.Random", "Random") and not (
                node.args or node.keywords
            ):
                yield self.diagnostic(
                    module,
                    node,
                    "FRQ-H403",
                    "random.Random() without a seed is nondeterministic — "
                    "pass an explicit seed",
                )
