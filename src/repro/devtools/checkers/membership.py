"""Elastic-membership checkers (FRQ-E110x).

Elastic membership (docs/PROTOCOL.md) rests on two disciplines that are
easy to erode silently:

* every pair handler runs the membership-epoch staleness check before
  it processes anything — a handler that skips it happily ingests the
  output of a crashed node's previous incarnation *on top of* the crash
  redispatch, double-counting records in a way only the crash+rejoin
  chaos drill would catch; and
* the :class:`~repro.core.membership.Membership` object is the single
  owner of the dispatch rotation — a module that pokes the epoch, the
  join floors or the round-robin cursor directly desynchronises the
  fleet from the ``MembershipMsg`` stream the checking side trusts.

Machine-checked as:

* ``FRQ-E1101`` — a ``on_pair`` / ``on_pair_batch`` handler that never
  calls ``_admit_epoch``, or touches its message's ``.pairs`` before
  the first ``_admit_epoch`` call.  The epoch check must gate the
  handler, not annotate it.
* ``FRQ-E1102`` — an assignment to a ``_epoch``, ``_joined`` or
  ``_next_cn`` attribute outside :mod:`repro.core.membership`.  Epoch
  bumps, join floors and the dispatch cursor are membership state;
  mutating them elsewhere bypasses the versioning every staleness
  decision keys off.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.astutil import call_name, iter_functions
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import Checker, ModuleInfo, register

#: Entry points that feed pairs into randomer/checker state.
_PAIR_HANDLERS = ("on_pair", "on_pair_batch")

#: Membership state only :mod:`repro.core.membership` may assign.
_MEMBERSHIP_ATTRS = ("_epoch", "_joined", "_next_cn")


@register
class MembershipChecker(Checker):
    """Keep the epoch protocol gating every pair path."""

    name = "membership"
    codes = {
        "FRQ-E1101": "pair handler without a leading membership-epoch check",
        "FRQ-E1102": "membership state mutated outside core/membership.py",
    }

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        yield from self._check_epoch_gate(module)
        yield from self._check_state_ownership(module)

    # -- FRQ-E1101 ----------------------------------------------------------

    def _check_epoch_gate(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for function in iter_functions(module.tree):
            if function.name not in _PAIR_HANDLERS:
                continue
            admit_line = None
            pairs_line = None
            pairs_node = None
            for node in ast.walk(function):
                if isinstance(node, ast.Call):
                    name = call_name(node)
                    if name is not None and name.endswith("_admit_epoch"):
                        if admit_line is None or node.lineno < admit_line:
                            admit_line = node.lineno
                elif (
                    isinstance(node, ast.Attribute)
                    and node.attr == "pairs"
                    and (pairs_line is None or node.lineno < pairs_line)
                ):
                    pairs_line = node.lineno
                    pairs_node = node
            if admit_line is None:
                yield self.diagnostic(
                    module,
                    function,
                    "FRQ-E1101",
                    f"pair handler {function.name}() never calls "
                    "_admit_epoch — without the membership-epoch staleness "
                    "check it ingests a crashed incarnation's output on "
                    "top of the crash redispatch, double-counting records "
                    "(docs/PROTOCOL.md)",
                )
            elif pairs_line is not None and pairs_line < admit_line:
                yield self.diagnostic(
                    module,
                    pairs_node,
                    "FRQ-E1101",
                    f"pair handler {function.name}() touches .pairs before "
                    "its _admit_epoch call — the epoch check must gate the "
                    "handler, or stale pairs are processed before the "
                    "staleness decision is made",
                )

    # -- FRQ-E1102 ----------------------------------------------------------

    def _check_state_ownership(
        self, module: ModuleInfo
    ) -> Iterator[Diagnostic]:
        if module.is_module("core/membership.py"):
            return  # the Membership object is the one legitimate owner
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue  # bare annotation, no mutation
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _MEMBERSHIP_ATTRS
                ):
                    yield self.diagnostic(
                        module,
                        node,
                        "FRQ-E1102",
                        f"assignment to .{target.attr} outside "
                        "repro.core.membership — epoch bumps, join floors "
                        "and the dispatch cursor are Membership state; "
                        "mutate them through admit/retire/mark_down/rejoin "
                        "so every transition is versioned",
                    )
