"""Telemetry-discipline checkers (FRQ-T5xx).

* ``FRQ-T501`` — raw wall-clock reads (``time.time``, ``perf_counter``,
  ``time.monotonic``, ``datetime.now``) in the pipeline packages
  (``core``, ``cloud``, ``runtime``).  All timestamps there must come
  from the telemetry clock (``repro.telemetry.clock.WALL_CLOCK`` or the
  per-run :class:`~repro.telemetry.Telemetry` facade) so instrumented
  runs can swap in the simulated clock and so spans and histograms share
  one time base.  ``time.sleep`` is a delay, not a clock read, and is
  not flagged.
* ``FRQ-T502`` — ``print()`` in library code.  Operational output
  belongs in telemetry (counters, spans, exporters), not on stdout;
  stray prints corrupt the report CLI's and the benchmarks' machine
  output.  CLI entry points (``cli.py``, ``__main__.py``, the report
  CLI) and devtools are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.astutil import call_name
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import Checker, ModuleInfo, register

#: Wall-clock reads that bypass the telemetry clock.
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.now",
    "datetime.datetime.now",
    "datetime.utcnow",
    "datetime.datetime.utcnow",
}

#: Modules that legitimately talk to a human on stdout.
_CLI_MODULES = {"cli.py", "__main__.py", "report.py"}


@register
class TelemetryChecker(Checker):
    """Keep the pipeline on the telemetry clock and off stdout."""

    name = "telemetry"
    codes = {
        "FRQ-T501": "raw wall-clock read bypassing the telemetry clock",
        "FRQ-T502": "print() in library code",
    }

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        if module.in_package("core", "cloud", "runtime"):
            yield from self._check_clock_reads(module)
        yield from self._check_prints(module)

    # -- FRQ-T501 ----------------------------------------------------------

    def _check_clock_reads(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _CLOCK_CALLS:
                yield self.diagnostic(
                    module,
                    node,
                    "FRQ-T501",
                    f"{name}() bypasses the telemetry clock — read "
                    f"WALL_CLOCK.now() (or telemetry.now()) so simulated "
                    f"and wall time stay swappable",
                )

    # -- FRQ-T502 ----------------------------------------------------------

    def _check_prints(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        parts = module.package_parts
        if not parts or parts[-1] in _CLI_MODULES:
            return
        if module.in_package("devtools"):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and call_name(node) == "print"
            ):
                yield self.diagnostic(
                    module,
                    node,
                    "FRQ-T502",
                    "print() in library code — emit a telemetry metric or "
                    "return the text; stdout belongs to the CLIs",
                )
