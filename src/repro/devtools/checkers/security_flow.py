"""Security dataflow checkers (FRQ-S9xx) — whole-program.

FRESQUE's security model (paper Section 3.2) is a *reachability* claim:
no plaintext record and no key material ever reaches the cloud, the
wire, durable cloud storage, or a telemetry channel — only AES-CBC
ciphertexts (plus the deliberately-cleartext leaf offsets) do.  The
per-module crypto checkers (FRQ-X2xx) pin local hygiene; these two
rules pin the end-to-end flow, following values through assignments,
message dataclasses, helper calls and returns via the
:mod:`repro.devtools.dataflow` engine:

* ``FRQ-S901`` — a plaintext :class:`~repro.records.record.Record`
  value (parsed, decrypted, serialized or dummy-generated) reaches a
  wire/storage/telemetry sink without passing through an ``encrypt*``
  sanitizer — including across any number of function boundaries;
* ``FRQ-S902`` — :class:`~repro.crypto.keys.KeyStore` key material (a
  derived subkey or the master key) reaches any of the same sinks.

``.leaf_offset(...)`` results are declassified: the paper ships
``<leaf offset, e-record>`` pairs with the offset in the clear by
design (Section 5.1(a)).
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.devtools.callgraph import CallGraph, Project
from repro.devtools.dataflow import SinkSpec, TaintEngine, TaintSpec
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import ProjectChecker, register

#: Receivers that are a transport socket.
_SOCKET_RE = re.compile(
    r"(sock|socket|conn|connection|server|client|peer)", re.IGNORECASE
)

#: Receivers that are the cloud or its durable storage.  ``bucket`` is
#: deliberately absent: in this repo a *bucket* is a local per-leaf
#: histogram list, never a storage service.
_CLOUD_RE = re.compile(r"(cloud|store|storage|blob)", re.IGNORECASE)

#: Receivers that are a telemetry channel.
_TELEMETRY_RE = re.compile(
    r"(telemetry|_tel\b|tel$|span|tracer|exporter|metric|counter|gauge|"
    r"histogram)",
    re.IGNORECASE,
)

_SINKS = (
    SinkSpec(
        description="a socket send",
        methods=frozenset({"send", "sendall", "sendto"}),
        receiver_re=_SOCKET_RE,
    ),
    SinkSpec(
        description="cloud storage",
        methods=frozenset(
            {
                "write", "put", "upload", "insert",
                "receive_pair", "receive_pairs",
            }
        ),
        receiver_re=_CLOUD_RE,
    ),
    SinkSpec(
        description="a telemetry channel",
        methods=frozenset(
            {"annotate", "observe", "record", "emit", "export", "log", "set"}
        ),
        receiver_re=_TELEMETRY_RE,
    ),
)

#: Declassifiers: encryption, plus the protocol's deliberate leaks.
_SANITIZERS = ("encrypt", "cbc_encrypt", "leaf_offset")

PLAINTEXT_SPEC = TaintSpec(
    label="plaintext",
    source_calls=frozenset(
        {
            "parse_raw_line",
            "serialize_record",
            "make_dummy",
            "Record",
            ".decrypt",
            ".decrypt_batch",
            ".decrypt_record",
        }
    ),
    source_param_annotations=frozenset({"Record", "RawData", "RawBatch"}),
    sinks=_SINKS,
    sanitizers=_SANITIZERS,
)

KEY_MATERIAL_SPEC = TaintSpec(
    label="key material",
    source_calls=frozenset({".derive", ".record_key", ".fresh_key"}),
    source_attrs=frozenset({"_master_key"}),
    sinks=_SINKS,
    # Encrypting *with* a key is fine; the ciphertext is clean.  There
    # is no declassifier for the key itself.
    sanitizers=("encrypt", "cbc_encrypt"),
)


def _render_trace(trace: tuple[str, ...]) -> str:
    return f" via {' -> '.join(trace)}" if trace else ""


@register
class SecurityFlowChecker(ProjectChecker):
    """Plaintext and key material must never reach an untrusted sink."""

    name = "security-dataflow"
    codes = {
        "FRQ-S901": (
            "plaintext record data reaches a wire/storage/telemetry sink "
            "without encryption"
        ),
        "FRQ-S902": (
            "key material reaches a wire/storage/telemetry sink"
        ),
    }

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        graph = CallGraph(project)
        for code, spec, what in (
            ("FRQ-S901", PLAINTEXT_SPEC, "plaintext record data"),
            ("FRQ-S902", KEY_MATERIAL_SPEC, "key material"),
        ):
            engine = TaintEngine(project, graph, spec)
            engine.run()
            for hit in engine.hits:
                yield self.diagnostic(
                    hit.module,
                    hit.node,
                    code,
                    f"{what} reaches {hit.sink}"
                    f"{_render_trace(hit.trace)} without passing through "
                    f"an encrypt* sanitizer — the cloud-facing channel "
                    f"must only ever carry ciphertext",
                )
