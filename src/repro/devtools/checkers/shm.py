"""Shared-memory hygiene checkers (FRQ-M9xx).

The shared-memory runtime concentrates every raw segment access in
:mod:`repro.runtime.shm.ring`: the SPSC ring's correctness rests on its
header-field ordering discipline, and a stray write from anywhere else
would corrupt a ring invisibly.  Leaked segments are the other failure
mode — a ``SharedMemory`` that is never closed keeps its mapping (and
file descriptor) alive, and a created segment that is never unlinked
outlives the process in ``/dev/shm``.

* ``FRQ-M901`` — a raw shared-memory buffer (``….buf``) is written
  outside ``runtime/shm/ring.py``;
* ``FRQ-M902`` — a module constructs ``SharedMemory`` but never calls
  ``.close()``;
* ``FRQ-M903`` — a module creates a segment (``create=True``) but never
  calls ``.unlink()``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.devtools.astutil import call_name, dotted_name, keyword_arg, self_attr
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import Checker, ModuleInfo, register

#: The one module allowed to touch raw segment bytes.
_RAW_BUF_MODULE = "runtime/shm/ring.py"

#: Receivers whose ``.buf`` attribute is a shared-memory mapping.
_SHM_NAME_RE = re.compile(r"(shm|shared|segment)", re.IGNORECASE)

_SHM_FACTORIES = {
    "SharedMemory",
    "shared_memory.SharedMemory",
    "multiprocessing.shared_memory.SharedMemory",
}


def _shm_buf_receiver(node: ast.expr) -> str | None:
    """The receiver name if ``node`` is ``<shm-like>.buf``, else None."""
    if not (isinstance(node, ast.Attribute) and node.attr == "buf"):
        return None
    receiver = self_attr(node.value)
    if receiver is None:
        receiver = dotted_name(node.value)
    if receiver is not None and _SHM_NAME_RE.search(receiver):
        return receiver
    return None


def _buf_write_targets(node: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    """Raw-buffer write sites in a statement: subscript stores into
    ``….buf`` and ``pack_into``-style calls taking ``….buf`` first."""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript):
                receiver = _shm_buf_receiver(target.value)
                if receiver is not None:
                    yield node, receiver
    if isinstance(node, ast.Call):
        name = (call_name(node) or "").rsplit(".", 1)[-1]
        if name == "pack_into":
            for arg in node.args:
                receiver = _shm_buf_receiver(arg)
                if receiver is not None:
                    yield node, receiver


@register
class SharedMemoryChecker(Checker):
    """Raw-buffer containment and segment lifecycle defects."""

    name = "shm"
    codes = {
        "FRQ-M901": (
            "raw shared-memory buffer written outside runtime/shm/ring.py"
        ),
        "FRQ-M902": "SharedMemory constructed but never close()d",
        "FRQ-M903": "SharedMemory created (create=True) but never unlink()ed",
    }

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        yield from self._check_raw_buf_writes(module)
        yield from self._check_lifecycle(module)

    # -- FRQ-M901 ----------------------------------------------------------

    def _check_raw_buf_writes(
        self, module: ModuleInfo
    ) -> Iterator[Diagnostic]:
        if module.is_module(_RAW_BUF_MODULE):
            return
        for node in ast.walk(module.tree):
            for site, receiver in _buf_write_targets(node):
                yield self.diagnostic(
                    module,
                    site,
                    "FRQ-M901",
                    f"raw write into {receiver}.buf — all segment byte "
                    f"layout belongs to RingBuffer/StatsBlock in "
                    f"{_RAW_BUF_MODULE}; go through their APIs",
                )

    # -- FRQ-M902 / FRQ-M903 ----------------------------------------------

    def _check_lifecycle(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        constructions: list[ast.Call] = []
        creations: list[ast.Call] = []
        closed = unlinked = False
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _SHM_FACTORIES:
                constructions.append(node)
                create = keyword_arg(node, "create")
                if (
                    isinstance(create, ast.Constant)
                    and create.value is True
                ):
                    creations.append(node)
            elif isinstance(node.func, ast.Attribute):
                if node.func.attr == "close":
                    closed = True
                elif node.func.attr == "unlink":
                    unlinked = True
        if constructions and not closed:
            yield self.diagnostic(
                module,
                constructions[0],
                "FRQ-M902",
                "this module maps a SharedMemory segment but never calls "
                ".close() — the mapping (and fd) leaks for the process "
                "lifetime",
            )
        if creations and not unlinked:
            yield self.diagnostic(
                module,
                creations[0],
                "FRQ-M903",
                "this module creates a SharedMemory segment (create=True) "
                "but never calls .unlink() — the segment outlives the "
                "process in /dev/shm",
            )
