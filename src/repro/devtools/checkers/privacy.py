"""Privacy-budget checkers (FRQ-P3xx).

The index published per publication carries Laplace noise whose ε is
split across tree levels by the accountant (paper Section 5: the privacy
budget is consumed per level so the whole index satisfies ε-DP).  The
guarantee is global: *every* noise draw must be charged to the
accountant in :mod:`repro.privacy`.  A stray ``mechanism.sample()`` or a
hand-typed epsilon literal elsewhere silently spends budget the
accountant never sees, so the published ε is wrong.

* ``FRQ-P301`` — Laplace sampling performed outside ``privacy/``;
* ``FRQ-P302`` — a numeric epsilon literal outside ``privacy/`` and the
  config defaults;
* ``FRQ-P303`` — ``draw_noise_plan`` called with a literal epsilon
  instead of the configured budget.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.devtools.astutil import call_name, dotted_name
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import Checker, ModuleInfo, register

_SAMPLING_METHODS = {"sample", "sample_integer", "sample_float"}
#: Receiver names that imply a Laplace mechanism even without taint.
_MECHANISM_NAME_RE = re.compile(r"(mechanism|laplace)", re.IGNORECASE)
_EPSILON_NAME_RE = re.compile(r"(^|_)(epsilon|eps)$", re.IGNORECASE)

#: Modules allowed to hold the repo's sanctioned epsilon defaults.
_EPSILON_DEFAULT_MODULES = ("core/config.py",)


def _numeric_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _numeric_literal(node.operand)
    return False


@register
class PrivacyBudgetChecker(Checker):
    """Noise draws and epsilon literals outside the accountant."""

    name = "privacy-budget"
    codes = {
        "FRQ-P301": "Laplace sampling outside privacy/ bypasses the accountant",
        "FRQ-P302": "numeric epsilon literal outside privacy/ and config",
        "FRQ-P303": "draw_noise_plan called with a literal epsilon",
    }

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        in_privacy = module.in_package("privacy")
        if not in_privacy:
            yield from self._check_sampling(module)
            if not module.is_module(*_EPSILON_DEFAULT_MODULES):
                yield from self._check_epsilon_literals(module)
        yield from self._check_noise_plan_literals(module)

    # -- FRQ-P301 ----------------------------------------------------------

    def _check_sampling(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        tainted = self._mechanism_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            receiver = node.func.value
            if method in _SAMPLING_METHODS:
                receiver_name = dotted_name(receiver)
                is_mechanism = (
                    (receiver_name is not None and receiver_name in tainted)
                    or (
                        receiver_name is not None
                        and _MECHANISM_NAME_RE.search(
                            receiver_name.rsplit(".", 1)[-1]
                        )
                    )
                    or (
                        isinstance(receiver, ast.Call)
                        and (call_name(receiver) or "").endswith(
                            "LaplaceMechanism"
                        )
                    )
                )
                if is_mechanism:
                    yield self.diagnostic(
                        module,
                        node,
                        "FRQ-P301",
                        f".{method}() draws Laplace noise outside privacy/ — "
                        f"route the draw through the accountant's noise plan "
                        f"so it is charged against the budget",
                    )
            elif method == "laplace":
                # numpy-style rng.laplace(loc, scale) — any direct use
                # outside privacy/ is an uncharged draw.
                yield self.diagnostic(
                    module,
                    node,
                    "FRQ-P301",
                    ".laplace() draws noise outside privacy/ — route the "
                    "draw through the accountant's noise plan",
                )

    @staticmethod
    def _mechanism_names(module: ModuleInfo) -> set[str]:
        """Names anywhere in the module assigned from LaplaceMechanism."""
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                callee = call_name(node.value) or ""
                if callee.endswith("LaplaceMechanism"):
                    for target in node.targets:
                        name = dotted_name(target)
                        if name is not None:
                            names.add(name)
        return names

    # -- FRQ-P302 ----------------------------------------------------------

    def _check_epsilon_literals(
        self, module: ModuleInfo
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if (
                        keyword.arg is not None
                        and _EPSILON_NAME_RE.search(keyword.arg)
                        and _numeric_literal(keyword.value)
                    ):
                        yield self.diagnostic(
                            module,
                            keyword.value,
                            "FRQ-P302",
                            f"literal {keyword.arg}= spends privacy budget "
                            f"the accountant never sees — thread the "
                            f"configured epsilon through instead",
                        )
                callee = call_name(node) or ""
                if (
                    callee.endswith("LaplaceMechanism")
                    and node.args
                    and _numeric_literal(node.args[0])
                ):
                    yield self.diagnostic(
                        module,
                        node.args[0],
                        "FRQ-P302",
                        "LaplaceMechanism built with a literal epsilon — "
                        "thread the configured epsilon through instead",
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if value is None or not _numeric_literal(value):
                    continue
                for target in targets:
                    name = dotted_name(target)
                    if name is not None and _EPSILON_NAME_RE.search(
                        name.rsplit(".", 1)[-1]
                    ):
                        yield self.diagnostic(
                            module,
                            node,
                            "FRQ-P302",
                            f"{name} assigned a literal — epsilon belongs in "
                            f"FresqueConfig, not scattered through the code",
                        )

    # -- FRQ-P303 ----------------------------------------------------------

    def _check_noise_plan_literals(
        self, module: ModuleInfo
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node) or ""
            if not callee.rsplit(".", 1)[-1] == "draw_noise_plan":
                continue
            literal_args = [
                arg for arg in node.args if _numeric_literal(arg)
            ] + [
                keyword.value
                for keyword in node.keywords
                if keyword.arg is not None
                and _EPSILON_NAME_RE.search(keyword.arg)
                and _numeric_literal(keyword.value)
            ]
            for arg in literal_args:
                yield self.diagnostic(
                    module,
                    arg,
                    "FRQ-P303",
                    "draw_noise_plan called with a literal epsilon — pass "
                    "the configured budget so the per-level split stays "
                    "consistent with the published guarantee",
                )
