"""Runtime fault-tolerance checkers (FRQ-R6xx).

* ``FRQ-R601`` — raw socket dial (``socket.create_connection``) in the
  ``runtime`` package outside the :class:`~repro.runtime.tcp.Router`
  class.  The router owns reconnect-with-backoff and dead-socket
  eviction; a bare dial elsewhere bypasses both, so a transient peer
  restart becomes a hard failure.  One-shot probes and control
  channels suppress inline with a justification.
* ``FRQ-R602`` — an ``except`` clause catching ``OSError`` (or a
  connection error subclass) whose body only swallows — ``pass``,
  ``return``/``return None``, ``continue``.  Transport errors in the
  runtime must be recorded (``node.errors``, a raised
  ``PeerUnavailable``) or retried, never dropped: a silently dead
  reader thread is exactly the bug class that loses frames without a
  trace.  Handlers guarding pure cleanup (``close()``/``shutdown()``
  try bodies) are exempt — failing to close an already-dead socket is
  not an event worth recording.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.astutil import call_name
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import Checker, ModuleInfo, register

#: Dial calls that must live inside the retrying Router.
_DIAL_CALLS = {"socket.create_connection", "create_connection"}

#: Exception names whose silent swallowing hides transport failures.
_TRANSPORT_EXCEPTIONS = {
    "OSError",
    "IOError",
    "socket.error",
    "ConnectionError",
    "ConnectionResetError",
    "ConnectionRefusedError",
    "ConnectionAbortedError",
    "BrokenPipeError",
    "TimeoutError",
    "socket.timeout",
}

#: Call suffixes that make a try body pure socket cleanup.
_CLEANUP_SUFFIXES = ("close", "shutdown")


def _exception_names(handler: ast.ExceptHandler) -> set[str]:
    """Dotted names of the exception classes a handler catches."""
    node = handler.type
    if node is None:
        return {"BaseException"}
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    names = set()
    for element in elements:
        name = call_name(ast.Call(func=element, args=[], keywords=[]))
        if name is not None:
            names.add(name)
    return names


def _only_swallows(body: list[ast.stmt]) -> bool:
    """Whether a handler body drops the error without recording it."""
    for statement in body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if isinstance(statement, ast.Return):
            value = statement.value
            if value is None or (
                isinstance(value, ast.Constant) and value.value is None
            ):
                continue
            return False
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring / stray literal
        return False
    return True


def _is_cleanup_try(try_node: ast.Try) -> bool:
    """Whether the try body is nothing but ``close()``/``shutdown()``
    calls (tearing down an already-dead socket may itself raise)."""
    for statement in try_node.body:
        if not isinstance(statement, ast.Expr):
            return False
        call = statement.value
        if not isinstance(call, ast.Call):
            return False
        name = call_name(call)
        if name is None or not name.endswith(_CLEANUP_SUFFIXES):
            return False
    return True


@register
class RuntimeChecker(Checker):
    """Keep the runtime's transport failures visible and retried."""

    name = "runtime"
    codes = {
        "FRQ-R601": "raw socket dial outside the retrying Router",
        "FRQ-R602": "transport error swallowed without being recorded",
    }

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        if not module.in_package("runtime"):
            return
        yield from self._check_raw_dials(module)
        yield from self._check_swallowed_errors(module)

    # -- FRQ-R601 ----------------------------------------------------------

    def _check_raw_dials(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        router_calls: set[ast.Call] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == "Router":
                router_calls.update(
                    child
                    for child in ast.walk(node)
                    if isinstance(child, ast.Call)
                )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or node in router_calls:
                continue
            if call_name(node) in _DIAL_CALLS:
                yield self.diagnostic(
                    module,
                    node,
                    "FRQ-R601",
                    "raw socket dial bypasses the Router's reconnect/"
                    "backoff and dead-socket eviction — route sends "
                    "through Router.send()",
                )

    # -- FRQ-R602 ----------------------------------------------------------

    def _check_swallowed_errors(
        self, module: ModuleInfo
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            cleanup = _is_cleanup_try(node)
            for handler in node.handlers:
                if cleanup:
                    continue
                caught = _exception_names(handler)
                if not (caught & _TRANSPORT_EXCEPTIONS):
                    continue
                if _only_swallows(handler.body):
                    yield self.diagnostic(
                        module,
                        handler,
                        "FRQ-R602",
                        "transport error swallowed — record it "
                        "(node.errors / raise PeerUnavailable) or retry; "
                        "a silently dead reader loses frames without a "
                        "trace",
                    )
