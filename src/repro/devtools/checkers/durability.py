"""Durability-protocol checkers (FRQ-D7xx).

The crash-safety of :mod:`repro.durability` rests on three mechanical
disciplines that are easy to break in review-invisible ways; these rules
keep them machine-checked:

* ``FRQ-D701`` — in the ``durability`` package, a function that both
  appends to the write-ahead journal and feeds the pipeline must append
  *first*.  Dispatching a record before its journal append reopens the
  exact window the journal exists to close: a crash in between loses the
  record with no durable trace.
* ``FRQ-D702`` — a truncate-mode file write (``open(..., "w"/"wb")``,
  ``write_text``, ``write_bytes``) in the ``durability`` package inside a
  function that never calls both ``os.fsync`` and ``os.replace``.
  Durable state must go through the write-temp + fsync + atomic-rename
  path (:func:`~repro.durability.checkpoint.atomic_write_json`); a plain
  overwrite torn by a crash destroys the *old* good copy too.
* ``FRQ-D703`` — a ``.spend(...)`` call on a budget-like receiver
  outside the ``privacy`` package.  Every ε spend must flow through
  :meth:`~repro.privacy.accountant.PublicationAccountant.grant`, whose
  ledger intent is fsync'd before the in-memory budget moves — a direct
  spend elsewhere is invisible to crash recovery and can double-spend ε
  after a restart.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.astutil import call_name, iter_functions
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import Checker, ModuleInfo, register

#: Journal-append method names (suffix match on the dotted callee).
_JOURNAL_APPENDS = (
    ".append_open",
    ".append_raw",
    ".append_close",
    ".append_commit",
    ".append_intent",
)

#: Calls that mutate pipeline state (suffix match on the dotted callee).
_PIPELINE_CALLS = (
    "._pump",
    ".on_raw",
    ".start_publication",
    ".end_publication",
    ".due_dummies",
    ".redispatch",
)

#: Truncate-mode ``open()`` modes that clobber the previous contents.
_TRUNCATE_MODES = {"w", "wb", "w+", "wb+", "w+b"}

#: Path methods that rewrite a file in place.
_REWRITE_METHODS = (".write_text", ".write_bytes")


def _is_truncate_write(call: ast.Call) -> bool:
    """Whether ``call`` overwrites a file (vs appending or reading)."""
    name = call_name(call)
    if name is None:
        return False
    if name.endswith(_REWRITE_METHODS):
        return True
    if name.split(".")[-1] != "open":
        return False
    mode = None
    if len(call.args) >= 2:
        mode = call.args[1]
    else:
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
    return (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and mode.value in _TRUNCATE_MODES
    )


@register
class DurabilityChecker(Checker):
    """Keep the journal-first, atomic-write and ledgered-ε disciplines."""

    name = "durability"
    codes = {
        "FRQ-D701": "pipeline state mutated before the journal append",
        "FRQ-D702": "durable file overwritten without fsync + atomic rename",
        "FRQ-D703": "privacy budget spent outside the ledgered accountant",
    }

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        if module.in_package("durability"):
            yield from self._check_journal_ordering(module)
            yield from self._check_atomic_writes(module)
        if not module.in_package("privacy"):
            yield from self._check_unledgered_spends(module)

    # -- FRQ-D701 ----------------------------------------------------------

    def _check_journal_ordering(
        self, module: ModuleInfo
    ) -> Iterator[Diagnostic]:
        for function in iter_functions(module.tree):
            first_append: ast.Call | None = None
            first_pipeline: ast.Call | None = None
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name is None:
                    continue
                if name.endswith(_JOURNAL_APPENDS):
                    if (
                        first_append is None
                        or node.lineno < first_append.lineno
                    ):
                        first_append = node
                elif name.endswith(_PIPELINE_CALLS):
                    if (
                        first_pipeline is None
                        or node.lineno < first_pipeline.lineno
                    ):
                        first_pipeline = node
            if (
                first_append is not None
                and first_pipeline is not None
                and first_pipeline.lineno < first_append.lineno
            ):
                yield self.diagnostic(
                    module,
                    first_pipeline,
                    "FRQ-D701",
                    "pipeline call precedes the journal append — a crash "
                    "in between loses the record with no durable trace; "
                    "append to the journal first",
                )

    # -- FRQ-D702 ----------------------------------------------------------

    def _check_atomic_writes(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for function in iter_functions(module.tree):
            writes: list[ast.Call] = []
            has_fsync = has_replace = False
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name is None:
                    continue
                if name.endswith(".fsync") or name == "fsync":
                    has_fsync = True
                elif name.endswith(".replace") or name == "replace":
                    has_replace = True
                elif _is_truncate_write(node):
                    writes.append(node)
            if writes and not (has_fsync and has_replace):
                for write in writes:
                    yield self.diagnostic(
                        module,
                        write,
                        "FRQ-D702",
                        "truncate-mode write without fsync + atomic rename "
                        "— a crash mid-write destroys the old copy too; "
                        "use atomic_write_json / write-temp + os.replace",
                    )

    # -- FRQ-D703 ----------------------------------------------------------

    def _check_unledgered_spends(
        self, module: ModuleInfo
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or not name.endswith(".spend"):
                continue
            receiver = name.rsplit(".", 1)[0]
            if "budget" not in receiver.lower():
                continue
            yield self.diagnostic(
                module,
                node,
                "FRQ-D703",
                "budget spent outside the ledgered accountant — crash "
                "recovery cannot see this spend and may double-grant ε; "
                "go through PublicationAccountant.grant()",
            )
