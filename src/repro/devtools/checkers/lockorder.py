"""Whole-program lock-order checker (FRQ-L10xx).

``FRQ-C103`` catches AB/BA deadlocks *within one module* by looking at
lexically nested ``with`` blocks.  The multiprocess/threaded runtime
spreads its locks across ``runtime/``, ``core/`` and ``durability/``,
and the dangerous inversions are exactly the ones C103 cannot see: the
dispatcher holds its lock and calls into the checking node, which takes
its own lock — while another thread does the reverse through a
different pair of methods, possibly in a different module.

``FRQ-L1001`` builds one *global* lock-acquisition graph over those
packages: nodes are locks identified class-wide (``Dispatcher._lock``)
or module-wide (``tcp.py:guard``), edges mean "acquired while holding".
Direct edges come from nested ``with`` blocks; *call* edges come from
the project call graph — while holding lock A, calling any function
whose transitive lock closure contains B adds ``A → B``.  Any cycle in
that graph is a potential deadlock under contention.

Pure same-module, direct-nesting AB/BA pairs are left to FRQ-C103 so
one defect never fires twice; everything L1001 reports crosses a
function or module boundary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.devtools.callgraph import CallGraph, FunctionInfo, Project
from repro.devtools.checkers.concurrency import (
    _collect_lock_attrs,
    _LOCK_NAME_RE,
)
from repro.devtools.astutil import dotted_name, self_attr
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import ModuleInfo, ProjectChecker, register

#: Packages whose locks participate in the global graph.
_SCOPED_PACKAGES = ("runtime", "core", "durability")


@dataclass(frozen=True)
class LockEdge:
    """``outer`` held while ``inner`` is (or may be) acquired."""

    outer: str
    inner: str
    module: ModuleInfo
    node: ast.AST
    #: "direct" for nested ``with``; the callee name for call edges.
    via: str | None = None


def _in_scope(module: ModuleInfo) -> bool:
    return module.in_package(*_SCOPED_PACKAGES)


def _lock_attrs_of(project: Project, info: FunctionInfo) -> set[str]:
    if info.class_name is None:
        return set()
    cls = project.class_named(info.class_name)
    if cls is None:
        return set()
    return _collect_lock_attrs(cls.node)


def _global_label(
    expr: ast.expr, info: FunctionInfo, lock_attrs: set[str]
) -> str | None:
    """Class- or module-wide identity of a lock expression."""
    attr = self_attr(expr)
    if attr is not None:
        if attr in lock_attrs or _LOCK_NAME_RE.search(attr):
            owner = info.class_name or "?"
            return f"{owner}.{attr}"
        return None
    name = dotted_name(expr)
    if name is not None and _LOCK_NAME_RE.search(name.rsplit(".", 1)[-1]):
        basename = info.module.display_path.rsplit("/", 1)[-1]
        return f"{basename}:{name}"
    return None


class _LockWalker(ast.NodeVisitor):
    """Collects held-lock nesting and calls-under-lock for one function."""

    def __init__(self, info: FunctionInfo, lock_attrs: set[str]):
        self.info = info
        self.lock_attrs = lock_attrs
        self.held: list[str] = []
        self.acquired: set[str] = set()
        #: (outer, inner, with-node) direct nesting pairs.
        self.direct: list[tuple[str, str, ast.AST]] = []
        #: (held labels, call node) for calls made under at least one lock.
        self.calls_under_lock: list[tuple[tuple[str, ...], ast.Call]] = []

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            label = _global_label(item.context_expr, self.info, self.lock_attrs)
            if label is not None:
                self.acquired.add(label)
                for outer in self.held:
                    self.direct.append((outer, label, node))
                acquired.append(label)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        del self.held[len(self.held) - len(acquired) :]

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        if self.held:
            self.calls_under_lock.append((tuple(self.held), node))
        self.generic_visit(node)

    # Nested function bodies run on other frames/threads, later.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


@register
class LockOrderChecker(ProjectChecker):
    """Global lock-acquisition graph with cycle detection."""

    name = "lock-order"
    codes = {
        "FRQ-L1001": (
            "locks acquired in a cyclic order across the call graph "
            "(whole-program deadlock risk)"
        ),
    }

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        graph = CallGraph(project)
        walkers: dict[str, _LockWalker] = {}
        for info in project.functions.values():
            if not _in_scope(info.module):
                continue
            walker = _LockWalker(info, _lock_attrs_of(project, info))
            for stmt in info.node.body:
                walker.visit(stmt)
            walkers[info.qualname] = walker

        # Transitive lock closure per function (callee-first fixed point).
        closure: dict[str, set[str]] = {
            name: set(walker.acquired) for name, walker in walkers.items()
        }
        order = [
            info
            for info in graph.callee_first_order()
            if info.qualname in walkers
        ]
        for _ in range(3):
            changed = False
            for info in order:
                mine = closure[info.qualname]
                before = len(mine)
                for site in graph.callees.get(info.qualname, []):
                    mine |= closure.get(site.callee.qualname, set())
                if len(mine) != before:
                    changed = True
            if not changed:
                break

        # Assemble the global edge set.
        edges: dict[tuple[str, str], LockEdge] = {}
        for name, walker in walkers.items():
            info = project.functions[name]
            for outer, inner, node in walker.direct:
                if outer != inner:
                    edges.setdefault(
                        (outer, inner),
                        LockEdge(outer, inner, info.module, node, via=None),
                    )
            for held, call in walker.calls_under_lock:
                for site in graph.callees.get(name, []):
                    if site.call is not call:
                        continue
                    callee_locks = closure.get(site.callee.qualname, set())
                    for outer in held:
                        for inner in callee_locks:
                            if outer == inner:
                                continue
                            edges.setdefault(
                                (outer, inner),
                                LockEdge(
                                    outer,
                                    inner,
                                    info.module,
                                    call,
                                    via=site.callee.name,
                                ),
                            )

        yield from self._report_cycles(edges)

    def _report_cycles(
        self, edges: dict[tuple[str, str], LockEdge]
    ) -> Iterable[Diagnostic]:
        adjacency: dict[str, set[str]] = {}
        for outer, inner in edges:
            adjacency.setdefault(outer, set()).add(inner)
            adjacency.setdefault(inner, set())
        for component in _tarjan_sccs(adjacency):
            if len(component) < 2:
                continue
            members = sorted(component)
            cycle_edges = [
                edge
                for (outer, inner), edge in sorted(edges.items())
                if outer in component and inner in component
            ]
            if not cycle_edges:
                continue
            if len(members) == 2 and all(
                edge.via is None for edge in cycle_edges
            ) and len({edge.module.display_path for edge in cycle_edges}) == 1:
                # Same-module direct AB/BA nesting: FRQ-C103's domain.
                continue
            anchor = cycle_edges[0]
            description = ", ".join(
                f"{edge.outer} -> {edge.inner}"
                + (f" (via {edge.via}())" if edge.via else "")
                + f" [{edge.module.display_path}:{edge.node.lineno}]"
                for edge in cycle_edges
            )
            yield self.diagnostic(
                anchor.module,
                anchor.node,
                "FRQ-L1001",
                f"lock-order cycle among {{{', '.join(members)}}}: "
                f"{description} — threads taking these locks in different "
                f"orders can deadlock",
            )


def _tarjan_sccs(adjacency: dict[str, set[str]]) -> list[set[str]]:
    """Strongly connected components of a small digraph (iterative)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []
    counter = [0]

    for root in adjacency:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, pos = work.pop()
            if pos == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            successors = sorted(adjacency.get(node, ()))
            for i in range(pos, len(successors)):
                succ = successors[i]
                if succ not in index:
                    work.append((node, i + 1))
                    work.append((succ, 0))
                    recurse = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components
