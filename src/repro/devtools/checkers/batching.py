"""Batched-hot-path checkers (FRQ-B8xx).

The batched ingestion path (docs/BATCHING.md) earns its throughput by
amortising per-record overhead: one cipher call, one socket write, one
journal frame per *batch*.  Both properties degrade silently — the code
still passes every equivalence test if a batch function quietly loops a
per-record primitive, and a dropped close flush only shows up as a
publication-boundary bug under a large batch size.  These rules keep the
two disciplines machine-checked:

* ``FRQ-B801`` — inside a function whose name marks it as a batch hot
  path (it contains ``batch``), a ``for``/``while`` loop body calls a
  per-record primitive: ``.encrypt``, ``.send``, ``.sendall`` or
  ``.append_raw``.  Each has a batch-sized counterpart
  (``encrypt_batch``, one framed write per batch, ``append_raw_batch``);
  looping the scalar form re-pays the per-record overhead the batch
  exists to amortise.
* ``FRQ-B802`` — a class that owns a batch accumulator (it defines both
  a flush method and ``end_publication``) whose ``end_publication``
  never flushes.  The close flush is what guarantees a batch never
  straddles a publication boundary; dropping it leaks the in-flight
  records into the next publication number.
* ``FRQ-B803`` — an assignment to a ``_batch_size`` attribute outside
  :mod:`repro.core.flow`.  The adaptive controller owns the batch size;
  mutating it directly bypasses the AIMD bookkeeping (window accounting,
  gauges, bounds clamping) and silently re-introduces the static-size
  cliff the controller exists to remove.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.astutil import call_name, iter_functions
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import Checker, ModuleInfo, register

#: Per-record primitives with a batch-sized counterpart (suffix match on
#: the dotted callee, so ``.encrypt_batch`` itself never matches).
_SCALAR_CALLS = (".encrypt", ".send", ".sendall", ".append_raw")


def _loops(function: ast.AST) -> Iterator[ast.For | ast.While]:
    for node in ast.walk(function):
        if isinstance(node, (ast.For, ast.While)):
            yield node


@register
class BatchingChecker(Checker):
    """Keep the batched hot path batch-shaped and boundary-safe."""

    name = "batching"
    codes = {
        "FRQ-B801": "per-record primitive looped inside a batch hot path",
        "FRQ-B802": "batch accumulator without a flush on interval close",
        "FRQ-B803": "direct _batch_size mutation bypassing the controller",
    }

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        yield from self._check_scalar_loops(module)
        yield from self._check_close_flush(module)
        yield from self._check_size_mutation(module)

    # -- FRQ-B801 ----------------------------------------------------------

    def _check_scalar_loops(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for function in iter_functions(module.tree):
            if "batch" not in function.name.lower():
                continue
            for loop in _loops(function):
                for node in ast.walk(loop):
                    if not isinstance(node, ast.Call):
                        continue
                    name = call_name(node)
                    if name is None or not name.endswith(_SCALAR_CALLS):
                        continue
                    primitive = name.rsplit(".", 1)[1]
                    yield self.diagnostic(
                        module,
                        node,
                        "FRQ-B801",
                        f"per-record .{primitive}() inside a loop in batch "
                        f"hot path {function.name}() — this re-pays the "
                        "per-record overhead batching amortises; use the "
                        "batch counterpart (encrypt_batch / one framed "
                        "write or append_raw_batch per batch)",
                    )

    # -- FRQ-B802 ----------------------------------------------------------

    def _check_close_flush(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            close = methods.get("end_publication")
            if close is None:
                continue
            if not any("flush" in name.lower() for name in methods):
                continue  # no batch accumulator to drop
            for inner in ast.walk(close):
                if isinstance(inner, ast.Call):
                    name = call_name(inner)
                    if name is not None and "flush" in name.lower():
                        break
            else:
                yield self.diagnostic(
                    module,
                    close,
                    "FRQ-B802",
                    f"{node.name}.end_publication() closes the interval "
                    "without flushing the in-flight batch — records left "
                    "in the accumulator leak into the next publication "
                    "number; flush (the close flush) before broadcasting "
                    "publishing",
                )

    # -- FRQ-B803 ----------------------------------------------------------

    def _check_size_mutation(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        if module.is_module("core/flow.py"):
            return  # the controller is the one legitimate owner
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue  # bare annotation, no mutation
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "_batch_size"
                    ):
                        yield self.diagnostic(
                            module,
                            node,
                            "FRQ-B803",
                            "direct assignment to ._batch_size bypasses the "
                            "adaptive controller (repro.core.flow) — its "
                            "AIMD accounting, bounds clamping and gauges "
                            "never see the change; adjust the size through "
                            "AdaptiveBatchController instead",
                        )
