"""Privacy budget-flow checkers (FRQ-P31x) — whole-program.

FRESQUE's budget discipline (paper Section 8) routes every publication
through :meth:`PublicationAccountant.grant`: the accountant is the only
place ε leaves the ledgered budget, and the ε a noise plan consumes must
be the ε some grant released.  The per-module FRQ-P30x rules catch
*literal* epsilons; these rules track ε **provenance** through the call
graph with the dataflow engine:

* ``FRQ-P311`` — a ``draw_noise_plan(...)`` call whose ``epsilon``
  argument is provably not derived from an accountant grant (not
  ``grant.epsilon``, not a ``PublicationGrant`` parameter, on any
  analysed path).  When the epsilon is an open parameter of the calling
  function, the check walks up the call graph to every resolved caller
  and reports the call site that supplies the ungranted value; a
  function with no in-project callers is a public API boundary and
  stays silent (the caller outside the repo owns the obligation).
* ``FRQ-P312`` — a ``.grant()`` call whose result is discarded: the
  ledger records the publication as spent, but the released ε can never
  reach a noise plan, silently burning budget.

Literal epsilon arguments are skipped here — ``FRQ-P302``/``FRQ-P303``
own hard-coded budgets, and one defect should fire exactly once.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.devtools.astutil import call_name, keyword_arg
from repro.devtools.callgraph import CallGraph, FunctionInfo, Project
from repro.devtools.dataflow import (
    EMPTY,
    TaintEngine,
    TaintSpec,
    Val,
    deep_labels,
    field_of,
)
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import ProjectChecker, register

#: Receivers that look like the accountant (for the discarded-grant rule).
_ACCOUNTANT_RE = re.compile(r"(accountant|budget)", re.IGNORECASE)

#: How far up the call graph an open epsilon parameter is chased.
_MAX_CALLER_DEPTH = 8

GRANT_SPEC = TaintSpec(
    label="grant",
    source_calls=frozenset({".grant"}),
    source_param_annotations=frozenset({"PublicationGrant"}),
)


def _is_draw_call(call: ast.Call) -> bool:
    name = call_name(call)
    return name is not None and name.rsplit(".", 1)[-1] == "draw_noise_plan"


def _epsilon_argument(call: ast.Call) -> ast.expr | None:
    """The ``epsilon`` argument of a ``draw_noise_plan`` call."""
    keyword = keyword_arg(call, "epsilon")
    if keyword is not None:
        return keyword
    if len(call.args) > 1:
        return call.args[1]
    return None


def _is_numeric_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    )


def _param_roots(val: Val) -> set[int]:
    """Parameter indices mentioned anywhere in ``val``'s labels."""
    roots: set[int] = set()
    for label in deep_labels(val):
        root = label.partition(".")[0]
        if root.startswith("p"):
            try:
                roots.add(int(root[1:]))
            except ValueError:
                continue
    return roots


@register
class BudgetFlowChecker(ProjectChecker):
    """Every drawn noise plan must spend accountant-granted ε."""

    name = "budget-flow"
    codes = {
        "FRQ-P311": (
            "noise plan drawn with an epsilon not derived from an "
            "accountant grant"
        ),
        "FRQ-P312": (
            "accountant grant discarded — budget is spent but its epsilon "
            "never reaches a noise plan"
        ),
    }

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        graph = CallGraph(project)
        engine = TaintEngine(project, graph, GRANT_SPEC)
        engine.run()
        for info in project.functions.values():
            if info.module.in_package("privacy"):
                continue
            yield from self._check_draws(project, graph, engine, info)
            yield from self._check_discards(info)

    # -- FRQ-P311 ----------------------------------------------------------

    def _check_draws(
        self,
        project: Project,
        graph: CallGraph,
        engine: TaintEngine,
        info: FunctionInfo,
    ) -> Iterator[Diagnostic]:
        if info.module.is_module("index/perturb.py"):
            return  # the sanctioned drawing layer itself
        result = engine.result_for(info)
        if result is None:
            return
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call) or not _is_draw_call(node):
                continue
            epsilon = _epsilon_argument(node)
            if epsilon is None or _is_numeric_literal(epsilon):
                continue  # missing arg / FRQ-P30x literal territory
            evaluation = result.call_evals.get(id(node))
            if evaluation is None:
                continue
            keyword = keyword_arg(node, "epsilon")
            val = evaluation.argument(1, "epsilon" if keyword else None)
            yield from self._judge_epsilon(
                graph, engine, info, node, val, trace=(), depth=0,
                visited=set(),
            )

    def _judge_epsilon(
        self,
        graph: CallGraph,
        engine: TaintEngine,
        info: FunctionInfo,
        node: ast.Call,
        val: Val,
        trace: tuple[str, ...],
        depth: int,
        visited: set,
    ) -> Iterator[Diagnostic]:
        """Decide one epsilon value; recurse to callers for open params."""
        labels = deep_labels(val)
        if "T" in labels:
            return  # grant-derived on at least one analysed path
        roots = _param_roots(val)
        if not roots:
            yield self._draw_diagnostic(info, node, trace)
            return
        if depth >= _MAX_CALLER_DEPTH:
            return  # give up silently: under-approximate, never guess
        sites = graph.call_sites_of(info.qualname)
        if not sites:
            return  # public API boundary: the external caller's obligation
        for index in sorted(roots):
            param = info.params[index] if index < len(info.params) else None
            key = (info.qualname, index)
            if key in visited:
                continue
            visited.add(key)
            for site in sites:
                caller_result = engine.result_for(site.caller)
                if caller_result is None:
                    continue
                evaluation = caller_result.call_evals.get(id(site.call))
                if evaluation is None:
                    continue
                keyword = param.arg if param is not None else None
                positional = index < len(site.call.args)
                by_keyword = keyword is not None and any(
                    kw.arg == keyword for kw in site.call.keywords
                )
                if not positional and not by_keyword:
                    # The caller leaves the parameter at its default (e.g.
                    # injects a pre-drawn plan instead): the guarded branch
                    # that would draw is not taken from this site.
                    continue
                arg_val = evaluation.argument(
                    index, keyword if by_keyword and not positional else None
                )
                hop = f"{info.name}()"
                yield from self._judge_epsilon(
                    graph,
                    engine,
                    site.caller,
                    site.call,
                    arg_val,
                    trace=(hop,) + trace,
                    depth=depth + 1,
                    visited=visited,
                )

    def _draw_diagnostic(
        self, info: FunctionInfo, node: ast.Call, trace: tuple[str, ...]
    ) -> Diagnostic:
        via = f" (feeding {' -> '.join(trace)})" if trace else ""
        return self.diagnostic(
            info.module,
            node,
            "FRQ-P311",
            f"epsilon fed to draw_noise_plan{via} is not derived from a "
            f"PublicationAccountant grant on any analysed path — route the "
            f"budget through accountant.grant() so the ledger matches what "
            f"the index actually spends",
        )

    # -- FRQ-P312 ----------------------------------------------------------

    def _check_discards(self, info: FunctionInfo) -> Iterator[Diagnostic]:
        for stmt in ast.walk(info.node):
            if not isinstance(stmt, ast.Expr):
                continue
            call = stmt.value
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not (isinstance(func, ast.Attribute) and func.attr == "grant"):
                continue
            receiver = call_name(call)
            if receiver is None:
                continue
            base = receiver.rsplit(".", 2)[-2] if "." in receiver else receiver
            if not _ACCOUNTANT_RE.search(base):
                continue
            yield self.diagnostic(
                info.module,
                call,
                "FRQ-P312",
                "the PublicationGrant returned by grant() is discarded — "
                "the ledger burns one publication share of epsilon that no "
                "noise plan can ever spend",
            )
