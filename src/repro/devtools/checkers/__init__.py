"""Built-in checker families.

Importing this package registers every built-in checker with the
registry in :mod:`repro.devtools.registry`.
"""

from repro.devtools.checkers import (
    batching,
    concurrency,
    crypto,
    durability,
    hygiene,
    privacy,
    runtime,
    telemetry,
)

__all__ = [
    "batching",
    "concurrency",
    "crypto",
    "durability",
    "hygiene",
    "privacy",
    "runtime",
    "telemetry",
]
