"""Built-in checker families.

Importing this package registers every built-in checker with the
registry in :mod:`repro.devtools.registry` — the per-module families
and the whole-program (call-graph/dataflow) families alike.
"""

from repro.devtools.checkers import (
    batching,
    budget_flow,
    concurrency,
    crypto,
    durability,
    hygiene,
    lockorder,
    membership,
    privacy,
    runtime,
    security_flow,
    shm,
    telemetry,
)

__all__ = [
    "batching",
    "budget_flow",
    "concurrency",
    "crypto",
    "durability",
    "hygiene",
    "lockorder",
    "membership",
    "privacy",
    "runtime",
    "security_flow",
    "shm",
    "telemetry",
]
