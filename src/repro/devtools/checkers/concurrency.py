"""Concurrency checkers (FRQ-C1xx).

FRESQUE's throughput claim rests on parser/encrypter threads sharing as
little as possible (paper Section 4.1: computing nodes work
shared-nothing; only the dispatcher/checker touch shared state).  These
checkers target the three defect classes that repeatedly bite this
architecture:

* ``FRQ-C101`` — an attribute mutated from a ``threading.Thread`` target
  without holding the owning object's lock;
* ``FRQ-C102`` — a blocking call (socket dial/recv, queue get/put,
  ``time.sleep``, thread join) made while a lock is held, serializing
  every other thread behind I/O;
* ``FRQ-C103`` — two locks acquired in opposite orders somewhere in the
  same module (classic AB/BA deadlock).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.devtools.astutil import call_name, dotted_name, keyword_arg, self_attr
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import Checker, ModuleInfo, register

#: Constructors whose result is treated as a lock object.
_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "Lock",
    "RLock",
    "Condition",
}

#: Names that look like a lock even without seeing the constructor.
_LOCK_NAME_RE = re.compile(r"(^|_)(lock|guard|mutex)s?$", re.IGNORECASE)

#: Module-level calls that block the calling thread.
_BLOCKING_CALLS = {
    "time.sleep",
    "socket.create_connection",
}

#: Method names that block when invoked on a socket-like receiver.
_BLOCKING_SOCKET_METHODS = {"accept", "recv", "connect", "sendall", "send"}

#: Method names that block on queue-like receivers.
_BLOCKING_QUEUE_METHODS = {"get", "put"}

_QUEUE_NAME_RE = re.compile(r"(queue|inbox|outbox|channel)", re.IGNORECASE)
_THREAD_NAME_RE = re.compile(r"(thread|worker|acceptor|reader)", re.IGNORECASE)
_SOCKET_NAME_RE = re.compile(
    r"(sock|socket|conn|connection|server|client)", re.IGNORECASE
)


def _is_lock_expr(node: ast.expr, lock_attrs: set[str]) -> bool:
    """Whether a ``with``-item context expression is a lock."""
    attr = self_attr(node)
    if attr is not None:
        return attr in lock_attrs or bool(_LOCK_NAME_RE.search(attr))
    name = dotted_name(node)
    if name is not None:
        return bool(_LOCK_NAME_RE.search(name.rsplit(".", 1)[-1]))
    return False


def _lock_label(node: ast.expr) -> str:
    """Stable label for a lock expression, for C103 graph nodes."""
    attr = self_attr(node)
    if attr is not None:
        return f"self.{attr}"
    return dotted_name(node) or "<lock>"


def _collect_lock_attrs(cls: ast.ClassDef) -> set[str]:
    """``self.X`` attributes assigned a lock constructor anywhere in
    ``cls``."""
    lock_attrs: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if call_name(node.value) in _LOCK_FACTORIES:
                for target in node.targets:
                    attr = self_attr(target)
                    if attr is not None:
                        lock_attrs.add(attr)
    return lock_attrs


def _thread_target_methods(cls: ast.ClassDef) -> set[str]:
    """Methods of ``cls`` passed as ``threading.Thread(target=self.m)``."""
    targets: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Call) and call_name(node) in (
            "threading.Thread",
            "Thread",
        ):
            target = keyword_arg(node, "target")
            if target is not None:
                attr = self_attr(target)
                if attr is not None:
                    targets.add(attr)
    return targets


def _method_call_closure(
    cls: ast.ClassDef, roots: set[str]
) -> set[str]:
    """Method names reachable from ``roots`` via ``self.m()`` calls."""
    methods = {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    reachable = set()
    frontier = [name for name in roots if name in methods]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        for node in ast.walk(methods[name]):
            if isinstance(node, ast.Call):
                callee = self_attr(node.func)
                if callee in methods and callee not in reachable:
                    frontier.append(callee)
    return reachable


class _HeldLockVisitor(ast.NodeVisitor):
    """Walk a function body tracking the stack of held locks."""

    def __init__(self, lock_attrs: set[str]):
        self.lock_attrs = lock_attrs
        self.held: list[ast.expr] = []
        #: (node, held-lock labels) for every visited statement/expr.
        self.events: list[tuple[ast.AST, tuple[str, ...]]] = []
        #: Observed (outer label, inner label) acquisition edges.
        self.edges: list[tuple[str, str, ast.With]] = []

    def visit_With(self, node: ast.With) -> None:
        acquired: list[ast.expr] = []
        for item in node.items:
            if _is_lock_expr(item.context_expr, self.lock_attrs):
                inner = _lock_label(item.context_expr)
                for outer_expr in self.held:
                    self.edges.append((_lock_label(outer_expr), inner, node))
                acquired.append(item.context_expr)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        del self.held[len(self.held) - len(acquired) :]

    def generic_visit(self, node: ast.AST) -> None:
        if self.held:
            self.events.append(
                (node, tuple(_lock_label(expr) for expr in self.held))
            )
        super().generic_visit(node)

    # Do not descend into nested function definitions: their bodies run
    # later, not while the lock is held.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef


def _locks_guarding(node: ast.AST, function: ast.AST, lock_attrs: set[str]) -> bool:
    """Whether ``node`` sits lexically inside a ``with <lock>:`` block of
    ``function``."""
    visitor = _HeldLockVisitor(lock_attrs)
    for stmt in getattr(function, "body", []):
        visitor.visit(stmt)
    return any(event_node is node for event_node, _ in visitor.events)


def _blocking_reason(call: ast.Call) -> str | None:
    """Why ``call`` blocks the calling thread, or ``None``."""
    name = call_name(call)
    if name in _BLOCKING_CALLS:
        return f"blocking call {name}()"
    if isinstance(call.func, ast.Attribute):
        method = call.func.attr
        receiver = call.func.value
        if isinstance(receiver, ast.Constant):
            return None  # e.g. ", ".join(...)
        receiver_name = (dotted_name(receiver) or "").rsplit(".", 1)[-1]
        if method in _BLOCKING_SOCKET_METHODS and _SOCKET_NAME_RE.search(
            receiver_name
        ):
            return f"blocking socket call .{method}() on {receiver_name!r}"
        if method in _BLOCKING_QUEUE_METHODS and _QUEUE_NAME_RE.search(
            receiver_name
        ):
            return f"blocking queue call .{method}() on {receiver_name!r}"
        if method == "join" and _THREAD_NAME_RE.search(receiver_name):
            return f"blocking .join() on {receiver_name!r}"
    return None


@register
class ConcurrencyChecker(Checker):
    """Shared-state and lock-discipline defects."""

    name = "concurrency"
    codes = {
        "FRQ-C101": (
            "attribute mutated from a thread target without the owning "
            "object's lock"
        ),
        "FRQ-C102": "blocking call made while a lock is held",
        "FRQ-C103": "locks acquired in conflicting orders (deadlock risk)",
    }

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)
        yield from self._check_lock_order(module)
        yield from self._check_blocking_under_lock(module)

    # -- FRQ-C101 ----------------------------------------------------------

    def _check_class(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> Iterator[Diagnostic]:
        thread_targets = _thread_target_methods(cls)
        if not thread_targets:
            return
        lock_attrs = _collect_lock_attrs(cls)
        reachable = _method_call_closure(cls, thread_targets)
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for name in sorted(reachable):
            method = methods[name]
            if name == "__init__":
                continue
            for stmt in ast.walk(method):
                if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                    targets = (
                        stmt.targets
                        if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    for target in targets:
                        attr = self_attr(target)
                        if attr is None or attr in lock_attrs:
                            continue
                        if _locks_guarding(stmt, method, lock_attrs):
                            continue
                        yield self.diagnostic(
                            module,
                            stmt,
                            "FRQ-C101",
                            f"self.{attr} is mutated in {cls.name}.{name}(), "
                            f"which runs on a threading.Thread target, "
                            f"without holding a lock of {cls.name}",
                        )

    # -- FRQ-C102 ----------------------------------------------------------

    def _check_blocking_under_lock(
        self, module: ModuleInfo
    ) -> Iterator[Diagnostic]:
        lock_attrs = self._module_lock_attrs(module)
        for function in self._module_functions(module):
            visitor = _HeldLockVisitor(lock_attrs)
            for stmt in function.body:
                visitor.visit(stmt)
            for node, held in visitor.events:
                if isinstance(node, ast.Call):
                    reason = _blocking_reason(node)
                    if reason is not None:
                        yield self.diagnostic(
                            module,
                            node,
                            "FRQ-C102",
                            f"{reason} while holding {', '.join(held)} — "
                            f"every other thread contending on the lock "
                            f"stalls behind this I/O",
                        )

    # -- FRQ-C103 ----------------------------------------------------------

    def _check_lock_order(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        lock_attrs = self._module_lock_attrs(module)
        edges: dict[str, set[str]] = {}
        sites: dict[tuple[str, str], ast.With] = {}
        for function in self._module_functions(module):
            visitor = _HeldLockVisitor(lock_attrs)
            for stmt in function.body:
                visitor.visit(stmt)
            for outer, inner, node in visitor.edges:
                if outer == inner:
                    continue
                edges.setdefault(outer, set()).add(inner)
                sites.setdefault((outer, inner), node)
        reported: set[frozenset[str]] = set()
        for outer, inners in edges.items():
            for inner in inners:
                if outer in edges.get(inner, set()):
                    pair = frozenset((outer, inner))
                    if pair in reported:
                        continue
                    reported.add(pair)
                    node = sites[(outer, inner)]
                    yield self.diagnostic(
                        module,
                        node,
                        "FRQ-C103",
                        f"{outer} and {inner} are each acquired while "
                        f"holding the other — AB/BA deadlock under "
                        f"contention",
                    )

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def _module_lock_attrs(module: ModuleInfo) -> set[str]:
        lock_attrs: set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                lock_attrs |= _collect_lock_attrs(node)
        return lock_attrs

    @staticmethod
    def _module_functions(module: ModuleInfo):
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node
