"""Crypto-misuse checkers (FRQ-X2xx).

FRESQUE publishes *every* record encrypted; the security argument
(paper Section 3.2, one-way trapdoor per publication) collapses under
classic implementation mistakes that functional tests cannot see:

* ``FRQ-X201`` — ECB mode or a constant IV/nonce: equal plaintexts yield
  equal ciphertexts, so the cloud can cluster records by value and
  reconstruct the index distribution the dummies exist to hide;
* ``FRQ-X202`` — a hard-coded key/secret literal in library code;
* ``FRQ-X203`` — comparing digests/MACs with ``==`` instead of
  ``hmac.compare_digest`` (timing side channel on tag verification);
* ``FRQ-X204`` — the non-CSPRNG ``random`` module inside ``crypto/``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.devtools.astutil import call_name, dotted_name
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import Checker, ModuleInfo, register

_KEY_NAME_RE = re.compile(
    r"(^|_)(key|secret|password|passphrase|token)s?$", re.IGNORECASE
)
#: Key-ish names that are sizes/labels, not material.
_KEY_NAME_ALLOW_RE = re.compile(
    r"(size|len|length|bytes|bits|name|id|index|type)", re.IGNORECASE
)
_DIGEST_METHODS = {"digest", "hexdigest"}
_TAG_NAME_RE = re.compile(r"(^|_)(tag|mac|digest|hmac)s?$", re.IGNORECASE)


def _last_segment(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _is_key_name(name: str | None) -> bool:
    if name is None:
        return False
    segment = _last_segment(name)
    return bool(_KEY_NAME_RE.search(segment)) and not _KEY_NAME_ALLOW_RE.search(
        segment
    )


def _is_secret_literal(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (str, bytes))
        and len(node.value) >= 8
    )


def _digest_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DIGEST_METHODS
    )


@register
class CryptoChecker(Checker):
    """Classic crypto-implementation mistakes."""

    name = "crypto"
    codes = {
        "FRQ-X201": "ECB mode or constant IV/nonce (deterministic encryption)",
        "FRQ-X202": "hard-coded key or secret literal",
        "FRQ-X203": "digest/MAC compared with == (use hmac.compare_digest)",
        "FRQ-X204": "non-CSPRNG random module used in crypto code",
    }

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        yield from self._check_modes_and_ivs(module)
        yield from self._check_hardcoded_keys(module)
        yield from self._check_digest_compares(module)
        if module.in_package("crypto"):
            yield from self._check_weak_random(module)

    # -- FRQ-X201 ----------------------------------------------------------

    def _check_modes_and_ivs(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr == "MODE_ECB":
                yield self.diagnostic(
                    module,
                    node,
                    "FRQ-X201",
                    "ECB mode leaks plaintext equality — identical records "
                    "produce identical ciphertexts",
                )
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg in ("iv", "nonce") and isinstance(
                        keyword.value, ast.Constant
                    ):
                        yield self.diagnostic(
                            module,
                            keyword.value,
                            "FRQ-X201",
                            f"constant {keyword.arg}= makes encryption "
                            f"deterministic; derive a fresh one per message",
                        )
                name = call_name(node)
                if (
                    name is not None
                    and _last_segment(name).endswith("cbc_encrypt")
                    and len(node.args) >= 3
                    and isinstance(node.args[2], ast.Constant)
                ):
                    yield self.diagnostic(
                        module,
                        node.args[2],
                        "FRQ-X201",
                        "literal IV passed to CBC encryption — IV must be "
                        "fresh and unpredictable per message",
                    )

    # -- FRQ-X202 ----------------------------------------------------------

    def _check_hardcoded_keys(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if _is_key_name(dotted_name(target)) and _is_secret_literal(
                        node.value
                    ):
                        yield self.diagnostic(
                            module,
                            node,
                            "FRQ-X202",
                            f"{dotted_name(target)} is assigned a literal "
                            f"secret — load key material from the keystore "
                            f"or environment",
                        )
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if (
                        keyword.arg is not None
                        and _is_key_name(keyword.arg)
                        and _is_secret_literal(keyword.value)
                    ):
                        yield self.diagnostic(
                            module,
                            keyword.value,
                            "FRQ-X202",
                            f"literal secret passed as {keyword.arg}= — load "
                            f"key material from the keystore or environment",
                        )

    # -- FRQ-X203 ----------------------------------------------------------

    def _check_digest_compares(
        self, module: ModuleInfo
    ) -> Iterator[Diagnostic]:
        in_crypto = module.in_package("crypto")
        for function in self._functions(module):
            digest_names = self._names_assigned_digests(function)
            for node in ast.walk(function):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(
                    isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
                ):
                    continue
                operands = [node.left, *node.comparators]
                if any(self._is_digest_operand(
                    operand, digest_names, in_crypto
                ) for operand in operands):
                    yield self.diagnostic(
                        module,
                        node,
                        "FRQ-X203",
                        "digest/MAC compared with == — short-circuit "
                        "comparison leaks a timing oracle; use "
                        "hmac.compare_digest",
                    )

    @staticmethod
    def _functions(module: ModuleInfo):
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _names_assigned_digests(function: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and _digest_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _is_digest_operand(
        node: ast.expr, digest_names: set[str], in_crypto: bool
    ) -> bool:
        if _digest_call(node):
            return True
        name = dotted_name(node)
        if name is None:
            return False
        if name in digest_names:
            return True
        return in_crypto and bool(_TAG_NAME_RE.search(_last_segment(name)))

    # -- FRQ-X204 ----------------------------------------------------------

    def _check_weak_random(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.diagnostic(
                            module,
                            node,
                            "FRQ-X204",
                            "the random module is a Mersenne Twister, not a "
                            "CSPRNG — use secrets or os.urandom for IVs and "
                            "key material",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.diagnostic(
                    module,
                    node,
                    "FRQ-X204",
                    "the random module is a Mersenne Twister, not a CSPRNG — "
                    "use secrets or os.urandom for IVs and key material",
                )
