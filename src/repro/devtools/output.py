"""Machine-readable output formats for fresque-lint.

``--format json`` emits a stable, jq-friendly document; ``--format
sarif`` emits SARIF 2.1.0 so findings surface inline in code review UIs
(GitHub code scanning consumes SARIF directly).  Both formats carry the
same findings the text renderer would print — post-suppression,
post-baseline.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.devtools.diagnostics import Diagnostic

#: SARIF schema pinned by the spec for version 2.1.0 documents.
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_json(
    diagnostics: Iterable[Diagnostic], codes: dict[str, tuple[str, str]]
) -> str:
    """One JSON document: tool metadata plus a flat findings list."""
    findings = [
        {
            "path": d.path,
            "line": d.line,
            "col": d.col,
            "code": d.code,
            "message": d.message,
            "family": codes.get(d.code, ("", ""))[0],
        }
        for d in diagnostics
    ]
    return json.dumps(
        {"tool": "fresque-lint", "findings": findings}, indent=2
    )


def render_sarif(
    diagnostics: Iterable[Diagnostic], codes: dict[str, tuple[str, str]]
) -> str:
    """A minimal SARIF 2.1.0 run: driver rules plus one result each."""
    diagnostics = list(diagnostics)
    used = sorted({d.code for d in diagnostics} | set(codes))
    rules = [
        {
            "id": code,
            "name": codes.get(code, ("", ""))[0] or code,
            "shortDescription": {
                "text": codes.get(code, ("", code))[1] or code
            },
        }
        for code in used
    ]
    rule_index = {code: index for index, code in enumerate(used)}
    results = [
        {
            "ruleId": d.code,
            "ruleIndex": rule_index.get(d.code, -1),
            "level": "error",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.path},
                        "region": {
                            "startLine": d.line,
                            "startColumn": d.col,
                        },
                    }
                }
            ],
        }
        for d in diagnostics
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "fresque-lint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
