"""fresque-lint command line.

Usage::

    python -m repro.devtools.lint [paths...]          # default: src
    python -m repro.devtools.lint --list-codes
    python -m repro.devtools.lint --select FRQ-C101 src
    python -m repro.devtools.lint --update-baseline src
    python -m repro.devtools.lint --format sarif src
    python -m repro.devtools.lint --changed-only src

Exit status: 0 when every finding is inline-suppressed or baselined,
1 when new findings exist, 2 on usage errors.

Two checker passes run per invocation: every per-module
:class:`~repro.devtools.registry.Checker` over each file, then every
:class:`~repro.devtools.registry.ProjectChecker` over the whole parsed
project (call graph, dataflow).  ``--changed-only`` still parses every
file — whole-program checkers need the complete call graph — and only
*reports* findings landing in files with uncommitted changes.
"""

from __future__ import annotations

import argparse
import ast
import subprocess
import sys
from pathlib import Path
from typing import Iterable, Iterator

from repro.devtools.astcache import CACHE_DIR_NAME, AstCache
from repro.devtools.baseline import Baseline, render_baseline
from repro.devtools.callgraph import build_project
from repro.devtools.diagnostics import Diagnostic, is_suppressed
from repro.devtools.output import render_json, render_sarif
from repro.devtools.registry import (
    ModuleInfo,
    all_checkers,
    all_codes,
    all_project_checkers,
    iter_diagnostics,
)

DEFAULT_BASELINE = ".fresque-lint-baseline"


def _repo_root(start: Path) -> Path:
    """Closest ancestor containing ``pyproject.toml`` (or ``start``)."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def discover_files(paths: Iterable[Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def load_module(
    path: Path, root: Path, cache: AstCache | None = None
) -> ModuleInfo | Diagnostic:
    """Parse one file; a syntax error becomes a diagnostic, not a crash."""
    try:
        display = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        display = path.as_posix()
    raw = path.read_bytes()
    source = raw.decode("utf-8")
    tree = cache.get(raw) if cache is not None else None
    if tree is None:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            return Diagnostic(
                path=display,
                line=error.lineno or 1,
                col=(error.offset or 1),
                code="FRQ-E000",
                message=f"syntax error: {error.msg}",
            )
        if cache is not None:
            cache.put(raw, tree)
    return ModuleInfo(
        path=path,
        display_path=display,
        tree=tree,
        source_lines=source.splitlines(),
    )


def changed_files(root: Path) -> set[str] | None:
    """Repo-relative paths with uncommitted changes (None when unknown).

    Covers modified/staged files (``git diff HEAD``) and untracked files;
    a missing ``git`` or a non-repo directory yields ``None`` so the
    caller can fall back to reporting everything.
    """
    changed: set[str] = set()
    for args in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            result = subprocess.run(
                args, cwd=root, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        changed.update(
            line.strip() for line in result.stdout.splitlines() if line.strip()
        )
    return changed


def run_lint(
    paths: list[Path],
    root: Path,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    cache: AstCache | None = None,
) -> list[Diagnostic]:
    """All unsuppressed diagnostics for ``paths`` (baseline not applied)."""

    def wanted(diagnostic: Diagnostic) -> bool:
        if select and diagnostic.code not in select:
            return False
        if ignore and diagnostic.code in ignore:
            return False
        return True

    checkers = all_checkers()
    diagnostics: list[Diagnostic] = []
    modules: list[ModuleInfo] = []
    for path in discover_files(paths):
        module = load_module(path, root, cache=cache)
        if isinstance(module, Diagnostic):
            diagnostics.append(module)
            continue
        modules.append(module)
        for diagnostic in iter_diagnostics(checkers, module):
            if wanted(diagnostic) and not is_suppressed(
                diagnostic, module.source_lines
            ):
                diagnostics.append(diagnostic)

    # Whole-program pass: one project over every parsed module.
    project_checkers = all_project_checkers()
    if project_checkers and modules:
        project = build_project(modules)
        lines_by_path = {m.display_path: m.source_lines for m in modules}
        for checker in project_checkers:
            for diagnostic in checker.check_project(project):
                if not wanted(diagnostic):
                    continue
                lines = lines_by_path.get(diagnostic.path, [])
                if is_suppressed(diagnostic, lines):
                    continue
                diagnostics.append(diagnostic)
    return sorted(set(diagnostics))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Domain-aware static analysis for the FRESQUE repro.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} at the repo root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to absorb all current findings",
    )
    parser.add_argument(
        "--list-codes", action="store_true", help="list diagnostic codes"
    )
    parser.add_argument(
        "--select", action="append", default=[], help="only these codes"
    )
    parser.add_argument(
        "--ignore", action="append", default=[], help="skip these codes"
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="parse every file fresh, bypassing the AST cache",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "only report findings in files with uncommitted changes "
            "(the whole project is still parsed for call-graph checkers)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_codes:
        for code, (family, description) in sorted(all_codes().items()):
            print(f"{code}  [{family}] {description}")
        return 0

    known_codes = set(all_codes()) | {"FRQ-E000"}
    unknown = (set(args.select) | set(args.ignore)) - known_codes
    if unknown:
        print(
            f"error: unknown code(s): {', '.join(sorted(unknown))} "
            f"(see --list-codes)",
            file=sys.stderr,
        )
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return 2
    root = _repo_root(Path.cwd())
    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )
    cache = None if args.no_cache else AstCache(root / CACHE_DIR_NAME)

    diagnostics = run_lint(
        paths,
        root,
        select=set(args.select) or None,
        ignore=set(args.ignore) or None,
        cache=cache,
    )

    if args.update_baseline:
        baseline_path.write_text(render_baseline(diagnostics))
        print(
            f"wrote {baseline_path} with {len(diagnostics)} "
            f"grandfathered finding(s)"
        )
        return 0

    try:
        baseline = (
            Baseline() if args.no_baseline else Baseline.load(baseline_path)
        )
    except ValueError as error:
        print(f"error: {baseline_path}: {error}", file=sys.stderr)
        return 2
    fresh = [d for d in diagnostics if not baseline.absorbs(d)]

    if args.changed_only:
        changed = changed_files(root)
        if changed is None:
            print(
                "warning: --changed-only could not query git; "
                "reporting all findings",
                file=sys.stderr,
            )
        else:
            fresh = [d for d in fresh if d.path in changed]

    if args.format == "json":
        print(render_json(fresh, all_codes()))
    elif args.format == "sarif":
        print(render_sarif(fresh, all_codes()))
    else:
        for diagnostic in fresh:
            print(diagnostic.render())
    if not (args.select or args.ignore or args.changed_only):
        # With a code filter active the baseline legitimately under-fires,
        # so staleness would be noise.
        for path, code, allowed, seen in baseline.stale_entries():
            print(
                f"warning: stale baseline entry {path}:{code} "
                f"(allows {allowed}, found {seen}) — delete it",
                file=sys.stderr,
            )
    if fresh:
        if args.format == "text":
            print(
                f"\n{len(fresh)} finding(s). Fix them, suppress inline with "
                f"'# fresque-lint: disable=CODE -- why', or baseline with "
                f"--update-baseline.",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
