"""fresque-lint command line.

Usage::

    python -m repro.devtools.lint [paths...]          # default: src
    python -m repro.devtools.lint --list-codes
    python -m repro.devtools.lint --select FRQ-C101 src
    python -m repro.devtools.lint --update-baseline src

Exit status: 0 when every finding is inline-suppressed or baselined,
1 when new findings exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, Iterator

from repro.devtools.baseline import Baseline, render_baseline
from repro.devtools.diagnostics import Diagnostic, is_suppressed
from repro.devtools.registry import (
    ModuleInfo,
    all_checkers,
    all_codes,
    iter_diagnostics,
)

DEFAULT_BASELINE = ".fresque-lint-baseline"


def _repo_root(start: Path) -> Path:
    """Closest ancestor containing ``pyproject.toml`` (or ``start``)."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def discover_files(paths: Iterable[Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def load_module(path: Path, root: Path) -> ModuleInfo | Diagnostic:
    """Parse one file; a syntax error becomes a diagnostic, not a crash."""
    try:
        display = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        display = path.as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return Diagnostic(
            path=display,
            line=error.lineno or 1,
            col=(error.offset or 1),
            code="FRQ-E000",
            message=f"syntax error: {error.msg}",
        )
    return ModuleInfo(
        path=path,
        display_path=display,
        tree=tree,
        source_lines=source.splitlines(),
    )


def run_lint(
    paths: list[Path],
    root: Path,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Diagnostic]:
    """All unsuppressed diagnostics for ``paths`` (baseline not applied)."""
    checkers = all_checkers()
    diagnostics: list[Diagnostic] = []
    for path in discover_files(paths):
        module = load_module(path, root)
        if isinstance(module, Diagnostic):
            diagnostics.append(module)
            continue
        for diagnostic in iter_diagnostics(checkers, module):
            if select and diagnostic.code not in select:
                continue
            if ignore and diagnostic.code in ignore:
                continue
            if is_suppressed(diagnostic, module.source_lines):
                continue
            diagnostics.append(diagnostic)
    return sorted(diagnostics)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Domain-aware static analysis for the FRESQUE repro.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} at the repo root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to absorb all current findings",
    )
    parser.add_argument(
        "--list-codes", action="store_true", help="list diagnostic codes"
    )
    parser.add_argument(
        "--select", action="append", default=[], help="only these codes"
    )
    parser.add_argument(
        "--ignore", action="append", default=[], help="skip these codes"
    )
    args = parser.parse_args(argv)

    if args.list_codes:
        for code, (family, description) in sorted(all_codes().items()):
            print(f"{code}  [{family}] {description}")
        return 0

    known_codes = set(all_codes()) | {"FRQ-E000"}
    unknown = (set(args.select) | set(args.ignore)) - known_codes
    if unknown:
        print(
            f"error: unknown code(s): {', '.join(sorted(unknown))} "
            f"(see --list-codes)",
            file=sys.stderr,
        )
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return 2
    root = _repo_root(Path.cwd())
    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )

    diagnostics = run_lint(
        paths,
        root,
        select=set(args.select) or None,
        ignore=set(args.ignore) or None,
    )

    if args.update_baseline:
        baseline_path.write_text(render_baseline(diagnostics))
        print(
            f"wrote {baseline_path} with {len(diagnostics)} "
            f"grandfathered finding(s)"
        )
        return 0

    try:
        baseline = (
            Baseline() if args.no_baseline else Baseline.load(baseline_path)
        )
    except ValueError as error:
        print(f"error: {baseline_path}: {error}", file=sys.stderr)
        return 2
    fresh = [d for d in diagnostics if not baseline.absorbs(d)]

    for diagnostic in fresh:
        print(diagnostic.render())
    if not (args.select or args.ignore):
        # With a code filter active the baseline legitimately under-fires,
        # so staleness would be noise.
        for path, code, allowed, seen in baseline.stale_entries():
            print(
                f"warning: stale baseline entry {path}:{code} "
                f"(allows {allowed}, found {seen}) — delete it",
                file=sys.stderr,
            )
    if fresh:
        print(
            f"\n{len(fresh)} finding(s). Fix them, suppress inline with "
            f"'# fresque-lint: disable=CODE -- why', or baseline with "
            f"--update-baseline.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
