"""Measurement sinks for the simulated pipelines.

Beyond raw throughput (the :class:`~repro.simulation.stations.Counter`),
:class:`LatencyTracker` records each batch's ingest-to-delivery latency so
experiments can report averages and tail percentiles.
"""

from __future__ import annotations

from repro.simulation.stations import Job


class LatencyTracker:
    """Terminal sink recording per-batch end-to-end latency."""

    def __init__(self, loop):
        self._loop = loop
        self._latencies: list[float] = []
        self.records = 0

    def __call__(self, job: Job) -> None:
        self._latencies.append(self._loop.now - job.created_at)
        self.records += job.records

    @property
    def count(self) -> int:
        """Batches observed."""
        return len(self._latencies)

    def mean(self) -> float:
        """Average batch latency in seconds."""
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def percentile(self, q: float) -> float:
        """The ``q``-quantile latency (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def max(self) -> float:
        """Worst observed latency."""
        return max(self._latencies, default=0.0)


class TelemetrySink:
    """Terminal sink mirroring delivered batches into telemetry.

    Bridges the discrete-event simulator onto the same span/metric model
    the real runtimes use: each delivered batch becomes one span (with
    *simulated*-clock timestamps — construct the ``Telemetry`` with
    ``SimulatedClock(loop)`` so ``telemetry.now()`` agrees) plus one
    observation in a latency histogram, so the report CLI and the JSONL
    exporter render simulated and real runs identically.
    """

    def __init__(self, loop, telemetry):
        self._loop = loop
        self._tel = telemetry
        self._latency = telemetry.histogram("sim_batch_latency_seconds")
        self._batches = telemetry.counter("sim_batches_total")
        self._records_counter = telemetry.counter("sim_records_total")
        self.records = 0

    def __call__(self, job: Job) -> None:
        now = self._loop.now
        self.records += job.records
        if self._tel.enabled:
            self._latency.observe(now - job.created_at)
            self._batches.inc()
            self._records_counter.inc(job.records)
            self._tel.recorder.record(
                "sim_batch", -1, job.created_at, now
            )
