"""Measurement sinks for the simulated pipelines.

Beyond raw throughput (the :class:`~repro.simulation.stations.Counter`),
:class:`LatencyTracker` records each batch's ingest-to-delivery latency so
experiments can report averages and tail percentiles.
"""

from __future__ import annotations

from repro.simulation.stations import Job


class LatencyTracker:
    """Terminal sink recording per-batch end-to-end latency."""

    def __init__(self, loop):
        self._loop = loop
        self._latencies: list[float] = []
        self.records = 0

    def __call__(self, job: Job) -> None:
        self._latencies.append(self._loop.now - job.created_at)
        self.records += job.records

    @property
    def count(self) -> int:
        """Batches observed."""
        return len(self._latencies)

    def mean(self) -> float:
        """Average batch latency in seconds."""
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def percentile(self, q: float) -> float:
        """The ``q``-quantile latency (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def max(self) -> float:
        """Worst observed latency."""
        return max(self._latencies, default=0.0)
