"""Time-series tracing for simulated pipelines.

A :class:`QueueTracer` samples every station's backlog at a fixed cadence,
producing the queue-dynamics view behind throughput numbers: a saturated
station's backlog grows linearly, an underloaded one hovers near zero.
Used by the saturation example and the queue-dynamics tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.events import EventLoop
from repro.simulation.stations import Station


@dataclass(frozen=True)
class TraceSample:
    """One sampling instant: simulated time plus per-station backlogs."""

    time: float
    backlogs: dict[str, int]


@dataclass
class QueueTrace:
    """The collected samples of one run."""

    samples: list[TraceSample] = field(default_factory=list)

    def series(self, station: str) -> list[tuple[float, int]]:
        """``(time, backlog)`` points for one station."""
        return [
            (sample.time, sample.backlogs.get(station, 0))
            for sample in self.samples
        ]

    def peak(self, station: str) -> int:
        """Largest observed backlog at ``station``."""
        return max(
            (sample.backlogs.get(station, 0) for sample in self.samples),
            default=0,
        )

    def growth_rate(self, station: str) -> float:
        """Least-squares backlog growth (records/second) at ``station``.

        Positive growth over a long window means the station is saturated
        and the system is falling behind.
        """
        points = self.series(station)
        if len(points) < 2:
            return 0.0
        n = len(points)
        mean_t = sum(t for t, _ in points) / n
        mean_b = sum(b for _, b in points) / n
        num = sum((t - mean_t) * (b - mean_b) for t, b in points)
        den = sum((t - mean_t) ** 2 for t, _ in points)
        if den == 0:
            return 0.0
        return num / den


class QueueTracer:
    """Samples station backlogs on a fixed simulated-time cadence.

    Parameters
    ----------
    loop:
        The simulation event loop.
    stations:
        Stations to watch.
    period:
        Sampling period in simulated seconds.
    """

    def __init__(
        self,
        loop: EventLoop,
        stations: list[Station],
        period: float = 0.05,
    ):
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.loop = loop
        self.stations = stations
        self.period = period
        self.trace = QueueTrace()
        self._stopped = False

    def start(self, until: float) -> None:
        """Begin sampling until simulated time ``until``."""
        self._deadline = until
        self._sample()

    def _sample(self) -> None:
        if self._stopped or self.loop.now > self._deadline:
            return
        self.trace.samples.append(
            TraceSample(
                time=self.loop.now,
                backlogs={
                    station.name: station.backlog_records
                    for station in self.stations
                },
            )
        )
        self.loop.schedule(self.period, self._sample)

    def stop(self) -> None:
        """Cease sampling."""
        self._stopped = True
