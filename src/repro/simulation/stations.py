"""Queueing stations: the machines of the simulated cluster.

A :class:`Station` is an FCFS service centre with ``servers`` identical
cores.  Jobs are *batches* of records (so a 200k records/s workload does
not need 200k events per simulated second); service time scales with batch
size.  Completions are handed to a sink callback, which is how stations are
chained into pipelines.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass

from repro.simulation.events import EventLoop


@dataclass(frozen=True)
class Job:
    """A batch of records flowing through the pipeline.

    Parameters
    ----------
    records:
        Number of records in the batch.
    created_at:
        Simulated time the batch entered the pipeline (latency metric).
    """

    records: int
    created_at: float


class Station:
    """An FCFS multi-server service centre.

    Parameters
    ----------
    loop:
        The simulation's event loop.
    name:
        Station name for metrics/debugging.
    service_per_record:
        Seconds of work per record at this station.
    servers:
        Number of parallel cores (Table 2: computing nodes have 2, the
        others 4 or 16 — we model each *component* as the cores it may use).
    sink:
        Called with each completed :class:`Job`; ``None`` discards.
    """

    def __init__(
        self,
        loop: EventLoop,
        name: str,
        service_per_record: float,
        servers: int = 1,
        sink: Callable[[Job], None] | None = None,
    ):
        if service_per_record < 0:
            raise ValueError("service time cannot be negative")
        if servers < 1:
            raise ValueError("a station needs at least one server")
        self.loop = loop
        self.name = name
        self.service_per_record = service_per_record
        self.servers = servers
        self.sink = sink
        self._next_free = [0.0] * servers
        heapq.heapify(self._next_free)
        self.records_in = 0
        self.records_out = 0
        self.busy_seconds = 0.0
        self.last_completion = 0.0

    def submit(self, job: Job) -> None:
        """Queue a batch; it completes after waiting + service."""
        self.records_in += job.records
        service = self.service_per_record * job.records
        earliest = heapq.heappop(self._next_free)
        start = max(self.loop.now, earliest)
        end = start + service
        heapq.heappush(self._next_free, end)
        self.busy_seconds += service
        self.loop.schedule(end - self.loop.now, lambda: self._complete(job))

    def _complete(self, job: Job) -> None:
        self.records_out += job.records
        self.last_completion = self.loop.now
        if self.sink is not None:
            self.sink(job)

    @property
    def backlog_records(self) -> int:
        """Records admitted but not yet completed."""
        return self.records_in - self.records_out

    def utilisation(self, elapsed: float) -> float:
        """Fraction of capacity used over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed * self.servers))

    def capacity_per_second(self) -> float:
        """Records/s this station can sustain."""
        if self.service_per_record == 0:
            return float("inf")
        return self.servers / self.service_per_record


class RoundRobinSplitter:
    """Distributes jobs over several downstream stations, dispatcher-style."""

    def __init__(self, targets: list[Station]):
        if not targets:
            raise ValueError("need at least one target station")
        self._targets = targets
        self._next = 0

    def __call__(self, job: Job) -> None:
        self._targets[self._next].submit(job)
        self._next = (self._next + 1) % len(self._targets)


class Counter:
    """Terminal sink counting delivered records (throughput measurement)."""

    def __init__(self):
        self.records = 0
        self.jobs = 0

    def __call__(self, job: Job) -> None:
        self.records += job.records
        self.jobs += 1
