"""Calibrated per-operation cost model.

Pure Python cannot execute 160k record/s ingestion (repro band: throughput
benchmarks unrealistic in pure Python), so the performance experiments run
on a discrete-event simulation whose service times come from this model.

Calibration strategy (DESIGN.md §6): the model is *anchored* on the paper's
measured **non-parallel PINED-RQ++** throughputs — 3,159 records/s (NASA)
and 13,223 records/s (Gowalla) — and on the per-stage decomposition implied
by the parallel variants; every other number the benchmarks print is then a
prediction of the model, compared against the paper in EXPERIMENTS.md.

Key anchors and the constants they pin down:

========================  =======================================  =========
paper observation          constant                                 value
========================  =======================================  =========
source rate 200k rec/s     dispatcher forward cost ``t_dispatch``   5.0 µs
FRESQUE Gowalla peak       checking-node O(1) pair cost             5.7 µs
  ~165k rec/s @ 8 CN         (+0.007 µs/ciphertext byte)
FRESQUE NASA ~142k @ 12    computing-node chain ``t_cn``            84.3 µs
  and 7.61x @ 2 CN            (parse 34 + offset 0.3 + encrypt 50)
parallel PP NASA ~25k      sequential front: recv 2 + parse +       40.2 µs
  (5.6x below FRESQUE)       template check 4.2
non-parallel PP anchors    single-node residual (GC/alloc/socket    222.4 µs
  3,159 / 13,223 rec/s       contention, calibrated exactly)        /17.1 µs
========================  =======================================  =========
"""

from __future__ import annotations

from dataclasses import dataclass

MICROSECOND = 1e-6


@dataclass(frozen=True)
class CostModel:
    """Service times (seconds) for every operation of the three systems.

    One instance per dataset — parsing and encryption scale with record
    size, and the residual single-thread overhead is calibrated per anchor.
    """

    name: str
    #: Average raw-line size of the dataset's records.
    line_bytes: float
    #: Average ciphertext size (IV + PKCS#7-padded serialized record).
    ciphertext_bytes: float
    #: Index leaves (bins) of the dataset's domain.
    num_leaves: int
    #: Index height at fanout 16.
    index_height: int

    # -- per-record ingestion-path costs ------------------------------
    #: Dispatcher: receive + round-robin forward.
    t_dispatch: float = 5.0 * MICROSECOND
    #: Raw-line parsing (record-size dependent; set per dataset).
    t_parse: float = 0.0
    #: O(1) leaf-offset computation (Section 5.1(b)).
    t_offset: float = 0.3 * MICROSECOND
    #: AES-CBC encryption of one record (set per dataset).
    t_encrypt: float = 0.0
    #: Checking node fixed cost: randomer insert/evict + AL/ALN update.
    t_check_array_base: float = 5.7 * MICROSECOND
    #: Checking node per-ciphertext-byte receive cost.
    t_check_array_per_byte: float = 0.007 * MICROSECOND
    #: PINED-RQ++ checker: O(log_k n) template traversal.
    t_check_template: float = 4.2 * MICROSECOND
    #: PINED-RQ++ updater: template path update + matching-table insert.
    t_update_template: float = 6.5 * MICROSECOND
    #: PINED-RQ++ enricher: random-tag generation.
    t_enrich: float = 1.5 * MICROSECOND
    #: Parallel PINED-RQ++ front node: bare socket receive.
    t_front_recv: float = 3.0 * MICROSECOND
    #: Residual single-node overhead of non-parallel PINED-RQ++
    #: (calibrated so the full chain hits the paper's measured anchor).
    t_nonparallel_residual: float = 0.0
    #: Cloud: write one record + cache its metadata entry (16 cores).
    t_cloud_write: float = 1.2 * MICROSECOND

    # -- publishing-task costs (Figs 13-17) ---------------------------
    #: Dispatcher: drawing one noise sample / template node.
    t_plan_node: float = 1.0 * MICROSECOND
    #: Dispatcher: generating one dummy record.
    t_dummy_gen: float = 2.0 * MICROSECOND
    #: Checking node: flushing one randomer-buffer slot to the cloud.
    t_flush_pair: float = 4.0 * MICROSECOND
    #: Merger: combining one index node (template noise + AL prefix sums).
    t_merge_node: float = 1.0 * MICROSECOND
    #: Merger: filling/sealing one overflow-array slot (incl. padding
    #: encryption for free slots).
    t_oa_slot: float = 2.7 * MICROSECOND
    #: Cloud (FRESQUE): associating one metadata entry during matching.
    t_match_entry: float = 0.105 * MICROSECOND
    #: Cloud (FRESQUE, Fig 15 path): per-leaf pointer-list linking.
    t_match_leaf: float = 2.0 * MICROSECOND
    #: Cloud (FRESQUE, Fig 15 path): light per-entry touch.
    t_match_entry_light: float = 0.009 * MICROSECOND
    #: Cloud (PINED-RQ++): full read-back + lookup + write-back per record.
    t_pp_match_record: float = 15.5 * MICROSECOND
    #: PINED-RQ++ collector: shipping one matching-table entry at publish.
    t_table_entry: float = 1.0 * MICROSECOND

    # ------------------------------------------------------------------
    # Derived per-stage chain times
    # ------------------------------------------------------------------

    @property
    def t_computing_node(self) -> float:
        """FRESQUE computing node: parse + leaf offset + encrypt."""
        return self.t_parse + self.t_offset + self.t_encrypt

    @property
    def t_check_array(self) -> float:
        """FRESQUE checking node per pair (O(1) + size-dependent recv)."""
        return (
            self.t_check_array_base
            + self.t_check_array_per_byte * self.ciphertext_bytes
        )

    @property
    def t_pp_front(self) -> float:
        """Parallel PINED-RQ++ sequential front: recv + parse + check."""
        return self.t_front_recv + self.t_parse + self.t_check_template

    @property
    def t_pp_worker(self) -> float:
        """Parallel PINED-RQ++ worker: enrich + update + encrypt."""
        return self.t_enrich + self.t_update_template + self.t_encrypt

    @property
    def t_nonparallel_chain(self) -> float:
        """Non-parallel PINED-RQ++: the whole workflow on one node."""
        return (
            self.t_parse
            + self.t_check_template
            + self.t_enrich
            + self.t_update_template
            + self.t_encrypt
            + self.t_nonparallel_residual
        )

    # ------------------------------------------------------------------
    # Closed-form capacities (validated against the DES in the tests)
    # ------------------------------------------------------------------

    def fresque_capacity(self, computing_nodes: int) -> float:
        """Records/s FRESQUE sustains with ``computing_nodes`` workers."""
        if computing_nodes < 1:
            raise ValueError("need at least one computing node")
        return min(
            1.0 / self.t_dispatch,
            computing_nodes / self.t_computing_node,
            1.0 / self.t_check_array,
        )

    def parallel_pp_capacity(self, computing_nodes: int) -> float:
        """Records/s parallel PINED-RQ++ sustains."""
        if computing_nodes < 1:
            raise ValueError("need at least one computing node")
        return min(
            1.0 / self.t_pp_front, computing_nodes / self.t_pp_worker
        )

    def nonparallel_pp_capacity(self) -> float:
        """Records/s non-parallel PINED-RQ++ sustains (the anchor)."""
        return 1.0 / self.t_nonparallel_chain


def _nasa_costs() -> CostModel:
    parse = 34.0 * MICROSECOND
    encrypt = 50.0 * MICROSECOND
    anchor = 1.0 / 3159.0  # paper: 3,159 records/s
    residual = anchor - (
        parse
        + 4.2 * MICROSECOND  # template check
        + 1.5 * MICROSECOND  # enrich
        + 6.5 * MICROSECOND  # template update
        + encrypt
    )
    return CostModel(
        name="nasa",
        line_bytes=90.0,
        ciphertext_bytes=176.0,
        num_leaves=3421,
        index_height=4,
        t_parse=parse,
        t_encrypt=encrypt,
        t_nonparallel_residual=residual,
    )


def _gowalla_costs() -> CostModel:
    parse = 8.9 * MICROSECOND
    encrypt = 39.4 * MICROSECOND
    anchor = 1.0 / 13223.0  # paper: 13,223 records/s
    residual = anchor - (
        parse
        + 4.2 * MICROSECOND
        + 1.5 * MICROSECOND
        + 6.5 * MICROSECOND
        + encrypt
    )
    return CostModel(
        name="gowalla",
        line_bytes=20.0,
        ciphertext_bytes=64.0,
        num_leaves=626,
        index_height=4,
        t_parse=parse,
        t_encrypt=encrypt,
        t_nonparallel_residual=residual,
        # Gowalla metadata entries are lighter (smaller addresses per the
        # paper's 837 ms @ 9.8M records → ~0.085 µs/entry).
        t_match_entry=0.0854 * MICROSECOND,
    )


#: Cost model calibrated for the NASA HTTP-log workload.
NASA_COSTS = _nasa_costs()

#: Cost model calibrated for the Gowalla check-in workload.
GOWALLA_COSTS = _gowalla_costs()


def cost_model_for(dataset: str) -> CostModel:
    """Look a cost model up by dataset name (``"nasa"`` / ``"gowalla"``)."""
    models = {"nasa": NASA_COSTS, "gowalla": GOWALLA_COSTS}
    if dataset not in models:
        raise KeyError(
            f"no cost model for {dataset!r}; choose from {sorted(models)}"
        )
    return models[dataset]
