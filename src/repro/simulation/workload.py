"""Simulated arrival processes.

The paper drives every throughput experiment with a 200k records/s source
(Section 7.1).  Arrivals are generated in *batches* so a simulated minute
of 200k records/s stays tractable: a batch of ``batch_size`` records enters
the pipeline every ``batch_size / rate`` seconds.  A Poisson option adds
exponential jitter for queueing realism.
"""

from __future__ import annotations

import random

from repro.simulation.events import EventLoop
from repro.simulation.stations import Job


class ArrivalSource:
    """Feeds batches of records into a pipeline entry point.

    Parameters
    ----------
    loop:
        Simulation event loop.
    rate:
        Records per second.
    sink:
        Callable receiving each :class:`Job` (the pipeline's first station).
    batch_size:
        Records per arrival event (resolution/speed trade-off).
    poisson:
        If true, inter-batch gaps are exponential with the same mean.
    rng:
        Randomness for Poisson gaps.
    """

    def __init__(
        self,
        loop: EventLoop,
        rate: float,
        sink,
        batch_size: int = 100,
        poisson: bool = False,
        rng: random.Random | None = None,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        self.loop = loop
        self.rate = rate
        self.sink = sink
        self.batch_size = batch_size
        self.poisson = poisson
        # Seeded default: simulated runs must replay bit-identically so
        # the paper-figure scripts are reproducible.
        self._rng = rng if rng is not None else random.Random(0)
        self._stop_at: float | None = None
        self.records_emitted = 0

    def start(self, until: float) -> None:
        """Emit batches from now until simulated time ``until``."""
        self._stop_at = until
        self._emit()

    def _gap(self) -> float:
        mean = self.batch_size / self.rate
        if self.poisson:
            return self._rng.expovariate(1.0 / mean)
        return mean

    def _emit(self) -> None:
        if self._stop_at is not None and self.loop.now >= self._stop_at:
            return
        job = Job(records=self.batch_size, created_at=self.loop.now)
        self.records_emitted += job.records
        self.sink(job)
        self.loop.schedule(self._gap(), self._emit)
