"""Simulated cluster pipelines for the three systems under comparison.

Each builder assembles the queueing network matching one collector
architecture (Figures 4–6 of the paper) out of :class:`Station` objects and
returns a :class:`PipelineSim` that can be driven at a given arrival rate
and measured for sustained throughput.

Pipelines model the *ingestion path* — the steady-state flow that
determines throughput.  End-of-interval publishing tasks are modelled
analytically in :mod:`repro.simulation.analytic` (they run asynchronously
in FRESQUE and as an explicit stall in PINED-RQ++).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.simulation.costs import CostModel
from repro.simulation.events import EventLoop
from repro.simulation.stations import Counter, RoundRobinSplitter, Station
from repro.simulation.workload import ArrivalSource


@dataclass
class PipelineSim:
    """A wired pipeline plus its measurement hooks.

    Parameters
    ----------
    loop:
        The simulation event loop.
    entry:
        Callable receiving arriving jobs (the first station's submit).
    stations:
        Every station in the pipeline, for utilisation inspection.
    delivered:
        Terminal counter of records that completed the whole path.
    """

    loop: EventLoop
    entry: object
    stations: list[Station]
    delivered: Counter
    source: ArrivalSource | None = field(default=None)

    def run(
        self,
        rate: float,
        duration: float,
        warmup: float = 0.5,
        batch_size: int = 100,
        poisson: bool = False,
        seed: int | None = None,
    ) -> float:
        """Drive the pipeline and return sustained records/s.

        The measurement window starts after ``warmup`` seconds so queue
        fill-up does not inflate the figure; the loop then drains
        everything still in flight, and throughput is completions inside
        the window divided by the window length (capped at the observed
        completion horizon for drained runs).
        """
        if duration <= warmup:
            raise ValueError("duration must exceed the warmup")
        self.source = ArrivalSource(
            self.loop,
            rate,
            self.entry,
            batch_size=batch_size,
            poisson=poisson,
            rng=random.Random(seed),
        )
        start = self.loop.now
        self.source.start(until=start + duration)
        self.loop.run_until(start + warmup)
        window_start_records = self.delivered.records
        self.loop.run_until(start + duration)
        window_records = self.delivered.records - window_start_records
        return window_records / (duration - warmup)

    def bottleneck(self) -> Station:
        """The most utilised station (call after :meth:`run`).

        Utilisation, not raw capacity, identifies the bottleneck: twelve
        slow computing nodes in parallel can outpace one fast sequential
        checker.
        """
        elapsed = max(self.loop.now, 1e-12)
        return max(
            self.stations,
            key=lambda s: (
                round(s.utilisation(elapsed), 3),
                s.backlog_records,
            ),
        )


def build_fresque(
    loop: EventLoop, costs: CostModel, computing_nodes: int
) -> PipelineSim:
    """FRESQUE: dispatcher → k computing nodes → checking node → cloud."""
    if computing_nodes < 1:
        raise ValueError("need at least one computing node")
    delivered = Counter()
    cloud = Station(
        loop, "cloud", costs.t_cloud_write, servers=16, sink=delivered
    )
    checking = Station(
        loop, "checking", costs.t_check_array, servers=1, sink=cloud.submit
    )
    workers = [
        Station(
            loop,
            f"cn-{i}",
            costs.t_computing_node,
            servers=1,
            sink=checking.submit,
        )
        for i in range(computing_nodes)
    ]
    splitter = RoundRobinSplitter(workers)
    dispatcher = Station(
        loop, "dispatcher", costs.t_dispatch, servers=1, sink=splitter
    )
    return PipelineSim(
        loop=loop,
        entry=dispatcher.submit,
        stations=[dispatcher, *workers, checking, cloud],
        delivered=delivered,
    )


def build_parallel_pp(
    loop: EventLoop, costs: CostModel, computing_nodes: int
) -> PipelineSim:
    """Parallel PINED-RQ++: sequential (recv+parse+check) front, then k
    updater/encrypter workers, then the cloud (Figure 5)."""
    if computing_nodes < 1:
        raise ValueError("need at least one computing node")
    delivered = Counter()
    cloud = Station(
        loop, "cloud", costs.t_cloud_write, servers=16, sink=delivered
    )
    workers = [
        Station(
            loop, f"worker-{i}", costs.t_pp_worker, servers=1, sink=cloud.submit
        )
        for i in range(computing_nodes)
    ]
    splitter = RoundRobinSplitter(workers)
    front = Station(loop, "front", costs.t_pp_front, servers=1, sink=splitter)
    return PipelineSim(
        loop=loop,
        entry=front.submit,
        stations=[front, *workers, cloud],
        delivered=delivered,
    )


def build_nonparallel_pp(loop: EventLoop, costs: CostModel) -> PipelineSim:
    """Non-parallel PINED-RQ++: the entire workflow on one machine."""
    delivered = Counter()
    cloud = Station(
        loop, "cloud", costs.t_cloud_write, servers=16, sink=delivered
    )
    collector = Station(
        loop,
        "collector",
        costs.t_nonparallel_chain,
        servers=1,
        sink=cloud.submit,
    )
    return PipelineSim(
        loop=loop,
        entry=collector.submit,
        stations=[collector, cloud],
        delivered=delivered,
    )


def build_intake_only(loop: EventLoop, costs: CostModel) -> PipelineSim:
    """Bare intake: the dispatcher without any processing downstream.

    This is the Figure 12 reference — 'maximum incoming throughput
    (without any processing) at the collector'.
    """
    delivered = Counter()
    dispatcher = Station(
        loop, "dispatcher", costs.t_dispatch, servers=1, sink=delivered
    )
    return PipelineSim(
        loop=loop,
        entry=dispatcher.submit,
        stations=[dispatcher],
        delivered=delivered,
    )
