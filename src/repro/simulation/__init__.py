"""Discrete-event cluster simulation and the calibrated cost model."""

from repro.simulation.analytic import (
    PrivacyDerived,
    PublishingTimes,
    derive_privacy_sizes,
    fresque_matching_time,
    fresque_publishing_times,
    fresque_throughput,
    nonparallel_pp_throughput,
    parallel_pp_matching_time,
    parallel_pp_throughput,
    pinedrq_batch_throughput,
    pinedrq_congestion_factor,
    pp_effective_throughput,
    pp_publish_stall,
)
from repro.simulation.costs import (
    GOWALLA_COSTS,
    NASA_COSTS,
    CostModel,
    cost_model_for,
)
from repro.simulation.events import EventLoop
from repro.simulation.metrics import LatencyTracker
from repro.simulation.network import (
    GIGABIT_BYTES_PER_SECOND,
    Link,
    link_is_bottleneck,
)
from repro.simulation.pipelines import (
    PipelineSim,
    build_fresque,
    build_intake_only,
    build_nonparallel_pp,
    build_parallel_pp,
)
from repro.simulation.stations import Counter, Job, RoundRobinSplitter, Station
from repro.simulation.trace import QueueTrace, QueueTracer, TraceSample
from repro.simulation.workload import ArrivalSource

__all__ = [
    "ArrivalSource",
    "CostModel",
    "Counter",
    "EventLoop",
    "GIGABIT_BYTES_PER_SECOND",
    "GOWALLA_COSTS",
    "Job",
    "LatencyTracker",
    "Link",
    "link_is_bottleneck",
    "NASA_COSTS",
    "PipelineSim",
    "PrivacyDerived",
    "PublishingTimes",
    "QueueTrace",
    "QueueTracer",
    "TraceSample",
    "RoundRobinSplitter",
    "Station",
    "build_fresque",
    "build_intake_only",
    "build_nonparallel_pp",
    "build_parallel_pp",
    "cost_model_for",
    "derive_privacy_sizes",
    "fresque_matching_time",
    "fresque_publishing_times",
    "fresque_throughput",
    "nonparallel_pp_throughput",
    "parallel_pp_matching_time",
    "parallel_pp_throughput",
    "pinedrq_batch_throughput",
    "pinedrq_congestion_factor",
    "pp_effective_throughput",
    "pp_publish_stall",
]
