"""Discrete-event simulation core.

A minimal, fast event loop: a heap of ``(time, sequence, callback)``
entries.  Sequence numbers make ordering deterministic for simultaneous
events, which keeps every simulation reproducible under a fixed seed.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable


class EventLoop:
    """Priority-queue driven simulated clock."""

    def __init__(self):
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._now = 0.0
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds.

        Raises
        ------
        ValueError
            For negative delays (scheduling into the past).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, self._sequence, callback))
        self._sequence += 1

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated time ``when``."""
        self.schedule(when - self._now, callback)

    def run_until(self, end_time: float) -> None:
        """Process events up to (and including) ``end_time``."""
        while self._heap and self._heap[0][0] <= end_time:
            when, _, callback = heapq.heappop(self._heap)
            self._now = when
            self.events_processed += 1
            callback()
        self._now = max(self._now, end_time)

    def run(self) -> None:
        """Process every scheduled event (terminates when the heap drains)."""
        while self._heap:
            when, _, callback = heapq.heappop(self._heap)
            self._now = when
            self.events_processed += 1
            callback()

    @property
    def pending(self) -> int:
        """Events still scheduled."""
        return len(self._heap)
