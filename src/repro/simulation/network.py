"""Network links for the simulated cluster.

The paper's collector components exchange records over TCP (Table 2's
cluster).  A :class:`Link` models one such connection as an FCFS byte pipe:
transmission time is ``bytes / bandwidth`` (serialised per link) plus a
fixed propagation latency.  The calibrated per-stage service times already
include the send/receive CPU cost, so links matter only when bandwidth or
propagation becomes binding — which :func:`link_is_bottleneck` lets a
deployment check analytically.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.simulation.events import EventLoop
from repro.simulation.stations import Job

#: 1 Gbps in bytes/second — the typical cluster NIC of the paper's era.
GIGABIT_BYTES_PER_SECOND = 125_000_000.0


class Link:
    """A point-to-point connection with bandwidth and latency.

    Parameters
    ----------
    loop:
        Simulation event loop.
    name:
        Link name for metrics.
    bandwidth:
        Bytes per second the link can carry (serialised FCFS).
    latency:
        One-way propagation delay in seconds, added after transmission.
    bytes_per_record:
        Payload size of one record on this link.
    sink:
        Receiver of delivered jobs.
    """

    def __init__(
        self,
        loop: EventLoop,
        name: str,
        bandwidth: float,
        latency: float,
        bytes_per_record: float,
        sink: Callable[[Job], None],
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency cannot be negative")
        self.loop = loop
        self.name = name
        self.bandwidth = bandwidth
        self.latency = latency
        self.bytes_per_record = bytes_per_record
        self.sink = sink
        self._free_at = 0.0
        self.bytes_sent = 0.0
        self.records_sent = 0

    def send(self, job: Job) -> None:
        """Transmit a batch; delivery after queueing + transmission + latency."""
        payload = job.records * self.bytes_per_record
        start = max(self.loop.now, self._free_at)
        transmission = payload / self.bandwidth
        self._free_at = start + transmission
        self.bytes_sent += payload
        self.records_sent += job.records
        delivery = self._free_at + self.latency
        self.loop.schedule(delivery - self.loop.now, lambda: self.sink(job))

    def capacity_records_per_second(self) -> float:
        """Records/s this link can carry at full utilisation."""
        if self.bytes_per_record == 0:
            return float("inf")
        return self.bandwidth / self.bytes_per_record


def link_is_bottleneck(
    bandwidth: float, bytes_per_record: float, target_rate: float
) -> bool:
    """Whether a link of ``bandwidth`` limits ``target_rate`` records/s."""
    if bytes_per_record <= 0:
        return False
    return bandwidth / bytes_per_record < target_rate
