"""Closed-form performance models.

Complements the discrete-event simulator with the analytic quantities the
paper's Figures 13–17 report — per-component publishing times, cloud
matching times, and the *effective* throughput of the synchronously
publishing PINED-RQ++ variants (ingestion stalls while the collector
performs publishing tasks; FRESQUE's asynchronous merger avoids the stall,
which is half the architectural argument of Section 5.1(c)).

All formulas take a :class:`~repro.simulation.costs.CostModel` plus the
privacy configuration, so the ε- and α-sweeps of Figures 16–18 fall out of
the same code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.privacy.laplace import laplace_inverse_cdf
from repro.simulation.costs import CostModel


@dataclass(frozen=True)
class PrivacyDerived:
    """Privacy-dependent sizes for one configuration (Section 5.2)."""

    epsilon: float
    alpha: float
    noise_scale: float
    per_leaf_bound: int
    expected_dummies: float
    expected_removals: float
    buffer_size: int
    overflow_slots: int


def derive_privacy_sizes(
    costs: CostModel,
    epsilon: float = 1.0,
    alpha: float = 2.0,
    delta: float = 0.99,
    delta_prime: float = 0.99,
) -> PrivacyDerived:
    """Compute noise-dependent quantities for a dataset + budget.

    The expected number of dummies (= expected removals, the Laplace noise
    is symmetric) per leaf is ``E[max(0, X)]`` for X ~ Laplace(b); for the
    continuous distribution this is ``b / 2``.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if alpha < 2:
        raise ValueError(f"alpha must be at least 2, got {alpha}")
    scale = costs.index_height / epsilon
    bound = max(0, math.ceil(laplace_inverse_cdf(delta_prime, scale)))
    overflow_bound = max(0, math.ceil(laplace_inverse_cdf(delta, scale)))
    expected_positive = scale / 2.0
    return PrivacyDerived(
        epsilon=epsilon,
        alpha=alpha,
        noise_scale=scale,
        per_leaf_bound=bound,
        expected_dummies=expected_positive * costs.num_leaves,
        expected_removals=expected_positive * costs.num_leaves,
        buffer_size=max(1, math.ceil(alpha * bound * costs.num_leaves)),
        overflow_slots=overflow_bound * costs.num_leaves,
    )


@dataclass(frozen=True)
class PublishingTimes:
    """Per-component publishing latency of one FRESQUE publication (s)."""

    dispatcher: float
    checking_node: float
    merger: float
    cloud: float


#: Empirical fit of the dispatcher's end-of-interval queue-drain time
#: (Figure 13 shows it decreasing with the number of computing nodes);
#: per-dataset (D0, p) in seconds: ``drain = D0 · k^(-p)``, fitted to the
#: paper's reported endpoints (520→101 ms NASA, 200→19 ms Gowalla over
#: k = 2→12, net of the plan/dummy generation base cost).
_DISPATCHER_DRAIN = {
    "nasa": (1.0055, 1.0),
    "gowalla": (0.5219, 1.407),
}


def fresque_publishing_times(
    costs: CostModel,
    computing_nodes: int,
    epsilon: float = 1.0,
    alpha: float = 2.0,
    interval: float = 60.0,
    source_rate: float = 200_000.0,
) -> PublishingTimes:
    """Publishing time of each FRESQUE component (Figures 13, 16, 17).

    * dispatcher — draw the next noise plan, generate its dummies, drain
      the outbound queues (empirical ``D0/k + D1`` fit);
    * checking node — ship the randomer buffer (size ``α·Σ s_i``) to the
      cloud plus the AL array to the merger;
    * merger — merge template noise with AL over all index nodes and build
      every leaf's overflow array;
    * cloud — walk the metadata cache (one entry per published record).
    """
    sizes = derive_privacy_sizes(costs, epsilon=epsilon, alpha=alpha)
    throughput = min(source_rate, costs.fresque_capacity(computing_nodes))
    records = throughput * interval

    d0, power = _DISPATCHER_DRAIN.get(costs.name, (0.5, 1.0))
    num_nodes = _tree_nodes(costs)
    dispatcher = (
        num_nodes * costs.t_plan_node
        + sizes.expected_dummies * costs.t_dummy_gen
        + d0 * computing_nodes**-power
    )
    checking = (
        sizes.buffer_size * costs.t_flush_pair
        + costs.num_leaves * 0.05e-6  # AL array ship
    )
    merger = (
        num_nodes * costs.t_merge_node + sizes.overflow_slots * costs.t_oa_slot
    )
    cloud = records * costs.t_match_entry
    return PublishingTimes(
        dispatcher=dispatcher,
        checking_node=checking,
        merger=merger,
        cloud=cloud,
    )


def _tree_nodes(costs: CostModel) -> int:
    nodes = 0
    width = costs.num_leaves
    nodes += width
    while width > 1:
        width = math.ceil(width / 16)
        nodes += width
    return nodes


def fresque_matching_time(costs: CostModel, records: int) -> float:
    """Cloud matching time for a publication of ``records`` (Figure 15).

    The Figure 15 experiment measures the leaf-pointer assembly over the
    cached metadata, which is dominated by per-leaf list linking and stays
    tens of milliseconds even at 5M records.
    """
    return (
        costs.num_leaves * costs.t_match_leaf
        + records * costs.t_match_entry_light
    )


def parallel_pp_matching_time(costs: CostModel, records: int) -> float:
    """PINED-RQ++ cloud matching: read back + look up + write back each
    record (Figure 15's linearly growing series)."""
    return records * costs.t_pp_match_record


def pp_publish_stall(
    costs: CostModel,
    records: float,
    epsilon: float = 1.0,
) -> float:
    """Seconds PINED-RQ++'s collector is stalled publishing one dataset.

    Synchronous publishing blocks ingestion while the collector encrypts
    removed records, builds overflow arrays and ships the matching table.
    """
    sizes = derive_privacy_sizes(costs, epsilon=epsilon)
    return (
        sizes.expected_removals * costs.t_encrypt
        + sizes.overflow_slots * costs.t_oa_slot
        + records * costs.t_table_entry
    )


def pp_effective_throughput(
    costs: CostModel,
    raw_capacity: float,
    interval: float = 60.0,
    epsilon: float = 1.0,
    source_rate: float = 200_000.0,
) -> float:
    """Throughput of a synchronously publishing collector.

    Solves the fixpoint ``rate = capacity · interval / (interval + stall)``
    where the stall grows with the records the rate admitted.
    """
    rate = min(raw_capacity, source_rate)
    for _ in range(20):
        stall = pp_publish_stall(costs, rate * interval, epsilon=epsilon)
        new_rate = min(raw_capacity, source_rate) * interval / (
            interval + stall
        )
        if abs(new_rate - rate) < 1.0:
            return new_rate
        rate = new_rate
    return rate


def fresque_throughput(
    costs: CostModel,
    computing_nodes: int,
    source_rate: float = 200_000.0,
) -> float:
    """FRESQUE steady-state throughput (asynchronous publishing: no stall)."""
    return min(source_rate, costs.fresque_capacity(computing_nodes))


def parallel_pp_throughput(
    costs: CostModel,
    computing_nodes: int,
    interval: float = 60.0,
    epsilon: float = 1.0,
    source_rate: float = 200_000.0,
) -> float:
    """Parallel PINED-RQ++ throughput including the synchronous stall."""
    return pp_effective_throughput(
        costs,
        costs.parallel_pp_capacity(computing_nodes),
        interval=interval,
        epsilon=epsilon,
        source_rate=source_rate,
    )


def nonparallel_pp_throughput(
    costs: CostModel,
    source_rate: float = 200_000.0,
) -> float:
    """Non-parallel PINED-RQ++ throughput (directly anchored to the paper;
    the measured anchor already includes its publishing stalls)."""
    return min(source_rate, costs.nonparallel_pp_capacity())


def pinedrq_batch_throughput(
    costs: CostModel,
    interval: float = 60.0,
    epsilon: float = 1.0,
    source_rate: float = 200_000.0,
) -> float:
    """Original PINED-RQ batch publisher's sustainable ingest rate.

    PINED-RQ buffers the whole interval, then performs *all* processing —
    index build, perturbation, encrypting every record, dummies, overflow
    arrays — in one synchronous batch at the collector before the next
    interval's data can be absorbed.  At high incoming rates the batch
    work exceeds the interval and the publisher falls ever further behind:
    the congestion the paper's Section 1 motivates FRESQUE with.

    The sustainable rate solves
    ``n = rate·T`` with ``T_total = T + batch_time(n) <= 2T`` —
    i.e. the batch must finish before the *following* publication closes,
    otherwise backlog grows without bound.
    """
    per_record, fixed = _pinedrq_batch_costs(costs, epsilon)
    # batch_time(rate·T) <= T  =>  rate <= (T - fixed) / (per_record · T).
    budget = max(0.0, interval - fixed)
    capacity = budget / (per_record * interval)
    return min(source_rate, capacity)


def _pinedrq_batch_costs(costs: CostModel, epsilon: float) -> tuple[float, float]:
    sizes = derive_privacy_sizes(costs, epsilon=epsilon)
    per_record = (
        costs.t_parse
        + costs.t_encrypt
        + costs.index_height * 1e-6  # clear-index build per record
        + costs.t_nonparallel_residual  # same single-JVM contention
    )
    fixed = (
        sizes.expected_dummies * costs.t_encrypt
        + sizes.overflow_slots * costs.t_oa_slot
        + _tree_nodes(costs) * costs.t_plan_node
    )
    return per_record, fixed


def pinedrq_congestion_factor(
    costs: CostModel,
    rate: float = 200_000.0,
    interval: float = 60.0,
    epsilon: float = 1.0,
) -> float:
    """How much the batch work of one interval overruns the interval.

    ``> 1`` means the collector falls behind every interval and the
    backlog grows without bound — the congestion of Section 1.
    """
    per_record, fixed = _pinedrq_batch_costs(costs, epsilon)
    batch_time = rate * interval * per_record + fixed
    return batch_time / interval
