"""Index templates and the AL/ALN leaf arrays.

PINED-RQ++ builds its secure index incrementally: a publication starts from
an *index template* — a tree whose counts hold only the pre-drawn noise —
and every arriving record updates the counts along its root-to-leaf path
(O(log_k n) per record, Section 4.1).

FRESQUE keeps the template untouched during the interval and instead
maintains two flat integer arrays at the checking node (Section 5.1(b)):

* ``AL``  — the true count of real records seen per leaf;
* ``ALN`` — the remaining noise per leaf (negative entries are consumed as
  arriving records are diverted to the merger as *removed*).

Both updates are O(1); at publishing time the merger combines the template's
noise with AL to obtain the full noisy index.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.index.domain import AttributeDomain
from repro.index.perturb import NoisePlan, draw_noise_plan
from repro.index.tree import IndexTree


class IndexTemplate:
    """A noise-initialised index tree plus its originating noise plan.

    Parameters
    ----------
    domain:
        The binned attribute domain.
    fanout:
        Branching factor of the tree.
    plan:
        Pre-drawn noise; if ``None``, a fresh plan is sampled with
        ``epsilon`` and ``rng``.
    epsilon:
        Publication budget (required when ``plan`` is None).
    """

    def __init__(
        self,
        domain: AttributeDomain,
        fanout: int = 16,
        plan: NoisePlan | None = None,
        epsilon: float | None = None,
        rng: random.Random | None = None,
    ):
        self.domain = domain
        self.tree = IndexTree(domain, fanout=fanout)
        if plan is None:
            if epsilon is None:
                raise ValueError("either a noise plan or an epsilon is required")
            plan = draw_noise_plan(self.tree, epsilon, rng=rng)
        self.plan = plan
        self.tree.reset_counts(0.0)
        for level_nodes, level_noise in zip(self.tree.levels, plan.node_noise):
            for node, noise in zip(level_nodes, level_noise):
                node.count = noise

    @property
    def epsilon(self) -> float:
        """Budget consumed by the template's noise plan."""
        return self.plan.epsilon

    def update_with_record(self, leaf_offset: int) -> None:
        """PINED-RQ++'s per-record O(log_k n) path update."""
        self.tree.add_record_path(leaf_offset, 1.0)

    def noisy_leaf_counts(self) -> list[float]:
        """Current leaf counts (noise plus whatever updates were applied)."""
        return self.tree.leaf_counts()


@dataclass
class CheckResult:
    """Outcome of the checking node processing one real record."""

    removed: bool
    leaf_offset: int


class LeafArrays:
    """FRESQUE's AL/ALN arrays (Section 5.1(b)).

    Parameters
    ----------
    leaf_noise:
        The pre-drawn per-leaf noise; seeds ALN.
    """

    def __init__(self, leaf_noise: tuple[int, ...] | list[int]):
        self.al = [0] * len(leaf_noise)
        self.aln = list(leaf_noise)
        self._removed = [0] * len(leaf_noise)

    @property
    def num_leaves(self) -> int:
        """Number of leaves tracked."""
        return len(self.al)

    @property
    def removed_per_leaf(self) -> tuple[int, ...]:
        """How many arriving records each leaf diverted to the merger."""
        return tuple(self._removed)

    @property
    def total_real(self) -> int:
        """Total real records seen (published + removed)."""
        return sum(self.al)

    def check_and_update(self, leaf_offset: int) -> CheckResult:
        """Process one real record's leaf offset in O(1).

        If the leaf's remaining noise is negative, the record is *removed*
        (diverted to the merger for the overflow array) and both arrays are
        incremented; otherwise only the true count AL is incremented.

        Raises
        ------
        IndexError
            For an out-of-range leaf offset.
        """
        if not 0 <= leaf_offset < len(self.al):
            raise IndexError(
                f"leaf offset {leaf_offset} outside [0, {len(self.al)})"
            )
        if self.aln[leaf_offset] < 0:
            self.aln[leaf_offset] += 1
            self.al[leaf_offset] += 1
            self._removed[leaf_offset] += 1
            return CheckResult(removed=True, leaf_offset=leaf_offset)
        self.al[leaf_offset] += 1
        return CheckResult(removed=False, leaf_offset=leaf_offset)

    def check_and_update_bulk(self, leaf_offsets: list[int]) -> list[bool]:
        """Batched :meth:`check_and_update`: one call per record batch.

        Returns the per-offset *removed* flags in input order.  Semantics
        are exactly the sequential ones (ALN is consumed in order), with
        the array and bound lookups hoisted out of the loop.
        """
        al = self.al
        aln = self.aln
        removed_counts = self._removed
        num_leaves = len(al)
        removed: list[bool] = []
        mark = removed.append
        for leaf_offset in leaf_offsets:
            if not 0 <= leaf_offset < num_leaves:
                raise IndexError(
                    f"leaf offset {leaf_offset} outside [0, {num_leaves})"
                )
            al[leaf_offset] += 1
            if aln[leaf_offset] < 0:
                aln[leaf_offset] += 1
                removed_counts[leaf_offset] += 1
                mark(True)
            else:
                mark(False)
        return removed

    def snapshot(self) -> list[int]:
        """Copy of AL, as shipped to the merger at publishing time."""
        return list(self.al)

    def state(self) -> dict:
        """All three arrays, for collector checkpoints."""
        return {
            "al": list(self.al),
            "aln": list(self.aln),
            "removed": list(self._removed),
        }

    @classmethod
    def from_state(cls, state: dict) -> "LeafArrays":
        """Rebuild mid-publication arrays from :meth:`state` output."""
        arrays = cls(state["aln"])
        arrays.al = list(state["al"])
        arrays._removed = list(state["removed"])
        return arrays


def merge_template_and_counts(
    template: IndexTemplate, true_leaf_counts: list[int]
) -> IndexTree:
    """Combine a (noise-only) template with true leaf counts — merger logic.

    Every node's final count is its pre-drawn noise plus the sum of the true
    counts of the leaves below it.  Uses prefix sums so the merge is
    O(total nodes), independent of the record count.
    """
    tree = template.tree
    if len(true_leaf_counts) != tree.num_leaves:
        raise ValueError(
            f"got {len(true_leaf_counts)} counts for {tree.num_leaves} leaves"
        )
    merged = IndexTree(template.domain, fanout=tree.fanout)
    prefix = [0]
    for count in true_leaf_counts:
        prefix.append(prefix[-1] + count)
    span = 1
    for level_nodes, level_noise in zip(merged.levels, template.plan.node_noise):
        for node_index, (node, noise) in enumerate(zip(level_nodes, level_noise)):
            leaf_low = node_index * span
            leaf_high = min((node_index + 1) * span, tree.num_leaves)
            node.count = noise + (prefix[leaf_high] - prefix[leaf_low])
        span *= tree.fanout
    return merged
