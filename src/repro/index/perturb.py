"""Index perturbation: Laplace noise plans and the secure index.

Building a PINED-RQ index has two steps (Section 4.1): build the clear
histogram tree, then perturb every count independently with Laplace noise.
A publication's ε is split evenly across the tree's levels (a record touches
one count per level, so levels compose sequentially).

The streaming schemes (PINED-RQ++/FRESQUE) need the noise *before* the data
arrives, so noise generation is factored into a :class:`NoisePlan` that can
be drawn up-front and later combined with true counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.index.overflow import OverflowArray
from repro.index.tree import IndexTree
from repro.privacy.budget import per_level_epsilon
from repro.privacy.laplace import LaplaceMechanism


@dataclass(frozen=True)
class NoisePlan:
    """Pre-drawn integer Laplace noise for every node of an index.

    Parameters
    ----------
    node_noise:
        ``node_noise[level][i]`` is the noise of node ``i`` at ``level``
        (level 0 = leaves, last level = root).
    epsilon:
        The publication budget the plan consumes.
    per_level_scale:
        Laplace scale ``b`` used at each level (1 / (ε / height)).
    """

    node_noise: tuple[tuple[int, ...], ...]
    epsilon: float
    per_level_scale: float

    @property
    def leaf_noise(self) -> tuple[int, ...]:
        """Noise assigned to each leaf, in offset order."""
        return self.node_noise[0]

    @property
    def total_dummies(self) -> int:
        """Total dummy records implied by positive leaf noise."""
        return sum(max(0, noise) for noise in self.leaf_noise)

    @property
    def total_removals(self) -> int:
        """Total record removals implied by negative leaf noise."""
        return sum(max(0, -noise) for noise in self.leaf_noise)


def draw_noise_plan(
    tree: IndexTree, epsilon: float, rng: random.Random | None = None
) -> NoisePlan:
    """Sample a :class:`NoisePlan` for the given tree shape and budget.

    Every node at every level gets independent integer Laplace noise with
    per-level budget ε / height (sensitivity 1 per level).
    """
    level_epsilon = per_level_epsilon(epsilon, tree.height)
    mechanism = LaplaceMechanism(level_epsilon, sensitivity=1.0, rng=rng)
    node_noise = tuple(
        tuple(mechanism.sample_integer() for _ in level) for level in tree.levels
    )
    return NoisePlan(
        node_noise=node_noise,
        epsilon=epsilon,
        per_level_scale=mechanism.scale,
    )


def noise_bound_per_leaf(plan_scale: float, delta_prime: float) -> int:
    """Per-leaf bound ``s_i`` on |noise| holding with probability δ'.

    Used both to size overflow arrays (negative noise) and, summed over
    leaves and multiplied by α, to size the randomer buffer (Section 5.2).
    """
    mechanism = LaplaceMechanism(1.0 / plan_scale)
    return mechanism.positive_noise_bound(delta_prime)


@dataclass
class SecureIndex:
    """A published, perturbed PINED-RQ index.

    Parameters
    ----------
    tree:
        Index tree whose counts are already *noisy* (true + noise).
    overflow:
        Per-leaf sealed overflow arrays (only leaves that had a removal
        budget appear; PINED-RQ materialises one per leaf).
    epsilon:
        Budget the index consumed.
    publication:
        Monotonic publication number.
    """

    tree: IndexTree
    overflow: dict[int, OverflowArray]
    epsilon: float
    publication: int = 0

    @property
    def num_leaves(self) -> int:
        """Number of histogram bins in the index."""
        return self.tree.num_leaves

    def leaf_count(self, offset: int) -> float:
        """Noisy count of the leaf at ``offset``."""
        return self.tree.leaves[offset].count

    def storage_overhead_records(self) -> int:
        """Extra published records versus the clear dataset.

        Counts overflow-array slots (removed reals live there instead of the
        indexed file, but their slots are padded to capacity) — the paper's
        'small storage overhead' claim is about this quantity staying
        proportional to the noise bounds, not the data size.
        """
        return sum(array.capacity for array in self.overflow.values())


def perturb_clear_tree(
    tree: IndexTree, plan: NoisePlan
) -> tuple[list[int], list[int]]:
    """Add a noise plan onto a tree holding *true* counts, in place.

    Returns
    -------
    (dummies, removals):
        Per-leaf number of dummy records to add and real records to remove,
        implied by the leaf-level noise.
    """
    if len(plan.node_noise) != len(tree.levels):
        raise ValueError(
            f"noise plan has {len(plan.node_noise)} levels, tree has "
            f"{len(tree.levels)}"
        )
    for level_nodes, level_noise in zip(tree.levels, plan.node_noise):
        if len(level_nodes) != len(level_noise):
            raise ValueError("noise plan level width does not match tree")
        for node, noise in zip(level_nodes, level_noise):
            node.count += noise
    dummies = [max(0, noise) for noise in plan.leaf_noise]
    removals = [max(0, -noise) for noise in plan.leaf_noise]
    return dummies, removals
