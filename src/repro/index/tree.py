"""The B+Tree-shaped PINED-RQ index skeleton.

The set of all nodes is a histogram covering the indexed attribute's domain
(Section 4.1): leaves are the bins, and each internal node combines the
intervals and counts of up to ``fanout`` children.  The *shape* of the tree
is fully determined by ``(num_leaves, fanout)`` — the "strongly constrained
shape" that makes O(1) leaf offsets possible — so the skeleton is built once
per domain and reused by the clear index, the perturbed index and the index
template.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.index.domain import AttributeDomain


@dataclass
class IndexNode:
    """One node of a PINED-RQ index.

    Parameters
    ----------
    low, high:
        The node's interval (``[low, high)``; the rightmost node at each
        level is closed on the right).
    count:
        Record count — true counts in a clear index, noisy counts in a
        perturbed index, noise-only counts in an index template.
    children:
        Child nodes (empty for leaves).
    leaf_offset:
        The leaf's offset within the domain, or ``None`` for non-leaves.
    """

    low: float
    high: float
    count: float = 0.0
    children: list["IndexNode"] = field(default_factory=list)
    leaf_offset: int | None = None
    closed_right: bool = False

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a histogram bin."""
        return not self.children

    def overlaps(self, low: float, high: float) -> bool:
        """Whether the node's interval intersects the closed query range.

        Node intervals are half-open ``[low, high)`` except the rightmost
        node of each level, which absorbs the domain maximum.
        """
        if self.closed_right:
            return self.low <= high and low <= self.high
        return self.low <= high and low < self.high


class IndexTree:
    """The index skeleton for a domain: leaves plus the internal levels.

    Parameters
    ----------
    domain:
        Binned attribute domain supplying the leaves.
    fanout:
        Branching factor ``k`` (the paper's evaluation uses 16).
    """

    def __init__(self, domain: AttributeDomain, fanout: int = 16):
        if fanout < 2:
            raise ValueError(f"fanout must be at least 2, got {fanout}")
        self.domain = domain
        self.fanout = fanout
        self.leaves: list[IndexNode] = []
        for offset in range(domain.num_leaves):
            low, high = domain.leaf_range(offset)
            self.leaves.append(
                IndexNode(
                    low=low,
                    high=high,
                    leaf_offset=offset,
                    closed_right=offset == domain.num_leaves - 1,
                )
            )
        self.levels: list[list[IndexNode]] = [self.leaves]
        current = self.leaves
        while len(current) > 1:
            parents: list[IndexNode] = []
            for start in range(0, len(current), fanout):
                group = current[start : start + fanout]
                parents.append(
                    IndexNode(
                        low=group[0].low,
                        high=group[-1].high,
                        children=group,
                        closed_right=group[-1].closed_right,
                    )
                )
            self.levels.append(parents)
            current = parents
        self.root = current[0]

    @property
    def height(self) -> int:
        """Number of levels, leaves included.

        This is the number of counts a single record contributes to, hence
        the divisor when splitting a publication's ε across levels.
        """
        return len(self.levels)

    @property
    def num_leaves(self) -> int:
        """Number of histogram bins."""
        return len(self.leaves)

    @property
    def num_nodes(self) -> int:
        """Total node count across all levels."""
        return sum(len(level) for level in self.levels)

    def all_nodes(self):
        """Iterate every node, leaves first, root last."""
        for level in self.levels:
            yield from level

    def reset_counts(self, value: float = 0.0) -> None:
        """Set every node count to ``value``."""
        for node in self.all_nodes():
            node.count = value

    def set_leaf_counts(self, counts: list[float] | list[int]) -> None:
        """Install per-leaf counts and aggregate them up the tree."""
        if len(counts) != self.num_leaves:
            raise ValueError(
                f"got {len(counts)} counts for {self.num_leaves} leaves"
            )
        for leaf, count in zip(self.leaves, counts):
            leaf.count = count
        for level in self.levels[1:]:
            for node in level:
                node.count = sum(child.count for child in node.children)

    def add_record_path(self, leaf_offset: int, amount: float = 1.0) -> None:
        """Increment the counts on the root-to-leaf path of one record.

        This is the O(log_k n) update PINED-RQ++ performs per record on its
        index template, which FRESQUE replaces with O(1) AL/ALN updates.
        """
        index = leaf_offset
        for level in self.levels:
            level[index].count += amount
            index //= self.fanout

    def leaf_counts(self) -> list[float]:
        """Current per-leaf counts, in offset order."""
        return [leaf.count for leaf in self.leaves]

    def path_to_leaf(self, leaf_offset: int) -> list[IndexNode]:
        """Nodes on the leaf-to-root path for ``leaf_offset``."""
        path = []
        index = leaf_offset
        for level in self.levels:
            path.append(level[index])
            index //= self.fanout
        return path


def expected_height(num_leaves: int, fanout: int) -> int:
    """Height (levels, leaves included) of the tree over ``num_leaves`` bins."""
    if num_leaves <= 0:
        raise ValueError(f"num_leaves must be positive, got {num_leaves}")
    if fanout < 2:
        raise ValueError(f"fanout must be at least 2, got {fanout}")
    height = 1
    width = num_leaves
    while width > 1:
        width = math.ceil(width / fanout)
        height += 1
    return height
