"""The PINED-RQ index family: domains, trees, perturbation, templates."""

from repro.index.domain import (
    AttributeDomain,
    DomainError,
    gowalla_domain,
    nasa_domain,
)
from repro.index.overflow import OverflowArray, OverflowError_
from repro.index.perturb import (
    NoisePlan,
    SecureIndex,
    draw_noise_plan,
    noise_bound_per_leaf,
    perturb_clear_tree,
)
from repro.index.query import RangeQuery, TraversalResult, traverse
from repro.index.template import (
    CheckResult,
    IndexTemplate,
    LeafArrays,
    merge_template_and_counts,
)
from repro.index.tree import IndexNode, IndexTree, expected_height

__all__ = [
    "AttributeDomain",
    "CheckResult",
    "DomainError",
    "IndexNode",
    "IndexTemplate",
    "IndexTree",
    "LeafArrays",
    "NoisePlan",
    "OverflowArray",
    "OverflowError_",
    "RangeQuery",
    "SecureIndex",
    "TraversalResult",
    "draw_noise_plan",
    "expected_height",
    "gowalla_domain",
    "merge_template_and_counts",
    "nasa_domain",
    "noise_bound_per_leaf",
    "perturb_clear_tree",
    "traverse",
]
