"""Attribute domains and leaf-offset computation.

A PINED-RQ index is a histogram over the domain of the indexed attribute:
the domain ``[dmin, dmax]`` is cut into fixed-width bins (leaves).  FRESQUE's
computing nodes map a value to its leaf with the closed-form *leaf offset*
of Section 5.1(b)::

    Ov = min( floor((v - dmin) / Ib), floor((dmax - dmin) / Ib) - 1 )

which is O(1) — the property that lets the checking node drop the O(log n)
index-template traversals of PINED-RQ++.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class DomainError(ValueError):
    """Raised for malformed domains or out-of-domain values."""


@dataclass(frozen=True)
class AttributeDomain:
    """The binned domain of an indexed attribute.

    Parameters
    ----------
    dmin, dmax:
        Inclusive domain bounds of the indexed attribute.
    bin_interval:
        Width ``Ib`` of each histogram bin (e.g. 1 KB for NASA reply bytes,
        one hour for Gowalla check-in times).
    """

    dmin: float
    dmax: float
    bin_interval: float
    _num_leaves: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if self.bin_interval <= 0:
            raise DomainError(
                f"bin interval must be positive, got {self.bin_interval}"
            )
        if self.dmax <= self.dmin:
            raise DomainError(
                f"domain max {self.dmax} must exceed domain min {self.dmin}"
            )
        if self.dmax - self.dmin < self.bin_interval:
            raise DomainError("domain must span at least one bin")
        object.__setattr__(
            self,
            "_num_leaves",
            int(math.floor((self.dmax - self.dmin) / self.bin_interval)),
        )

    @property
    def num_leaves(self) -> int:
        """Number of histogram bins (index leaves) covering the domain."""
        return self._num_leaves

    def leaf_offset(self, value: float) -> int:
        """Leaf offset of ``value`` (the paper's ``Ov`` formula).

        Raises
        ------
        DomainError
            If ``value`` lies outside ``[dmin, dmax]``.
        """
        if value < self.dmin or value > self.dmax:
            raise DomainError(
                f"value {value} outside domain [{self.dmin}, {self.dmax}]"
            )
        offset = int(math.floor((value - self.dmin) / self.bin_interval))
        return min(offset, self.num_leaves - 1)

    def leaf_range(self, offset: int) -> tuple[float, float]:
        """The ``[low, high)`` interval of the leaf at ``offset``.

        The last leaf's interval is closed on the right so the full domain
        is covered (it absorbs any remainder of a non-divisible domain).
        """
        if not 0 <= offset < self.num_leaves:
            raise DomainError(
                f"leaf offset {offset} outside [0, {self.num_leaves})"
            )
        low = self.dmin + offset * self.bin_interval
        if offset == self.num_leaves - 1:
            return low, self.dmax
        return low, low + self.bin_interval

    def leaves_overlapping(self, low: float, high: float) -> range:
        """Offsets of all leaves intersecting the query range ``[low, high]``.

        Ranges entirely outside the domain yield an empty range; partially
        overlapping ranges are clipped to the domain.
        """
        if high < low:
            raise DomainError(f"empty query range [{low}, {high}]")
        if high < self.dmin or low > self.dmax:
            return range(0)
        clipped_low = max(low, self.dmin)
        clipped_high = min(high, self.dmax)
        return range(
            self.leaf_offset(clipped_low), self.leaf_offset(clipped_high) + 1
        )


def nasa_domain() -> AttributeDomain:
    """NASA reply-byte domain: 3421 bins of 1 KB (Section 7.1)."""
    return AttributeDomain(dmin=0, dmax=3421 * 1024, bin_interval=1024)


def gowalla_domain() -> AttributeDomain:
    """Gowalla check-in-time domain: 626 bins of one hour (Section 7.1)."""
    return AttributeDomain(dmin=0, dmax=626 * 3600, bin_interval=3600)
