"""Range-query traversal over a perturbed index.

A query starts at the root and recursively descends into any child whose
interval intersects the query range *and* whose noisy count is non-negative
(Section 4.1).  At overlapping leaves it returns the leaf offsets; the cloud
then hands back those leaves' records and overflow arrays.

Because counts are noisy, traversal is approximate: a leaf whose noisy count
went negative is pruned (its un-removed records are missed), and leaves kept
alive by positive noise may return dummies the client discards after
decryption.  The precision/recall consequences are measured in
``repro.analysis.quality``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.tree import IndexNode, IndexTree


@dataclass(frozen=True)
class RangeQuery:
    """A one-dimensional closed range predicate ``low <= Aq <= high``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"empty query range [{self.low}, {self.high}]")

    def contains(self, value: float) -> bool:
        """Whether ``value`` satisfies the predicate."""
        return self.low <= value <= self.high


@dataclass(frozen=True)
class TraversalResult:
    """Outcome of traversing a perturbed index for a query.

    Parameters
    ----------
    leaf_offsets:
        Offsets of the leaves the traversal reached (records + overflow
        arrays of these leaves are returned by the cloud).
    nodes_visited:
        Number of index nodes inspected — the query-cost metric.
    pruned_leaves:
        Offsets of overlapping leaves that were skipped because a node on
        their path had a negative noisy count (recall loss).
    """

    leaf_offsets: tuple[int, ...]
    nodes_visited: int
    pruned_leaves: tuple[int, ...]


def _collect_leaves(node: IndexNode, out: list[int]) -> None:
    if node.is_leaf:
        out.append(node.leaf_offset)
        return
    for child in node.children:
        _collect_leaves(child, out)


def traverse(tree: IndexTree, query: RangeQuery) -> TraversalResult:
    """Evaluate ``query`` over a (noisy) index tree.

    The root is always entered (PINED-RQ publishes the index so the whole
    dataset is reachable); children are pruned on negative counts.
    """
    reached: list[int] = []
    pruned: list[int] = []
    visited = 0
    stack = [tree.root] if tree.root.overlaps(query.low, query.high) else []
    while stack:
        node = stack.pop()
        visited += 1
        if node.is_leaf:
            if node.count < 0:
                pruned.append(node.leaf_offset)
            else:
                reached.append(node.leaf_offset)
            continue
        for child in node.children:
            if not child.overlaps(query.low, query.high):
                continue
            if child.count < 0:
                _collect_leaves(child, pruned)
                continue
            stack.append(child)
    reached.sort()
    pruned.sort()
    return TraversalResult(
        leaf_offsets=tuple(reached),
        nodes_visited=visited,
        pruned_leaves=tuple(pruned),
    )
