"""Overflow arrays.

When a leaf receives negative Laplace noise, PINED-RQ removes that many real
records from the dataset and stores them — encrypted — in the leaf's
*overflow array*: a fixed-size array padded with dummy records so its length
never reveals how many real records were removed (Section 4.1).  Queries
that touch a leaf return its overflow array too, so removed records are
never lost, only de-indexed.
"""

from __future__ import annotations

import random

from repro.records.record import EncryptedRecord


class OverflowError_(ValueError):
    """Raised when an overflow array is over-filled."""


class OverflowArray:
    """Fixed-size array of encrypted records attached to one leaf.

    Parameters
    ----------
    leaf_offset:
        The leaf this array belongs to.
    capacity:
        Fixed size; chosen from the inverse-CDF noise bound so it exceeds
        the removed-record count with probability δ.
    """

    def __init__(self, leaf_offset: int, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.leaf_offset = leaf_offset
        self.capacity = capacity
        self._entries: list[EncryptedRecord] = []
        self._real_count = 0
        self._sealed = False

    @property
    def entries(self) -> tuple[EncryptedRecord, ...]:
        """Current contents (removed real records, then padding once sealed)."""
        return tuple(self._entries)

    @property
    def real_count(self) -> int:
        """Number of genuinely removed records stored (trusted-side only)."""
        return self._real_count

    @property
    def is_sealed(self) -> bool:
        """Whether the array has been padded and shuffled for publication."""
        return self._sealed

    def __len__(self) -> int:
        return len(self._entries)

    def add_removed(self, record: EncryptedRecord) -> None:
        """Store one removed (real, encrypted) record.

        Raises
        ------
        OverflowError_
            If the array is sealed or already at capacity.
        """
        if self._sealed:
            raise OverflowError_("cannot add to a sealed overflow array")
        if len(self._entries) >= self.capacity:
            raise OverflowError_(
                f"overflow array for leaf {self.leaf_offset} is full "
                f"({self.capacity})"
            )
        self._entries.append(record)
        self._real_count += 1

    def seal(self, make_padding, rng: random.Random | None = None) -> None:
        """Pad to capacity with dummies and shuffle, ready for publication.

        Parameters
        ----------
        make_padding:
            Zero-argument callable producing one encrypted dummy record.
        rng:
            Randomness for the shuffle; seeded for reproducible tests.
        """
        if self._sealed:
            return
        while len(self._entries) < self.capacity:
            self._entries.append(make_padding())
        shuffle_rng = rng if rng is not None else random.Random()
        shuffle_rng.shuffle(self._entries)
        self._sealed = True
