"""PINED-RQ: the original batch publisher (Sahin et al.)."""

from repro.pinedrq.collector import BatchPublicationReport, PinedRqCollector

__all__ = ["BatchPublicationReport", "PinedRqCollector"]
