"""PINED-RQ (Sahin et al.): the batch publisher.

The original scheme buffers all records of a publishing interval at the
collector, then — in one synchronous step — builds the clear index, perturbs
it, materialises dummies and overflow arrays, encrypts everything and ships
the publication to the cloud.  This is the scheme that "incurs congestion as
incoming data rate is high" (Section 1); it serves as the family's reference
semantics and as a baseline in the benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cloud.node import FresqueCloud
from repro.crypto.cipher import RecordCipher
from repro.index.domain import AttributeDomain
from repro.index.overflow import OverflowArray
from repro.index.perturb import draw_noise_plan, perturb_clear_tree
from repro.index.tree import IndexTree
from repro.privacy.laplace import LaplaceMechanism
from repro.records.record import Record, make_dummy
from repro.records.schema import Schema
from repro.records.serialize import serialize_record


@dataclass(frozen=True)
class BatchPublicationReport:
    """What one batch publication did (inputs to the cost model)."""

    publication: int
    real_records: int
    dummies_added: int
    records_removed: int
    overflow_capacity: int
    encrypt_ops: int


class PinedRqCollector:
    """Trusted batch collector of the original PINED-RQ.

    Parameters
    ----------
    schema, domain:
        Relation schema and binned domain of the indexed attribute.
    cipher:
        Record cipher shared with the client.
    epsilon:
        Privacy budget per publication.
    delta:
        Probability with which overflow arrays are large enough (δ).
    fanout:
        Index branching factor.
    rng:
        Seeded randomness for noise, dummy placement and shuffles.
    """

    def __init__(
        self,
        schema: Schema,
        domain: AttributeDomain,
        cipher: RecordCipher,
        epsilon: float = 1.0,
        delta: float = 0.99,
        fanout: int = 16,
        rng: random.Random | None = None,
    ):
        self.schema = schema
        self.domain = domain
        self.cipher = cipher
        self.epsilon = epsilon
        self.delta = delta
        self.fanout = fanout
        self._rng = rng if rng is not None else random.Random()
        self._buffer: list[Record] = []
        self._publication = 0

    @property
    def buffered(self) -> int:
        """Records waiting for the next publication."""
        return len(self._buffer)

    def ingest(self, record: Record) -> None:
        """Buffer one record until the interval ends (the PINED-RQ way)."""
        self._buffer.append(record)

    def _encrypt(self, record: Record) -> bytes:
        return self.cipher.encrypt(serialize_record(record, self.schema))

    def _encrypted_dummy(self, leaf_offset: int) -> bytes:
        low, high = self.domain.leaf_range(leaf_offset)
        value = low if high <= low else low + self._rng.random() * (high - low)
        return self._encrypt(make_dummy(self.schema, value))

    def publish(self, cloud: FresqueCloud) -> BatchPublicationReport:
        """Build, perturb, encrypt and publish the buffered dataset."""
        from repro.records.record import EncryptedRecord

        publication = self._publication
        self._publication += 1
        records = self._buffer
        self._buffer = []
        cloud.announce_publication(publication)

        # Step 1: the clear index.
        per_leaf: list[list[Record]] = [[] for _ in range(self.domain.num_leaves)]
        for record in records:
            offset = self.domain.leaf_offset(record.indexed_value(self.schema))
            per_leaf[offset].append(record)
        tree = IndexTree(self.domain, fanout=self.fanout)
        tree.set_leaf_counts([len(bucket) for bucket in per_leaf])

        # Step 2: perturb every count.
        # fresque-lint: disable=FRQ-P311 -- PINED-RQ baseline reproduction: the published scheme spends a fixed per-publication epsilon and predates the accountant/ledger layer
        plan = draw_noise_plan(tree, self.epsilon, rng=self._rng)
        dummies, removals = perturb_clear_tree(tree, plan)
        bound = LaplaceMechanism(1.0 / plan.per_level_scale).positive_noise_bound(
            self.delta
        )

        encrypt_ops = 0
        dummies_added = 0
        removed_total = 0
        overflow: dict[int, OverflowArray] = {}
        for offset, bucket in enumerate(per_leaf):
            # Negative noise: move records into the overflow array.
            array = OverflowArray(offset, capacity=bound)
            to_remove = min(removals[offset], len(bucket), array.capacity)
            for _ in range(to_remove):
                victim = bucket.pop(self._rng.randrange(len(bucket)))
                array.add_removed(
                    EncryptedRecord(
                        leaf_offset=None,
                        ciphertext=self._encrypt(victim),
                        publication=publication,
                    )
                )
                encrypt_ops += 1
                removed_total += 1

            def padding(offset=offset):
                nonlocal encrypt_ops
                encrypt_ops += 1
                return EncryptedRecord(
                    leaf_offset=None,
                    ciphertext=self._encrypted_dummy(offset),
                    publication=publication,
                )

            array.seal(padding, rng=self._rng)
            overflow[offset] = array

            # Positive noise: link dummy records to the leaf.
            low, high = self.domain.leaf_range(offset)
            for _ in range(dummies[offset]):
                value = low if high <= low else low + self._rng.random() * (
                    high - low
                )
                bucket.append(make_dummy(self.schema, value))
                dummies_added += 1

        # Step 3: encrypt the (modified) dataset and publish everything.
        for offset, bucket in enumerate(per_leaf):
            for record in bucket:
                cloud.receive_pair(
                    publication,
                    offset,
                    EncryptedRecord(
                        leaf_offset=offset,
                        ciphertext=self._encrypt(record),
                        publication=publication,
                    ),
                )
                encrypt_ops += 1
        cloud.receive_publication(publication, tree, overflow)
        return BatchPublicationReport(
            publication=publication,
            real_records=len(records),
            dummies_added=dummies_added,
            records_removed=removed_total,
            overflow_capacity=sum(a.capacity for a in overflow.values()),
            encrypt_ops=encrypt_ops,
        )
