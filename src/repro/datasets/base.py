"""Common infrastructure for the synthetic workload generators.

The paper evaluates on the NASA HTTP log and the Gowalla check-in dataset;
neither is shipped here, so :mod:`repro.datasets` generates synthetic
equivalents with the same schemas, record sizes, domains and distribution
*shapes* (see DESIGN.md, substitutions).  Generators are deterministic
under a seed and can stream arbitrarily many records.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Iterator

from repro.index.domain import AttributeDomain
from repro.records.record import Record
from repro.records.schema import Schema
from repro.records.serialize import render_raw_line


class DatasetGenerator(ABC):
    """Streams synthetic records (and their raw-line encodings).

    Parameters
    ----------
    seed:
        Seed for the generator's private RNG.
    """

    #: Number of records in the real dataset the generator emulates.
    PAPER_RECORD_COUNT: int = 0

    def __init__(self, seed: int | None = None):
        self._rng = random.Random(seed)

    @property
    @abstractmethod
    def schema(self) -> Schema:
        """Relation schema of the generated records."""

    @property
    @abstractmethod
    def domain(self) -> AttributeDomain:
        """Binned domain of the indexed attribute."""

    @abstractmethod
    def record(self) -> Record:
        """Draw one synthetic record."""

    def records(self, count: int) -> Iterator[Record]:
        """Stream ``count`` records."""
        for _ in range(count):
            yield self.record()

    def raw_line(self) -> str:
        """Draw one record and render it as the raw line a source sends."""
        return render_raw_line(self.record(), self.schema)

    def raw_lines(self, count: int) -> Iterator[str]:
        """Stream ``count`` raw lines."""
        for _ in range(count):
            yield self.raw_line()

    def average_line_bytes(self, sample: int = 200) -> float:
        """Estimate the average raw-line size (drives the cost model)."""
        probe = type(self)(seed=1234)
        total = sum(len(line) for line in probe.raw_lines(sample))
        return total / sample
