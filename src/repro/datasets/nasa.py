"""Synthetic NASA HTTP log workload.

Emulates the NASA-HTTP access log used in the paper's evaluation:
1,569,898 records of five attributes, indexed on the reply size in bytes,
whose domain is cut into 3421 bins of 1 KB.  Reply sizes in real web logs
are heavy-tailed — most responses are small, a few are megabytes — so the
generator draws them log-normally (clipped to the domain), preserving the
skew that makes some index leaves dense and most sparse.

Raw lines mirror a Common-Log-Format-ish record (~90 bytes), roughly four
times a Gowalla line — the record-size gap behind NASA's lower absolute
throughput and larger FRESQUE improvement in Figures 9–11.
"""

from __future__ import annotations

import math

from repro.datasets.base import DatasetGenerator
from repro.index.domain import AttributeDomain, nasa_domain
from repro.records.record import Record
from repro.records.schema import Schema, nasa_log_schema

_REQUEST_PATHS = (
    "/shuttle/missions/sts-71/mission-sts-71.html",
    "/shuttle/countdown/",
    "/images/NASA-logosmall.gif",
    "/images/KSC-logosmall.gif",
    "/history/apollo/apollo-13/apollo-13.html",
    "/shuttle/missions/sts-70/images/images.html",
    "/cgi-bin/imagemap/countdown",
    "/ksc.html",
)

_STATUS_CODES = (200, 200, 200, 200, 200, 304, 302, 404)


class NasaLogGenerator(DatasetGenerator):
    """Draws synthetic NASA-log records."""

    PAPER_RECORD_COUNT = 1_569_898

    #: Log-normal parameters for reply bytes: median ~6 KB, long tail.
    _MU = math.log(6 * 1024)
    _SIGMA = 1.6

    @property
    def schema(self) -> Schema:
        return nasa_log_schema()

    @property
    def domain(self) -> AttributeDomain:
        return nasa_domain()

    def _reply_bytes(self) -> int:
        value = self._rng.lognormvariate(self._MU, self._SIGMA)
        return int(min(max(value, 0.0), self.domain.dmax))

    def record(self) -> Record:
        host = (
            f"host{self._rng.randrange(100_000):05d}."
            f"net{self._rng.randrange(100):02d}.example.com"
        )
        timestamp = 804_571_200 + self._rng.randrange(31 * 24 * 3600)
        request = (
            f"GET {self._rng.choice(_REQUEST_PATHS)} HTTP/1.0"
        )
        status = self._rng.choice(_STATUS_CODES)
        return Record(
            (host, timestamp, request, status, self._reply_bytes())
        )
