"""Loaders for the real evaluation datasets.

The paper evaluates on the NASA-HTTP access log and the SNAP Gowalla
check-in dataset.  Neither ships with this repository, but users who have
them can replay the *actual* files through any pipeline here: these
loaders parse the original formats into the repository's schemas.

* NASA-HTTP (``NASA_access_log_Jul95``) — Apache Common Log Format::

      host - - [01/Jul/1995:00:00:01 -0400] "GET /path HTTP/1.0" 200 6245

* Gowalla (``loc-gowalla_totalCheckins.txt``) — TSV::

      [user]  [check-in time ISO8601]  [latitude]  [longitude]  [location id]

Malformed lines are skipped and counted, matching the ingestion pipeline's
own resilience policy.
"""

from __future__ import annotations

import calendar
import re
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.records.record import Record
from repro.records.schema import Schema, gowalla_schema, nasa_log_schema

_CLF_PATTERN = re.compile(
    r'^(?P<host>\S+) \S+ \S+ \[(?P<timestamp>[^\]]+)\] '
    r'"(?P<request>[^"]*)" (?P<status>\d{3}) (?P<bytes>\d+|-)\s*$'
)

_MONTHS = {
    name: number
    for number, name in enumerate(calendar.month_abbr)
    if name
}

_ISO_PATTERN = re.compile(
    r"^(?P<year>\d{4})-(?P<month>\d{2})-(?P<day>\d{2})T"
    r"(?P<hour>\d{2}):(?P<minute>\d{2}):(?P<second>\d{2})Z?$"
)


def _clf_epoch(stamp: str) -> int:
    """Parse ``01/Jul/1995:00:00:01 -0400`` into a Unix timestamp."""
    date_part, _, offset = stamp.partition(" ")
    day, month_name, rest = date_part.split("/", 2)
    year, hour, minute, second = rest.split(":")
    epoch = calendar.timegm(
        (
            int(year),
            _MONTHS[month_name],
            int(day),
            int(hour),
            int(minute),
            int(second),
            0,
            0,
            0,
        )
    )
    if offset:
        sign = -1 if offset.startswith("-") else 1
        hours, minutes = int(offset[1:3]), int(offset[3:5])
        epoch -= sign * (hours * 3600 + minutes * 60)
    return epoch


@dataclass
class LoaderStats:
    """Outcome of one load: accepted and skipped line counts."""

    accepted: int = 0
    skipped: int = 0
    skip_reasons: dict[str, int] = field(default_factory=dict)

    def _skip(self, reason: str) -> None:
        self.skipped += 1
        self.skip_reasons[reason] = self.skip_reasons.get(reason, 0) + 1


class NasaLogLoader:
    """Parses Apache-CLF lines into ``nasa_log_schema`` records."""

    def __init__(self):
        self.stats = LoaderStats()

    @property
    def schema(self) -> Schema:
        return nasa_log_schema()

    def parse_line(self, line: str) -> Record | None:
        """One CLF line → record, or ``None`` (counted) if malformed."""
        match = _CLF_PATTERN.match(line)
        if match is None:
            self.stats._skip("no-clf-match")
            return None
        reply = match.group("bytes")
        if reply == "-":
            self.stats._skip("no-reply-size")
            return None
        try:
            timestamp = _clf_epoch(match.group("timestamp"))
        except (ValueError, KeyError):
            self.stats._skip("bad-timestamp")
            return None
        self.stats.accepted += 1
        return Record(
            (
                match.group("host"),
                timestamp,
                match.group("request"),
                int(match.group("status")),
                int(reply),
            )
        )

    def load(self, lines) -> Iterator[Record]:
        """Stream records from an iterable of CLF lines."""
        for line in lines:
            record = self.parse_line(line)
            if record is not None:
                yield record


class GowallaLoader:
    """Parses SNAP Gowalla check-in TSV lines into ``gowalla_schema``.

    Check-in times are mapped to *seconds since the dataset epoch* so
    they land in the paper's hour-binned domain.  The default origin is
    2009-02-01T00:00Z — just before the Gowalla dataset's earliest
    check-in (the SNAP file is reverse-chronological, so deriving the
    origin from the first line would mis-order everything); pass
    ``epoch_origin`` to pin a different origin.
    """

    #: 2009-02-01T00:00:00Z, preceding the dataset's first check-in.
    DEFAULT_ORIGIN = 1_233_446_400

    def __init__(self, epoch_origin: int | None = None):
        self.stats = LoaderStats()
        self._origin = (
            epoch_origin if epoch_origin is not None else self.DEFAULT_ORIGIN
        )

    @property
    def schema(self) -> Schema:
        return gowalla_schema()

    def parse_line(self, line: str) -> Record | None:
        """One TSV line → record, or ``None`` (counted) if malformed."""
        fields = line.rstrip("\n").split("\t")
        if len(fields) != 5:
            self.stats._skip("bad-field-count")
            return None
        user, stamp, _latitude, _longitude, location = fields
        match = _ISO_PATTERN.match(stamp)
        if match is None:
            self.stats._skip("bad-timestamp")
            return None
        epoch = calendar.timegm(
            (
                int(match["year"]),
                int(match["month"]),
                int(match["day"]),
                int(match["hour"]),
                int(match["minute"]),
                int(match["second"]),
                0,
                0,
                0,
            )
        )
        relative = epoch - self._origin
        if relative < 0:
            self.stats._skip("before-origin")
            return None
        try:
            self.stats.accepted += 1
            return Record((int(user), relative, int(location)))
        except ValueError:
            self.stats.accepted -= 1
            self.stats._skip("bad-ids")
            return None

    def load(self, lines) -> Iterator[Record]:
        """Stream records from an iterable of TSV lines."""
        for line in lines:
            record = self.parse_line(line)
            if record is not None:
                yield record


def load_file(path, loader) -> Iterator[Record]:
    """Stream records from a dataset file on disk."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        yield from loader.load(handle)
