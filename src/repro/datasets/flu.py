"""Synthetic participatory-surveillance (FluTracking) workload.

The paper's motivating use case (Sections 1 and 8): weekly symptom reports,
indexed by body temperature in tenths of a degree Celsius over [34.0, 42.0]
°C.  Most participants are afebrile (~36.5–37.2 °C); a small fraction runs
a fever, producing the skewed right shoulder an epidemiologist queries
(e.g. ``temperature >= 38.0``).
"""

from __future__ import annotations

from repro.datasets.base import DatasetGenerator
from repro.index.domain import AttributeDomain
from repro.records.record import Record
from repro.records.schema import Schema, flu_survey_schema

_SYMPTOMS = (
    "none",
    "cough",
    "fever;cough",
    "sore-throat",
    "fever;myalgia",
    "runny-nose",
)


def flu_domain() -> AttributeDomain:
    """Temperature domain: 34.0–42.0 °C in 0.1 °C bins (80 leaves)."""
    return AttributeDomain(dmin=340, dmax=420, bin_interval=1)


class FluSurveyGenerator(DatasetGenerator):
    """Draws synthetic weekly flu-survey records."""

    PAPER_RECORD_COUNT = 0  # motivating example, not an evaluated dataset

    def __init__(self, seed: int | None = None, week: int = 0, fever_rate: float = 0.06):
        super().__init__(seed)
        if not 0 <= fever_rate <= 1:
            raise ValueError(f"fever rate must be in [0, 1], got {fever_rate}")
        self.week = week
        self.fever_rate = fever_rate

    @property
    def schema(self) -> Schema:
        return flu_survey_schema()

    @property
    def domain(self) -> AttributeDomain:
        return flu_domain()

    def _temperature_dc(self) -> int:
        if self._rng.random() < self.fever_rate:
            value = self._rng.gauss(387, 6)  # febrile mode
        else:
            value = self._rng.gauss(368, 3)  # afebrile mode
        return int(min(max(value, self.domain.dmin), self.domain.dmax))

    def record(self) -> Record:
        participant = f"p{self._rng.randrange(1_000_000):06d}"
        return Record(
            (
                participant,
                self.week,
                self._temperature_dc(),
                self._rng.choice(_SYMPTOMS),
            )
        )
