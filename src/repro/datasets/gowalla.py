"""Synthetic Gowalla check-in workload.

Emulates the Gowalla location check-in dataset of the paper's evaluation:
6,442,892 records of three attributes, indexed on the check-in time, whose
domain is cut into 626 one-hour bins.  Check-ins follow a diurnal cycle —
few at night, peaks in the evening — which the generator reproduces with a
sinusoidal intensity over the 626-hour window, preserving the temporal
skew of the real data.

Raw lines are short (~20 bytes), about a quarter of a NASA line.
"""

from __future__ import annotations

import math

from repro.datasets.base import DatasetGenerator
from repro.index.domain import AttributeDomain, gowalla_domain
from repro.records.record import Record
from repro.records.schema import Schema, gowalla_schema


class GowallaGenerator(DatasetGenerator):
    """Draws synthetic Gowalla check-in records."""

    PAPER_RECORD_COUNT = 6_442_892

    @property
    def schema(self) -> Schema:
        return gowalla_schema()

    @property
    def domain(self) -> AttributeDomain:
        return gowalla_domain()

    def _checkin_time(self) -> int:
        """Rejection-sample an hour with diurnal intensity, then jitter."""
        while True:
            hour = self._rng.randrange(626)
            # Evening peak: intensity in [0.2, 1.0] over a 24 h cycle.
            intensity = 0.6 + 0.4 * math.sin(2 * math.pi * (hour % 24 - 14) / 24)
            if self._rng.random() <= intensity:
                break
        second = self._rng.randrange(3600)
        return min(hour * 3600 + second, int(self.domain.dmax))

    def record(self) -> Record:
        return Record(
            (
                self._rng.randrange(200_000),
                self._checkin_time(),
                self._rng.randrange(1_300_000),
            )
        )
