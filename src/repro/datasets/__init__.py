"""Synthetic workload generators emulating the paper's datasets."""

from repro.datasets.base import DatasetGenerator
from repro.datasets.flu import FluSurveyGenerator, flu_domain
from repro.datasets.gowalla import GowallaGenerator
from repro.datasets.loaders import (
    GowallaLoader,
    LoaderStats,
    NasaLogLoader,
    load_file,
)
from repro.datasets.nasa import NasaLogGenerator

__all__ = [
    "DatasetGenerator",
    "FluSurveyGenerator",
    "GowallaGenerator",
    "GowallaLoader",
    "LoaderStats",
    "NasaLogGenerator",
    "NasaLogLoader",
    "load_file",
    "flu_domain",
]
