"""Command-line interface.

Four subcommands exercise the library end to end::

    python -m repro demo                 # ingest + publish + query
    python -m repro capacity nasa        # nodes needed per target rate
    python -m repro figure fig9          # print one figure's reproduction
    python -m repro attack               # informed-attacker curve

Everything runs offline and deterministically under ``--seed``.
"""

from __future__ import annotations

import argparse
import random

from repro.analysis.attacker import advantage_vs_buffer
from repro.core.config import FresqueConfig
from repro.core.stats import collect_stats
from repro.core.system import FresqueSystem
from repro.crypto.cipher import SimulatedCipher
from repro.crypto.keys import KeyStore
from repro.datasets.flu import FluSurveyGenerator
from repro.simulation.analytic import (
    fresque_publishing_times,
    fresque_throughput,
    nonparallel_pp_throughput,
    parallel_pp_throughput,
)
from repro.simulation.costs import cost_model_for


def _cmd_demo(args: argparse.Namespace) -> int:
    generator = FluSurveyGenerator(seed=args.seed)
    config = FresqueConfig(
        schema=generator.schema,
        domain=generator.domain,
        num_computing_nodes=args.nodes,
        epsilon=args.epsilon,
    )
    cipher = SimulatedCipher(KeyStore(random.Random(args.seed).randbytes(32)))
    system = FresqueSystem(config, cipher, seed=args.seed)
    system.start()
    summary = system.run_publication(list(generator.raw_lines(args.records)))
    print(
        f"publication {summary.publication}: {summary.real_records} real, "
        f"{summary.dummies} dummies, {summary.removed} removed, "
        f"{summary.published_pairs} pairs published"
    )
    result = system.query(380, 420)
    print(f"fever query [38.0, 42.0] C -> {len(result.records)} records")
    print(collect_stats(system).render())
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    costs = cost_model_for(args.dataset)
    print(f"{args.dataset}: throughput by computing-node count")
    print(f"{'nodes':>6} {'FRESQUE':>10} {'par-PP':>10} {'nonpar-PP':>10}")
    nonparallel = nonparallel_pp_throughput(costs)
    for nodes in range(2, args.max_nodes + 1, 2):
        fresque = fresque_throughput(costs, nodes)
        parallel = parallel_pp_throughput(costs, nodes)
        print(
            f"{nodes:>6} {fresque / 1000:>9.1f}k {parallel / 1000:>9.1f}k "
            f"{nonparallel / 1000:>9.1f}k"
        )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    costs = cost_model_for(args.dataset)
    if args.figure == "fig9":
        print(f"Figure 9 ({args.dataset}): FRESQUE throughput")
        for nodes in (2, 4, 6, 8, 10, 12):
            print(f"  {nodes:>2} nodes: "
                  f"{fresque_throughput(costs, nodes) / 1000:.1f}k records/s")
    elif args.figure == "fig13":
        print(f"Figure 13 ({args.dataset}): publishing times")
        for nodes in (2, 4, 6, 8, 10, 12):
            times = fresque_publishing_times(costs, nodes)
            print(
                f"  {nodes:>2} nodes: dispatcher {times.dispatcher * 1000:6.1f} ms, "
                f"merger {times.merger * 1000:6.1f} ms, "
                f"checking {times.checking_node * 1000:6.1f} ms, "
                f"cloud {times.cloud * 1000:6.1f} ms"
            )
    else:
        print(
            "unknown figure; available: fig9, fig13 "
            "(run `pytest benchmarks/ --benchmark-only -s` for all)"
        )
        return 2
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    sizes = [1, 10, 50, args.dummies, 2 * args.dummies, 4 * args.dummies]
    curve = advantage_vs_buffer(
        n_real=args.records,
        n_dummies=args.dummies,
        buffer_sizes=sizes,
        trials=5,
        seed=args.seed,
    )
    print("informed-attacker dummy identification rate by buffer size:")
    for size in sizes:
        note = "  <- alpha=2 sizing" if size == 2 * args.dummies else ""
        print(f"  buffer {size:>6}: {curve[size]:6.1%}{note}")
    return 0


def _cmd_node(args: argparse.Namespace) -> int:
    from repro.runtime.process import run_node

    return run_node(args.role, args.config)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="FRESQUE reproduction CLI"
    )
    parser.add_argument("--seed", type=int, default=2021)
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="ingest, publish and query")
    demo.add_argument("--records", type=int, default=2000)
    demo.add_argument("--nodes", type=int, default=3)
    demo.add_argument("--epsilon", type=float, default=1.0)
    demo.set_defaults(func=_cmd_demo)

    capacity = sub.add_parser("capacity", help="throughput by node count")
    capacity.add_argument("dataset", choices=["nasa", "gowalla"])
    capacity.add_argument("--max-nodes", type=int, default=12)
    capacity.set_defaults(func=_cmd_capacity)

    figure = sub.add_parser("figure", help="print one figure reproduction")
    figure.add_argument("figure", help="fig9 or fig13")
    figure.add_argument(
        "--dataset", choices=["nasa", "gowalla"], default="nasa"
    )
    figure.set_defaults(func=_cmd_figure)

    attack = sub.add_parser("attack", help="informed-attacker curve")
    attack.add_argument("--records", type=int, default=4000)
    attack.add_argument("--dummies", type=int, default=200)
    attack.set_defaults(func=_cmd_attack)

    node = sub.add_parser(
        "node", help="serve one collector node (multi-process deployment)"
    )
    node.add_argument(
        "--role", required=True, help="cn-<i>, checking, merger or cloud"
    )
    node.add_argument(
        "--config", required=True, help="path to the cluster.json spec"
    )
    node.set_defaults(func=_cmd_node)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
