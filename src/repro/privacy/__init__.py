"""Differential-privacy substrate: Laplace mechanism and budget accounting."""

from repro.privacy.accountant import PublicationAccountant, PublicationGrant
from repro.privacy.budget import BudgetExhausted, PrivacyBudget, per_level_epsilon
from repro.privacy.laplace import (
    LaplaceMechanism,
    laplace_cdf,
    laplace_inverse_cdf,
    laplace_pdf,
)

__all__ = [
    "BudgetExhausted",
    "LaplaceMechanism",
    "PrivacyBudget",
    "PublicationAccountant",
    "PublicationGrant",
    "laplace_cdf",
    "laplace_inverse_cdf",
    "laplace_pdf",
    "per_level_epsilon",
]
