"""The Laplace mechanism and Laplace distribution utilities.

PINED-RQ perturbs every index-node count with Laplace noise (Section 4.1,
step 2) and FRESQUE sizes the randomer buffer from the *inverse CDF* of the
Laplace distribution (Section 5.2), so both the sampler and the quantile
function live here.
"""

from __future__ import annotations

import math
import random


def laplace_pdf(x: float, scale: float) -> float:
    """Probability density of Laplace(0, ``scale``) at ``x``."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return math.exp(-abs(x) / scale) / (2.0 * scale)


def laplace_cdf(x: float, scale: float) -> float:
    """Cumulative distribution of Laplace(0, ``scale``) at ``x``."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if x < 0:
        return 0.5 * math.exp(x / scale)
    return 1.0 - 0.5 * math.exp(-x / scale)


def laplace_inverse_cdf(probability: float, scale: float) -> float:
    """Quantile function of Laplace(0, ``scale``).

    FRESQUE uses this with a high probability δ' to bound the number of dummy
    records a leaf can receive: ``s_i = inverse_cdf(δ', b)`` is exceeded by
    the leaf's positive noise only with probability 1 - δ'.
    """
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {probability}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if probability < 0.5:
        return scale * math.log(2.0 * probability)
    return -scale * math.log(2.0 * (1.0 - probability))


class LaplaceMechanism:
    """Draws Laplace noise calibrated to a query sensitivity.

    Parameters
    ----------
    epsilon:
        Privacy budget ε of the releases this mechanism serves.
    sensitivity:
        L1 sensitivity of the released function.  Each count in a PINED-RQ
        index changes by at most 1 when one record is added or removed, but a
        record affects one node per *level*, so the per-level sensitivity is
        1 and the per-level budget is ε / height (handled by the caller via
        :class:`~repro.privacy.budget.PrivacyBudget`).
    rng:
        Source of randomness; pass a seeded :class:`random.Random` for
        reproducible experiments.
    """

    def __init__(
        self,
        epsilon: float,
        sensitivity: float = 1.0,
        rng: random.Random | None = None,
    ):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self.epsilon = epsilon
        self.sensitivity = sensitivity
        self._rng = rng if rng is not None else random.Random()

    @property
    def scale(self) -> float:
        """Scale b = sensitivity / ε of the Laplace noise."""
        return self.sensitivity / self.epsilon

    def sample(self) -> float:
        """Draw one Laplace(0, b) noise value by inverse-CDF sampling."""
        u = self._rng.random() - 0.5
        # Guard the log against u == -0.5 (probability-zero edge of random()).
        magnitude = -self.scale * math.log(max(1.0 - 2.0 * abs(u), 1e-300))
        return math.copysign(magnitude, u)

    def sample_integer(self) -> int:
        """Draw noise rounded to the nearest integer (counts are integral)."""
        return round(self.sample())

    def perturb(self, true_value: float) -> float:
        """Release ``true_value + Laplace(0, b)``."""
        return true_value + self.sample()

    def perturb_count(self, count: int) -> int:
        """Release an integral noisy count (may be negative)."""
        return count + self.sample_integer()

    def positive_noise_bound(self, probability: float) -> int:
        """Upper bound on the noise, exceeded with probability 1 - ``probability``.

        This is the per-leaf ``s_i`` of Section 5.2: the number of dummy
        records a leaf needs is at most ``s_i`` with probability δ'.
        """
        return max(0, math.ceil(laplace_inverse_cdf(probability, self.scale)))
