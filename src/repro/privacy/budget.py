"""Privacy budget accounting.

Implements sequential composition (Theorem 1): the total budget ε_total of a
dataset is split across releases, and an exhausted budget refuses further
spending.  The PINED-RQ index spends its per-publication budget uniformly
across index *levels*, since one record touches exactly one node per level.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class BudgetExhausted(RuntimeError):
    """Raised when a spend request exceeds the remaining privacy budget."""


@dataclass
class PrivacyBudget:
    """A mutable ε budget with sequential-composition accounting.

    Parameters
    ----------
    total_epsilon:
        The total budget ε_total available over the lifetime of the data.
    """

    total_epsilon: float
    _spent: float = field(default=0.0, init=False)
    _history: list[tuple[str, float]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.total_epsilon <= 0:
            raise ValueError(
                f"total epsilon must be positive, got {self.total_epsilon}"
            )

    @property
    def spent(self) -> float:
        """Budget consumed so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return self.total_epsilon - self._spent

    @property
    def history(self) -> tuple[tuple[str, float], ...]:
        """(label, epsilon) pairs of every successful spend, in order."""
        return tuple(self._history)

    def can_spend(self, epsilon: float) -> bool:
        """Whether ``epsilon`` more budget is available."""
        return epsilon > 0 and self._spent + epsilon <= self.total_epsilon + 1e-12

    def spend(self, epsilon: float, label: str = "") -> float:
        """Consume ``epsilon`` of the budget.

        Returns the amount spent, for chaining into mechanism constructors.

        Raises
        ------
        BudgetExhausted
            If the request exceeds the remaining budget.
        ValueError
            If ``epsilon`` is not positive.
        """
        if epsilon <= 0:
            raise ValueError(f"spend must be positive, got {epsilon}")
        if not self.can_spend(epsilon):
            raise BudgetExhausted(
                f"cannot spend {epsilon}: only {self.remaining:.6g} of "
                f"{self.total_epsilon} remains"
            )
        self._spent += epsilon
        self._history.append((label, epsilon))
        return epsilon

    def split_evenly(self, parts: int) -> float:
        """Per-part ε when the *remaining* budget is split into ``parts``.

        Used by the FluTracking-style deployment (Section 8): an admin who
        must keep indices for 52 weeks divides ε_total into 52 equal weekly
        shares.
        """
        if parts <= 0:
            raise ValueError(f"parts must be positive, got {parts}")
        return self.remaining / parts


def per_level_epsilon(publication_epsilon: float, height: int) -> float:
    """ε available to each level of an index of the given height.

    One record contributes to exactly one count per level, so by sequential
    composition across levels a publication budget ε yields ε / height per
    level.
    """
    if height <= 0:
        raise ValueError(f"height must be positive, got {height}")
    if publication_epsilon <= 0:
        raise ValueError(
            f"publication epsilon must be positive, got {publication_epsilon}"
        )
    return publication_epsilon / height
