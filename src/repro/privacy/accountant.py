"""Multi-publication privacy accountant.

The paper's Section 8 discusses budget management across periodic
publications (one publication per week in the FluTracking use case, at most
one record per individual per publication).  :class:`PublicationAccountant`
implements that policy: a total budget, a planned horizon of publications,
and per-publication shares released one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.privacy.budget import BudgetExhausted, PrivacyBudget


@dataclass(frozen=True)
class PublicationGrant:
    """The budget share granted to one publication.

    Parameters
    ----------
    publication:
        The monotonic publication number the grant is bound to.
    epsilon:
        The ε the publication's index may consume.
    """

    publication: int
    epsilon: float


class PublicationAccountant:
    """Grants equal per-publication ε shares over a fixed horizon.

    Parameters
    ----------
    total_epsilon:
        The overall budget ε_total for the data subject population.
    horizon:
        Number of publications the budget must last for (e.g. 52 weeks).

    Notes
    -----
    Under the paper's assumption of at most one record per individual per
    publication, each individual's records appear in disjoint datasets, so
    each publication's index is an independent ε_pub-DP release and the
    per-individual total over the horizon is ε_total by sequential
    composition.
    """

    def __init__(self, total_epsilon: float, horizon: int):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self._budget = PrivacyBudget(total_epsilon)
        self._horizon = horizon
        self._share = total_epsilon / horizon
        self._granted = 0

    @property
    def per_publication_epsilon(self) -> float:
        """The equal share each publication receives."""
        return self._share

    @property
    def publications_granted(self) -> int:
        """Number of grants issued so far."""
        return self._granted

    @property
    def publications_remaining(self) -> int:
        """Grants still available within the horizon."""
        return self._horizon - self._granted

    @property
    def remaining_epsilon(self) -> float:
        """Unspent portion of the total budget."""
        return self._budget.remaining

    def grant(self) -> PublicationGrant:
        """Issue the next publication's budget share.

        Raises
        ------
        BudgetExhausted
            Once the horizon has been fully consumed.
        """
        if self._granted >= self._horizon:
            raise BudgetExhausted(
                f"all {self._horizon} publication grants already issued"
            )
        publication = self._granted
        self._budget.spend(self._share, label=f"publication-{publication}")
        self._granted += 1
        return PublicationGrant(publication=publication, epsilon=self._share)
