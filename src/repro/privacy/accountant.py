"""Multi-publication privacy accountant.

The paper's Section 8 discusses budget management across periodic
publications (one publication per week in the FluTracking use case, at most
one record per individual per publication).  :class:`PublicationAccountant`
implements that policy: a total budget, a planned horizon of publications,
and per-publication shares released one at a time.

Grants are thread-safe (the threaded runtimes may open publications from
worker threads) and optionally *durable*: with a
:class:`~repro.durability.ledger.BudgetLedger` attached, every grant is a
two-phase **intent → commit** append, so a collector crash between grant
and publish can never double-spend ε — recovery counts un-committed
intents as spent (the safe direction).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.privacy.budget import BudgetExhausted, PrivacyBudget


@dataclass(frozen=True)
class PublicationGrant:
    """The budget share granted to one publication.

    Parameters
    ----------
    publication:
        The monotonic publication number the grant is bound to.
    epsilon:
        The ε the publication's index may consume.
    """

    publication: int
    epsilon: float


class PublicationAccountant:
    """Grants equal per-publication ε shares over a fixed horizon.

    Parameters
    ----------
    total_epsilon:
        The overall budget ε_total for the data subject population.
    horizon:
        Number of publications the budget must last for (e.g. 52 weeks).
    ledger:
        Optional :class:`~repro.durability.ledger.BudgetLedger`.  When
        given, :meth:`grant` appends a durable *intent* entry **before**
        the in-memory budget moves (the ``FRQ-D703`` invariant) and
        :meth:`commit` appends the matching entry after the cloud
        acknowledged the publication.

    Notes
    -----
    Under the paper's assumption of at most one record per individual per
    publication, each individual's records appear in disjoint datasets, so
    each publication's index is an independent ε_pub-DP release and the
    per-individual total over the horizon is ε_total by sequential
    composition.
    """

    def __init__(self, total_epsilon: float, horizon: int, ledger=None):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self._budget = PrivacyBudget(total_epsilon)
        self._horizon = horizon
        self._share = total_epsilon / horizon
        self._granted = 0
        self._committed: set[int] = set()
        self._ledger = ledger
        # grant() is check-then-act on the granted counter; concurrent
        # callers must never each pass the horizon check.
        self._lock = threading.Lock()

    @property
    def per_publication_epsilon(self) -> float:
        """The equal share each publication receives."""
        return self._share

    @property
    def publications_granted(self) -> int:
        """Number of grants issued so far."""
        return self._granted

    @property
    def publications_remaining(self) -> int:
        """Grants still available within the horizon."""
        return self._horizon - self._granted

    @property
    def remaining_epsilon(self) -> float:
        """Unspent portion of the total budget."""
        return self._budget.remaining

    @property
    def committed_publications(self) -> frozenset[int]:
        """Grants whose publication was acknowledged (ledger-committed)."""
        return frozenset(self._committed)

    def uncommitted_grants(self) -> frozenset[int]:
        """Granted publications never committed — spent but unpublished."""
        return frozenset(range(self._granted)) - self._committed

    def grant(self) -> PublicationGrant:
        """Issue the next publication's budget share.

        With a ledger attached the intent entry is fsync'd to disk
        *before* any in-memory state changes, so a crash at any point
        leaves the grant either fully durable or never made.

        Raises
        ------
        BudgetExhausted
            Once the horizon has been fully consumed.
        """
        with self._lock:
            if self._granted >= self._horizon:
                raise BudgetExhausted(
                    f"all {self._horizon} publication grants already issued"
                )
            publication = self._granted
            if self._ledger is not None:
                self._ledger.append_intent(publication, self._share)
            self._budget.spend(self._share, label=f"publication-{publication}")
            self._granted += 1
            return PublicationGrant(
                publication=publication, epsilon=self._share
            )

    def commit(self, publication: int) -> None:
        """Mark a granted publication as published (second ledger phase).

        Raises
        ------
        ValueError
            If the publication was never granted.
        """
        with self._lock:
            if not 0 <= publication < self._granted:
                raise ValueError(
                    f"publication {publication} was never granted"
                )
            if publication in self._committed:
                return
            if self._ledger is not None:
                self._ledger.append_commit(publication)
            self._committed.add(publication)

    @classmethod
    def restore(
        cls, total_epsilon: float, horizon: int, ledger
    ) -> "PublicationAccountant":
        """Rebuild an accountant from its ledger after a crash.

        Every ledgered intent is replayed as spent — committed or not —
        so the restored :meth:`remaining_epsilon` is never higher than
        what the crashed process had durably granted.
        """
        state = ledger.replay()
        accountant = cls(total_epsilon, horizon, ledger=ledger)
        for publication in sorted(state.intents):
            if publication != accountant._granted:
                from repro.durability.journal import JournalCorrupt

                raise JournalCorrupt(
                    f"ledger intents are not contiguous at {publication}"
                )
            accountant._budget.spend(
                state.intents[publication],
                label=f"publication-{publication}",
            )
            accountant._granted += 1
        accountant._committed = set(state.committed)
        return accountant
