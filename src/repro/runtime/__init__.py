"""Execution substrates: threaded actors, TCP sockets, wire encoding."""

from repro.runtime.channel import POISON, Inbox, InFlightTracker
from repro.runtime.cluster import ThreadedFresque
from repro.runtime.process import ProcessCluster, run_node
from repro.runtime.tcp import Router, TcpFresqueCluster, TcpNode
from repro.runtime.wire import (
    WireError,
    decode_message,
    decode_tree,
    encode_message,
    encode_tree,
    read_frames,
)

__all__ = [
    "Inbox",
    "InFlightTracker",
    "POISON",
    "ProcessCluster",
    "Router",
    "TcpFresqueCluster",
    "TcpNode",
    "ThreadedFresque",
    "WireError",
    "decode_message",
    "decode_tree",
    "encode_message",
    "encode_tree",
    "read_frames",
    "run_node",
]
