"""Multi-process FRESQUE deployment.

Runs each collector node as a separate **operating-system process** (via
``python -m repro node ...``), connected only by the TCP wire protocol —
the closest this repository gets to the paper's physical 17-node cluster.
A :class:`ProcessCluster` writes the address book, spawns the node
processes, drives the dispatcher from the parent, and queries the cloud
process over a small control channel.

The node-side entry point is :func:`run_node`, reachable from the CLI::

    python -m repro node --role checking --config cluster.json

Roles: ``cn-<i>``, ``checking``, ``merger``, ``cloud``.  The cloud role
additionally answers ``query``/``stats`` requests on a control port so the
parent can retrieve results without sharing memory.
"""

from __future__ import annotations

import json
import pathlib
import random
import socket
import subprocess
import sys
import time

from repro.core.config import FresqueConfig
from repro.core.dispatcher import Dispatcher
from repro.runtime.backoff import await_condition
from repro.runtime.roles import (
    SCHEMAS as _SCHEMAS,  # noqa: F401  (re-exported; see runtime.roles)
    build_handler as _build_handler,
    load_spec as _config_from_spec,
    spec_from_config as _spec_from_config,
)
from repro.runtime.tcp import Router, TcpNode
from repro.telemetry.clock import WALL_CLOCK


def _serve_control(cloud, adapter, cipher, schema, port_file: pathlib.Path):
    """Cloud-process control channel: queries and status over JSON lines."""
    from repro.client.query_client import QueryClient

    server = socket.socket()
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind(("127.0.0.1", 0))
    server.listen(4)
    port_file.write_text(str(server.getsockname()[1]))
    client = QueryClient(schema, cipher, cloud)
    while True:
        connection, _ = server.accept()
        with connection:
            request = json.loads(connection.makefile("r").readline())
            if request["op"] == "status":
                response = {
                    "publications": [
                        r.publication for r in adapter.receipts
                    ],
                    "records": [r.records_matched for r in adapter.receipts],
                }
            elif request["op"] == "query":
                result = client.range_query(request["low"], request["high"])
                response = {
                    "count": len(result.records),
                    "values": [list(r.values) for r in result.records[:100]],
                }
            elif request["op"] == "shutdown":
                connection.sendall(b'{"ok": true}\n')
                return
            else:
                response = {"error": f"unknown op {request['op']}"}
            connection.sendall((json.dumps(response) + "\n").encode())


def run_node(role: str, config_path: str) -> int:
    """Node-process entry point: serve ``role`` until killed.

    Reads the cluster spec (ports, schema, key) from ``config_path``,
    binds this role's pre-assigned port, and processes frames forever.
    """
    spec = json.loads(pathlib.Path(config_path).read_text())
    config, cipher = _config_from_spec(spec)
    handler, extra = _build_handler(role, config, cipher, spec.get("seeds", {}))
    router = Router(dict(spec["ports"]))
    node = TcpNode(role, handler, router, port=spec["ports"][role])
    node.start()
    if role == "cloud":
        cloud, adapter = extra
        control_file = pathlib.Path(spec["workdir"]) / "cloud-control-port"
        _serve_control(cloud, adapter, cipher, config.schema, control_file)
        node.stop()
        return 0
    # Non-cloud roles serve until the parent kills them.
    while True:
        time.sleep(3600)


class ProcessCluster:
    """Spawns one OS process per node and drives the dispatcher locally.

    Parameters
    ----------
    config:
        Deployment configuration (its schema must be one of the built-in
        named schemas so node processes can reconstruct it).
    key:
        Shared master key (bytes).
    workdir:
        Directory for the cluster spec and control files.
    """

    def __init__(
        self,
        config: FresqueConfig,
        key: bytes,
        workdir: str | pathlib.Path,
        seed: int | None = None,
    ):
        self.config = config
        self.workdir = pathlib.Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self._key = key
        rng = random.Random(seed)
        self.dispatcher = Dispatcher(config, rng=random.Random(rng.random()))
        self._roles = [
            f"cn-{i}" for i in range(config.num_computing_nodes)
        ] + ["checking", "merger", "cloud"]
        ports = {}
        for role in self._roles:
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            ports[role] = probe.getsockname()[1]
            probe.close()
        self._spec = {
            **_spec_from_config(config, key),
            "ports": ports,
            "workdir": str(self.workdir),
            "seeds": {"checking": rng.randrange(2**31),
                      "merger": rng.randrange(2**31)},
        }
        self._spec_path = self.workdir / "cluster.json"
        self._spec_path.write_text(json.dumps(self._spec))
        self.router = Router(ports)
        self._processes: list[subprocess.Popen] = []

    def start(self, timeout: float = 30.0) -> None:
        """Spawn every node process and wait until all ports answer."""
        for role in self._roles:
            self._processes.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "node",
                        "--role",
                        role,
                        "--config",
                        str(self._spec_path),
                    ],
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )
        deadline = WALL_CLOCK.now() + timeout

        def _port_answers(port):
            def probe():
                try:
                    # fresque-lint: disable=FRQ-R601 -- liveness probe; failure is the expected signal
                    socket.create_connection(("127.0.0.1", port), 0.2).close()
                    return True
                # fresque-lint: disable=FRQ-R602 -- falsy result keeps the backoff loop polling
                except OSError:
                    return None

            return probe

        for role, port in self._spec["ports"].items():
            await_condition(
                _port_answers(port),
                max(0.0, deadline - WALL_CLOCK.now()),
                f"node {role} never came up",
            )
        self._send(self.dispatcher.start_publication())

    def _send(self, outbox) -> None:
        for destination, message in outbox:
            self.router.send(destination, message)

    def run_publication(self, lines: list[str], timeout: float = 60.0) -> int:
        """Ingest, close the publication, wait for the cloud to match it."""
        publication = self.dispatcher.publication
        total = max(1, len(lines))
        for position, line in enumerate(lines):
            self._send(self.dispatcher.due_dummies((position + 1) / (total + 1)))
            self._send(self.dispatcher.on_raw(line))
        self._send(self.dispatcher.end_publication())
        self._send(self.dispatcher.start_publication())

        def matched():
            status = self._control({"op": "status"})
            if status is not None and publication in status["publications"]:
                index = status["publications"].index(publication)
                # +1 so a zero-record publication still reads as truthy.
                return status["records"][index] + 1
            return None

        return (
            await_condition(
                matched, timeout, f"publication {publication} never matched"
            )
            - 1
        )

    def _control(self, request: dict) -> dict | None:
        port_file = self.workdir / "cloud-control-port"
        if not port_file.exists():
            return None
        try:
            port = int(port_file.read_text())
            # fresque-lint: disable=FRQ-R601 -- one-shot control request; the caller polls
            connection = socket.create_connection(("127.0.0.1", port), 5)
        # fresque-lint: disable=FRQ-R602 -- None signals "cloud not up yet" to the polling caller
        except (OSError, ValueError):
            return None
        with connection:
            connection.sendall((json.dumps(request) + "\n").encode())
            return json.loads(connection.makefile("r").readline())

    def query(self, low: float, high: float) -> dict:
        """Range query answered by the cloud *process*."""
        response = self._control({"op": "query", "low": low, "high": high})
        if response is None:
            raise RuntimeError("cloud control channel unavailable")
        return response

    def shutdown(self) -> None:
        """Terminate every node process."""
        self._control({"op": "shutdown"})
        self.router.close()
        for process in self._processes:
            process.terminate()
        for process in self._processes:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.kill()
        self._processes.clear()

    def __enter__(self) -> "ProcessCluster":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
