"""Role construction shared by the multiprocess runtimes.

Both the TCP :class:`~repro.runtime.process.ProcessCluster` and the
shared-memory :class:`~repro.runtime.shm.ShmFresqueCluster` describe a
deployment as a JSON-able *spec* (schema name, domain bounds, node
count, key, per-role seeds) that worker processes reconstruct on their
side of the process boundary.  This module owns that reconstruction —
spec → :class:`FresqueConfig`, spec → cipher, role name → message
handler — so the two runtimes cannot drift apart on what a role does.
"""

from __future__ import annotations

import dataclasses
import random

from repro.core.config import FresqueConfig
from repro.crypto.cipher import RecordCipher, SimulatedCipher
from repro.crypto.keys import KeyStore
from repro.datasets.flu import flu_domain
from repro.index.domain import AttributeDomain, gowalla_domain, nasa_domain
from repro.records.schema import (
    Schema,
    flu_survey_schema,
    gowalla_schema,
    nasa_log_schema,
)

SCHEMAS = {
    "flu_survey": (flu_survey_schema, flu_domain),
    "gowalla": (gowalla_schema, gowalla_domain),
    "nasa_log": (nasa_log_schema, nasa_domain),
}


#: Scalar ``FresqueConfig`` fields carried verbatim in a cluster spec.
#: Derived from the dataclass itself so a new config field automatically
#: rides every spec — the drift the hardcoded field list used to allow
#: (schema/domain get structured entries; ``num_computing_nodes`` keeps
#: its legacy ``computing_nodes`` spec key).
_SCALAR_FIELDS: tuple[str, ...] = tuple(
    f.name
    for f in dataclasses.fields(FresqueConfig)
    if f.init and f.name not in ("schema", "domain", "num_computing_nodes")
)

#: Field → dataclass default, the single source of truth for spec
#: fallbacks (a spec written by an older parent simply omits the field).
_FIELD_DEFAULTS: dict[str, object] = {
    f.name: f.default
    for f in dataclasses.fields(FresqueConfig)
    if f.init and f.default is not dataclasses.MISSING
}


def spec_from_config(config: FresqueConfig, key: bytes) -> dict:
    """The JSON-able spec a worker needs to rebuild ``config``."""
    spec = {
        "schema": config.schema.name,
        "domain": {
            "dmin": config.domain.dmin,
            "dmax": config.domain.dmax,
            "bin": config.domain.bin_interval,
        },
        "computing_nodes": config.num_computing_nodes,
        "key_hex": key.hex(),
    }
    for name in _SCALAR_FIELDS:
        spec[name] = getattr(config, name)
    return spec


def config_from_spec(spec: dict) -> FresqueConfig:
    """Rebuild the deployment configuration from a cluster spec.

    Missing scalar fields fall back to the ``FresqueConfig`` dataclass
    defaults — never to values hardcoded here, which drifted once
    already (``max_batch_delay``).
    """
    schema_name = spec["schema"]
    if schema_name in SCHEMAS:
        schema_factory, domain_factory = SCHEMAS[schema_name]
        schema: Schema = schema_factory()
        domain = domain_factory()
    else:
        raise ValueError(f"unknown schema {schema_name!r}")
    if "domain" in spec:
        d = spec["domain"]
        domain = AttributeDomain(d["dmin"], d["dmax"], d["bin"])
    return FresqueConfig(
        schema=schema,
        domain=domain,
        num_computing_nodes=spec["computing_nodes"],
        **{
            name: spec.get(name, _FIELD_DEFAULTS[name])
            for name in _SCALAR_FIELDS
        },
    )


def cipher_from_spec(spec: dict, counter_start: int = 0) -> RecordCipher:
    """Rebuild the shared record cipher from a cluster spec.

    ``counter_start`` partitions the simulated cipher's IV-counter space
    between worker processes (each gets a disjoint range), so counter
    IVs stay unique across a deployment that no longer shares the
    counter lock.  Deterministic-IV deployments do not depend on it —
    their IVs derive from dispatch ordinals — but the offsets keep
    non-deterministic multiprocess runs safe too.
    """
    return SimulatedCipher(
        KeyStore(bytes.fromhex(spec["key_hex"])), counter_start=counter_start
    )


def load_spec(spec: dict) -> tuple[FresqueConfig, RecordCipher]:
    """Spec → (config, cipher), the worker-side entry point."""
    return config_from_spec(spec), cipher_from_spec(spec)


def build_handler(role: str, config, cipher, seeds: dict):
    """Instantiate the component for ``role`` and return (handler, extra).

    ``handler`` maps one inbound message to an outbox of
    ``(destination, message)`` pairs — the transport-agnostic contract
    every runtime drives; ``extra`` exposes the underlying component(s)
    for stats and control channels.  ``seeds`` carries per-role RNG
    seeds (``random.Random`` accepts ints and floats alike; the
    shared-memory cluster passes the float chain the in-memory
    :class:`~repro.core.system.FresqueSystem` derives, for bytewise
    equivalence).
    """
    if role.startswith("cn-"):
        from repro.core.computing_node import ComputingNode
        from repro.core.messages import (
            DoneMsg,
            PublishingMsg,
            RawBatch,
            RawData,
        )

        node = ComputingNode(int(role[3:]), config, cipher)

        def handle(message):
            if isinstance(message, RawBatch):
                return node.on_raw_batch(message)
            if isinstance(message, RawData):
                return node.on_raw(message)
            if isinstance(message, PublishingMsg):
                return node.on_publishing(message.publication)
            if isinstance(message, DoneMsg):
                return node.on_done(message)
            raise TypeError(type(message).__name__)

        return handle, node
    if role == "checking":
        from repro.core.checking import CheckingNode
        from repro.core.messages import (
            CnPublishing,
            MembershipMsg,
            NewPublication,
            NodeDown,
            Pair,
            PairBatch,
            PublishingMsg,
        )

        node = CheckingNode(config, rng=random.Random(seeds.get(role)))

        def handle(message):
            if isinstance(message, NewPublication):
                return node.on_new_publication(message)
            if isinstance(message, PairBatch):
                return node.on_pair_batch(message)
            if isinstance(message, Pair):
                return node.on_pair(message)
            if isinstance(message, PublishingMsg):
                return node.on_publishing(message)
            if isinstance(message, CnPublishing):
                return node.on_cn_publishing(message)
            if isinstance(message, NodeDown):
                return node.on_node_down(message)
            if isinstance(message, MembershipMsg):
                return node.on_membership(message)
            raise TypeError(type(message).__name__)

        return handle, node
    if role == "merger":
        from repro.core.merger import Merger
        from repro.core.messages import AlSnapshot, RemovedRecord, TemplateMsg

        node = Merger(config, cipher, rng=random.Random(seeds.get(role)))

        def handle(message):
            if isinstance(message, TemplateMsg):
                return node.on_template(message)
            if isinstance(message, RemovedRecord):
                return node.on_removed(message)
            if isinstance(message, AlSnapshot):
                return node.on_al(message)
            raise TypeError(type(message).__name__)

        return handle, node
    if role == "cloud":
        from repro.cloud.node import FresqueCloud
        from repro.core.system import CloudAdapter

        cloud = FresqueCloud(config.domain)
        adapter = CloudAdapter(cloud)
        return adapter.handle, (cloud, adapter)
    raise ValueError(f"unknown role {role!r}")
