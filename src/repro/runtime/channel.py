"""Inter-node channels for the threaded runtime.

Each node owns one inbox; senders put ``(destination, message)`` routed
envelopes.  A shared :class:`InFlightTracker` counts envelopes that have
been enqueued but whose handling (including any messages it produced) has
not finished — when it reaches zero the system is quiescent, which is how
the driver knows a publication fully drained without sleeping/polling.
"""

from __future__ import annotations

import queue
import threading


class InFlightTracker:
    """Counts messages that are queued or being handled."""

    def __init__(self):
        self._count = 0
        self._lock = threading.Lock()
        self._zero = threading.Event()
        self._zero.set()

    def increment(self, amount: int = 1) -> None:
        """Register ``amount`` new in-flight messages."""
        with self._lock:
            self._count += amount
            if self._count > 0:
                self._zero.clear()

    def decrement(self) -> None:
        """Mark one message fully handled."""
        with self._lock:
            self._count -= 1
            if self._count == 0:
                self._zero.set()
            elif self._count < 0:
                raise RuntimeError("in-flight count went negative")

    def wait_quiescent(self, timeout: float | None = None) -> bool:
        """Block until no message is in flight."""
        return self._zero.wait(timeout)

    @property
    def count(self) -> int:
        """Current in-flight total."""
        with self._lock:
            return self._count


#: Sentinel shutting a node thread down.
POISON = object()


class Inbox:
    """One node's message queue."""

    def __init__(self, name: str):
        self.name = name
        self._queue: queue.Queue = queue.Queue()

    def put(self, message) -> None:
        """Enqueue a message (or the POISON sentinel)."""
        self._queue.put(message)

    def get(self):
        """Dequeue the next message, blocking."""
        return self._queue.get()

    def get_nowait(self):
        """Dequeue the next message, or raise :class:`queue.Empty`."""
        return self._queue.get_nowait()

    def qsize(self) -> int:
        """Approximate queue length."""
        return self._queue.qsize()
