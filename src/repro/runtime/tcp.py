"""FRESQUE over real TCP sockets.

Each collector node gets its own listening socket on the loopback
interface and exchanges the wire-encoded protocol frames of
:mod:`repro.runtime.wire` — the transport of the paper's deployment, where
"the TCP socket was used for exchanging data among the components"
(Section 7.1).  Every node runs its handler on a dedicated worker thread
(actor-style, like :class:`~repro.runtime.cluster.ThreadedFresque`), but
nothing is shared between nodes except bytes on sockets, so the same code
splits across processes or machines by changing the address book.
"""

from __future__ import annotations

import queue
import random
import socket
import threading
import time

from repro.client.query_client import QueryClient
from repro.cloud.node import FresqueCloud
from repro.core.checking import CheckingNode
from repro.core.computing_node import ComputingNode
from repro.core.config import FresqueConfig
from repro.core.dispatcher import Dispatcher
from repro.core.merger import Merger
from repro.core.messages import (
    AlSnapshot,
    CnPublishing,
    DoneMsg,
    NewPublication,
    Pair,
    PublishingMsg,
    RawData,
    RemovedRecord,
    TemplateMsg,
)
from repro.core.system import CloudAdapter
from repro.crypto.cipher import RecordCipher
from repro.runtime.wire import decode_message, encode_message, read_frames
from repro.telemetry.clock import WALL_CLOCK
from repro.telemetry.context import coalesce

_STOP = object()


class Router:
    """Outbound connections to every peer, by node name."""

    def __init__(self, address_book: dict[str, int], telemetry=None):
        self._addresses = address_book
        self._connections: dict[str, socket.socket] = {}
        self._locks: dict[str, threading.Lock] = {}
        self._guard = threading.Lock()
        tel = coalesce(telemetry)
        self._sent_bytes = tel.counter("tcp_sent_bytes_total")
        self._sent_frames = tel.counter("tcp_sent_frames_total")

    def send(self, destination: str, message) -> None:
        """Frame and transmit one message to ``destination``."""
        frame = encode_message(destination, message)
        self._sent_bytes.inc(len(frame))
        self._sent_frames.inc()
        with self._guard:
            connection = self._connections.get(destination)
            lock = self._locks.get(destination)
        if connection is None:
            # Dial outside the guard: a slow connect to one destination
            # must not block every other sender on the shared guard lock.
            dialed = socket.create_connection(
                ("127.0.0.1", self._addresses[destination]), timeout=10
            )
            with self._guard:
                connection = self._connections.get(destination)
                if connection is None:
                    connection = dialed
                    self._connections[destination] = connection
                    self._locks[destination] = threading.Lock()
                lock = self._locks[destination]
            if connection is not dialed:
                # Another sender won the dial race; drop the spare socket.
                try:
                    dialed.close()
                except OSError:
                    pass
        with lock:
            # The per-connection lock exists precisely to serialize frame
            # writes on this socket, so the blocking send is intentional.
            connection.sendall(frame)  # fresque-lint: disable=FRQ-C102

    def close(self) -> None:
        """Tear down every outbound connection."""
        with self._guard:
            for connection in self._connections.values():
                try:
                    connection.close()
                except OSError:
                    pass
            self._connections.clear()


class TcpNode:
    """One listening node: socket server + actor worker thread.

    Parameters
    ----------
    name:
        The node's protocol address.
    handler:
        Callable handling one message and returning routed outbox pairs.
    router:
        Shared router for outbound messages.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; counts received
        bytes and tracks the inbox depth per node.
    """

    def __init__(self, name: str, handler, router: Router, telemetry=None):
        self.name = name
        self.handler = handler
        self.router = router
        self._tel = coalesce(telemetry)
        self._recv_bytes = self._tel.counter(
            "tcp_recv_bytes_total", node=name
        )
        self._depth_gauge = self._tel.gauge("tcp_inbox_depth", node=name)
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(32)
        self.port = self._server.getsockname()[1]
        self._inbox: queue.Queue = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._running = False
        self.errors: list[BaseException] = []
        self._lock = threading.Lock()
        self._handled = 0

    @property
    def handled(self) -> int:
        """Frames fully processed by the worker thread."""
        with self._lock:
            return self._handled

    def start(self) -> None:
        """Spawn the acceptor and worker threads."""
        self._running = True
        acceptor = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-{self.name}",
            daemon=True,
        )
        worker = threading.Thread(
            target=self._worker_loop, name=f"tcp-worker-{self.name}",
            daemon=True,
        )
        self._threads = [acceptor, worker]
        acceptor.start()
        worker.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                connection, _ = self._server.accept()
            except OSError:
                return
            reader = threading.Thread(
                target=self._read_loop,
                args=(connection,),
                name=f"tcp-read-{self.name}",
                daemon=True,
            )
            self._threads.append(reader)
            reader.start()

    def _read_loop(self, connection: socket.socket) -> None:
        buffer = bytearray()
        while True:
            try:
                chunk = connection.recv(65536)
            except OSError:
                return
            if not chunk:
                return
            buffer.extend(chunk)
            self._recv_bytes.inc(len(chunk))
            for frame in read_frames(buffer):
                self._inbox.put(frame)
            if self._tel.enabled:
                self._depth_gauge.set(self._inbox.qsize())

    def _worker_loop(self) -> None:
        while True:
            item = self._inbox.get()
            if item is _STOP:
                return
            try:
                destination, message = decode_message(item)
                if destination != self.name:
                    raise ValueError(
                        f"frame for {destination!r} delivered to {self.name!r}"
                    )
                for out_destination, out_message in self.handler(message):
                    self.router.send(out_destination, out_message)
                with self._lock:
                    self._handled += 1
            except BaseException as exc:  # surfaced by the driver
                self.errors.append(exc)

    @property
    def pending(self) -> int:
        """Frames queued but not yet handled."""
        return self._inbox.qsize()

    def stop(self) -> None:
        """Shut the node down."""
        self._running = False
        try:
            # shutdown() wakes a thread blocked in accept(); close() alone
            # can leave it hanging until a connection arrives.
            self._server.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._server.close()
        except OSError:
            pass
        self._inbox.put(_STOP)
        for thread in self._threads[:2]:
            thread.join(timeout=2)


class TcpFresqueCluster:
    """A FRESQUE deployment where every hop crosses a real TCP socket.

    The dispatcher runs on the driver thread (it is the cluster's entry
    point); computing nodes, the checking node, the merger and the cloud
    are :class:`TcpNode` servers reachable only through their sockets.
    """

    def __init__(
        self,
        config: FresqueConfig,
        cipher: RecordCipher,
        seed: int | None = None,
        telemetry=None,
    ):
        self.config = config
        self.cipher = cipher
        self.telemetry = coalesce(telemetry)
        rng = random.Random(seed)
        self.dispatcher = Dispatcher(
            config, rng=random.Random(rng.random()), telemetry=telemetry
        )
        self.computing_nodes = [
            ComputingNode(i, config, cipher, telemetry=telemetry)
            for i in range(config.num_computing_nodes)
        ]
        self.checking = CheckingNode(
            config, rng=random.Random(rng.random()), telemetry=telemetry
        )
        self.merger = Merger(
            config, cipher, rng=random.Random(rng.random()), telemetry=telemetry
        )
        self.cloud = FresqueCloud(config.domain, telemetry=telemetry)
        self.cloud_adapter = CloudAdapter(self.cloud)
        self._address_book: dict[str, int] = {}
        self.router = Router(self._address_book, telemetry=telemetry)
        self._nodes: list[TcpNode] = []
        self._telemetry_arg = telemetry
        self._started = False

    def _make_nodes(self) -> None:
        def cn_handler(node):
            def handle(message):
                if isinstance(message, RawData):
                    return node.on_raw(message)
                if isinstance(message, PublishingMsg):
                    return node.on_publishing(message.publication)
                if isinstance(message, DoneMsg):
                    return node.on_done(message)
                raise TypeError(type(message).__name__)

            return handle

        def checking_handler(message):
            if isinstance(message, NewPublication):
                return self.checking.on_new_publication(message)
            if isinstance(message, Pair):
                return self.checking.on_pair(message)
            if isinstance(message, PublishingMsg):
                return self.checking.on_publishing(message.publication)
            if isinstance(message, CnPublishing):
                return self.checking.on_cn_publishing(message)
            raise TypeError(type(message).__name__)

        def merger_handler(message):
            if isinstance(message, TemplateMsg):
                return self.merger.on_template(message)
            if isinstance(message, RemovedRecord):
                return self.merger.on_removed(message)
            if isinstance(message, AlSnapshot):
                return self.merger.on_al(message)
            raise TypeError(type(message).__name__)

        telemetry = self._telemetry_arg
        for node in self.computing_nodes:
            self._nodes.append(
                TcpNode(
                    f"cn-{node.node_id}",
                    cn_handler(node),
                    self.router,
                    telemetry=telemetry,
                )
            )
        self._nodes.append(
            TcpNode("checking", checking_handler, self.router, telemetry=telemetry)
        )
        self._nodes.append(
            TcpNode("merger", merger_handler, self.router, telemetry=telemetry)
        )
        self._nodes.append(
            TcpNode(
                "cloud", self.cloud_adapter.handle, self.router,
                telemetry=telemetry,
            )
        )
        for node in self._nodes:
            self._address_book[node.name] = node.port

    def start(self) -> None:
        """Boot every node server and open the first publication."""
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        self._make_nodes()
        for node in self._nodes:
            node.start()
        self._send_outbox(self.dispatcher.start_publication())

    def _send_outbox(self, outbox) -> None:
        for destination, message in outbox:
            self.router.send(destination, message)

    def run_publication(self, lines: list[str], timeout: float = 60.0) -> int:
        """Ingest ``lines``, close the publication, wait for the cloud to
        match it.  Returns the matched pair count."""
        if not self._started:
            self.start()
        publication = self.dispatcher.publication
        total = max(1, len(lines))
        for position, line in enumerate(lines):
            self._send_outbox(
                self.dispatcher.due_dummies((position + 1) / (total + 1))
            )
            self._send_outbox(self.dispatcher.on_raw(line))
        self._send_outbox(self.dispatcher.end_publication())
        self._send_outbox(self.dispatcher.start_publication())
        deadline = WALL_CLOCK.now() + timeout
        while WALL_CLOCK.now() < deadline:
            receipt = next(
                (
                    r
                    for r in self.cloud_adapter.receipts
                    if r.publication == publication
                ),
                None,
            )
            if receipt is not None:
                self._raise_errors()
                return receipt.records_matched
            self._raise_errors()
            time.sleep(0.005)
        raise TimeoutError(f"publication {publication} never matched")

    def _raise_errors(self) -> None:
        for node in self._nodes:
            if node.errors:
                error = node.errors[0]
                node.errors = []
                raise RuntimeError(f"node {node.name} failed") from error

    def make_client(self) -> QueryClient:
        """Query client over the cluster's cloud (call between runs)."""
        return QueryClient(self.config.schema, self.cipher, self.cloud)

    def shutdown(self) -> None:
        """Stop every node and close all connections."""
        for node in self._nodes:
            node.stop()
        self.router.close()

    def __enter__(self) -> "TcpFresqueCluster":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
