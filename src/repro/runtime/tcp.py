"""FRESQUE over real TCP sockets.

Each collector node gets its own listening socket on the loopback
interface and exchanges the wire-encoded protocol frames of
:mod:`repro.runtime.wire` — the transport of the paper's deployment, where
"the TCP socket was used for exchanging data among the components"
(Section 7.1).  Every node runs its handler on a dedicated worker thread
(actor-style, like :class:`~repro.runtime.cluster.ThreadedFresque`), but
nothing is shared between nodes except bytes on sockets, so the same code
splits across processes or machines by changing the address book.

Fault tolerance
---------------
The runtime survives transient transport faults instead of timing out:

* :class:`Router` evicts dead cached sockets and reconnects with capped
  exponential backoff + jitter (:class:`RetryPolicy`), raising
  :class:`PeerUnavailable` only once the budget is exhausted;
* :class:`TcpNode` supervises its reader threads (transport failures and
  torn frames are recorded in :attr:`TcpNode.errors`, not swallowed),
  tracks accepted connections so shutdown closes every fd, and reports
  :meth:`TcpNode.health`;
* :class:`TcpFresqueCluster` degrades around a dead computing node —
  the dispatcher reroutes its share of the stream to the survivors
  (shared-nothing makes that safe) and a :class:`NodeDown` notice lets
  the checking node finalise without the dead node's report; a missed
  deadline raises :class:`ClusterTimeout` carrying a per-node health
  report instead of a bare ``TimeoutError``.

Faults themselves can be injected deterministically through
:class:`repro.runtime.faults.FaultPlan`.
"""

from __future__ import annotations

import queue
import random
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.client.query_client import QueryClient
from repro.cloud.node import FresqueCloud
from repro.core.checking import CheckingNode
from repro.core.computing_node import ComputingNode
from repro.core.config import FresqueConfig
from repro.core.dispatcher import Dispatcher
from repro.core.merger import Merger
from repro.core.messages import (
    AlSnapshot,
    CnPublishing,
    CreditGrant,
    DoneMsg,
    MembershipMsg,
    NewPublication,
    NodeDown,
    Pair,
    PairBatch,
    PublishingMsg,
    RawBatch,
    RawData,
    RemovedRecord,
    TemplateMsg,
)
from repro.core.system import CloudAdapter
from repro.crypto.cipher import RecordCipher
from repro.runtime.faults import RESTART
from repro.runtime.gate import CheckingGate
from repro.runtime.poller import FlushPoller, poll_interval
from repro.runtime.wire import WireError, decode_message, encode_message, read_frames
from repro.telemetry.clock import WALL_CLOCK
from repro.telemetry.context import coalesce

_STOP = object()


class TransportError(ConnectionError):
    """A node-side transport failure (reader died, accept loop died)."""


class TornFrame(WireError):
    """A connection closed mid-frame, losing the partial tail.

    Recorded in :attr:`TcpNode.errors` so the loss is visible, but
    recoverable at cluster level: a sender that failed mid-write retries
    the *whole* frame on a fresh connection, so the torn tail on the
    dying connection duplicates nothing and loses nothing.
    """


class PeerUnavailable(ConnectionError):
    """Every reconnect attempt to a destination failed."""

    def __init__(self, destination: str, attempts: int, cause: BaseException):
        super().__init__(
            f"peer {destination!r} unavailable after {attempts} send "
            f"attempts: {cause!r}"
        )
        self.destination = destination
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for :class:`Router` send retries.

    Attempt ``n`` (1-based) that fails sleeps
    ``min(max_delay, base_delay * 2**(n-1))`` scaled by a random jitter
    in ``[1, 1 + jitter]`` before redialing; after ``max_attempts``
    failures the send raises :class:`PeerUnavailable`.
    """

    max_attempts: int = 6
    base_delay: float = 0.02
    max_delay: float = 0.5
    jitter: float = 0.5

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Sleep duration after failed attempt ``attempt`` (1-based)."""
        delay = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        return delay * (1.0 + self.jitter * rng.random())


class Router:
    """Outbound connections to every peer, by node name.

    A failed write evicts the dead cached socket (a peer restart or
    broken pipe must not poison the cache forever) and the send is
    retried against a fresh connection under ``retry_policy``.

    Parameters
    ----------
    address_book:
        Node name → loopback port.
    telemetry:
        Optional telemetry; counts frames/bytes, retries, reconnects
        and backoff sleeps.
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` consulted once
        per outbound frame.
    retry_policy:
        Reconnect/backoff budget (:class:`RetryPolicy` default).
    seed:
        Seed for the backoff jitter.
    """

    def __init__(
        self,
        address_book: dict[str, int],
        telemetry=None,
        fault_plan=None,
        retry_policy: RetryPolicy | None = None,
        seed: int = 0,
    ):
        self._addresses = address_book
        self._connections: dict[str, socket.socket] = {}
        self._locks: dict[str, threading.Lock] = {}
        self._guard = threading.Lock()
        self._fault_plan = fault_plan
        self._retry = retry_policy if retry_policy is not None else RetryPolicy()
        self._rng = random.Random(seed)
        #: Sends that succeeded after at least one failed attempt.
        self.reconnects = 0
        #: Failed attempts that were retried (evict + backoff + redial).
        self.retries = 0
        #: Destination → frames successfully transmitted.  The driver's
        #: crash injection uses this to wait until the victim has
        #: accounted for every frame addressed to it (inboxed or
        #: handled) before cutting it down — a frame still in the
        #: victim's kernel buffer would otherwise vanish untracked.
        self.sent_to: dict[str, int] = {}
        tel = coalesce(telemetry)
        self._sent_bytes = tel.counter("tcp_sent_bytes_total")
        self._sent_frames = tel.counter("tcp_sent_frames_total")
        self._retries_counter = tel.counter("tcp_send_retries_total")
        self._reconnects_counter = tel.counter("tcp_reconnects_total")
        self._dropped_counter = tel.counter("tcp_frames_dropped_total")
        self._backoff_histogram = tel.histogram("tcp_backoff_seconds")

    def send(self, destination: str, message) -> None:
        """Frame and transmit one message to ``destination``,
        reconnecting (with backoff) around transport failures."""
        frame = encode_message(destination, message)
        copies = 1
        if self._fault_plan is not None:
            decision = self._fault_plan.on_send(destination)
            if decision.faulted:
                if decision.sever:
                    self._poison(destination)
                if decision.drop:
                    self._dropped_counter.inc()
                    return
                if decision.delay > 0:
                    time.sleep(decision.delay)
                copies += decision.duplicates
        for _ in range(copies):
            self._transmit(destination, frame)
            self._sent_bytes.inc(len(frame))
            self._sent_frames.inc()
            with self._guard:
                self.sent_to[destination] = (
                    self.sent_to.get(destination, 0) + 1
                )

    def _transmit(self, destination: str, frame: bytes) -> None:
        attempt = 0
        while True:
            attempt += 1
            connection = None
            try:
                connection, lock = self._connect(destination)
                with lock:
                    # The per-connection lock exists precisely to serialize
                    # frame writes on this socket, so the blocking send is
                    # intentional.
                    connection.sendall(frame)  # fresque-lint: disable=FRQ-C102
            except OSError as exc:
                if connection is not None:
                    self.evict(destination, connection)
                if attempt >= self._retry.max_attempts:
                    raise PeerUnavailable(destination, attempt, exc) from exc
                with self._guard:
                    self.retries += 1
                self._retries_counter.inc()
                delay = self._retry.backoff(attempt, self._rng)
                self._backoff_histogram.observe(delay)
                time.sleep(delay)
                continue
            if attempt > 1:
                with self._guard:
                    self.reconnects += 1
                self._reconnects_counter.inc()
            return

    def _connect(
        self, destination: str
    ) -> tuple[socket.socket, threading.Lock]:
        """The cached connection to ``destination``, dialing if absent."""
        with self._guard:
            connection = self._connections.get(destination)
            lock = self._locks.get(destination)
        if connection is not None:
            return connection, lock
        # Dial outside the guard: a slow connect to one destination
        # must not block every other sender on the shared guard lock.
        dialed = socket.create_connection(
            ("127.0.0.1", self._addresses[destination]), timeout=10
        )
        with self._guard:
            connection = self._connections.get(destination)
            if connection is None:
                connection = dialed
                self._connections[destination] = connection
            lock = self._locks.setdefault(destination, threading.Lock())
        if connection is not dialed:
            # Another sender won the dial race; drop the spare socket.
            try:
                dialed.close()
            except OSError:
                pass
        return connection, lock

    def evict(
        self, destination: str, connection: socket.socket | None = None
    ) -> None:
        """Drop the cached socket to ``destination`` (dead-peer
        eviction).  With ``connection`` given, evict only if it is still
        the cached one — a racing sender may already have redialed."""
        with self._guard:
            cached = self._connections.get(destination)
            if cached is None:
                return
            if connection is not None and cached is not connection:
                return
            del self._connections[destination]
        try:
            cached.close()
        except OSError:
            pass

    def _poison(self, destination: str) -> None:
        """Fault injection: kill the cached socket *without* evicting it,
        so the next write fails exactly like a peer dying underneath."""
        with self._guard:
            connection = self._connections.get(destination)
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass

    def close(self) -> None:
        """Tear down every outbound connection."""
        with self._guard:
            for connection in self._connections.values():
                try:
                    connection.close()
                except OSError:
                    pass
            self._connections.clear()


class TcpNode:
    """One listening node: socket server + actor worker thread.

    Parameters
    ----------
    name:
        The node's protocol address.
    handler:
        Callable handling one message and returning routed outbox pairs.
    router:
        Shared router for outbound messages.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; counts received
        bytes and tracks the inbox depth per node.
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` consulted once
        per inbox frame (node crash/restart injection).
    port:
        TCP port to bind; 0 (the default) picks a free ephemeral port.
        Cluster deployments with a pre-assigned address book pass the
        book's port here.

    Supervision: reader-thread failures and torn frames are recorded in
    :attr:`errors` (surfaced by the driver), accepted connections are
    tracked and closed on :meth:`stop`, and :meth:`health` reports a
    heartbeat snapshot.
    """

    def __init__(
        self, name: str, handler, router: Router, telemetry=None,
        fault_plan=None, port: int = 0,
    ):
        self.name = name
        self.handler = handler
        self.router = router
        self._tel = coalesce(telemetry)
        self._recv_bytes = self._tel.counter(
            "tcp_recv_bytes_total", node=name
        )
        self._depth_gauge = self._tel.gauge("tcp_inbox_depth", node=name)
        self._fault_plan = fault_plan
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", port))
        self._server.listen(32)
        self.port = self._server.getsockname()[1]
        self._inbox: queue.Queue = queue.Queue()
        self._acceptor: threading.Thread | None = None
        self._worker: threading.Thread | None = None
        self._readers: list[threading.Thread] = []
        self._connections: list[socket.socket] = []
        self._running = False
        self._closing = False
        self.crashed = False
        self.restarts = 0
        self.dropped_frames: list[bytes] = []
        self.errors: list[BaseException] = []
        self._lock = threading.Lock()
        self._handled = 0
        self._last_seen = 0.0

    @property
    def handled(self) -> int:
        """Frames fully processed by the worker thread."""
        with self._lock:
            return self._handled

    def start(self) -> None:
        """Spawn the acceptor and worker threads."""
        self._running = True
        acceptor = threading.Thread(
            target=self._accept_loop, args=(self._server,),
            name=f"tcp-accept-{self.name}", daemon=True,
        )
        worker = threading.Thread(
            target=self._worker_loop, name=f"tcp-worker-{self.name}",
            daemon=True,
        )
        self._acceptor = acceptor
        self._worker = worker
        acceptor.start()
        worker.start()

    def _record_error(self, error: BaseException) -> None:
        self.errors.append(error)

    def _accept_loop(self, server: socket.socket) -> None:
        while True:
            try:
                connection, _ = server.accept()
            except OSError as exc:
                if self._running and not self._closing:
                    self._record_error(
                        TransportError(
                            f"{self.name}: accept loop failed: {exc!r}"
                        )
                    )
                return
            reader = threading.Thread(
                target=self._read_loop,
                args=(connection,),
                name=f"tcp-read-{self.name}",
                daemon=True,
            )
            with self._lock:
                registered = self._running
                if registered:
                    self._connections.append(connection)
                    self._readers.append(reader)
            if not registered:
                # stop() raced us; it already closed everything it knew
                # about, so this late connection is ours to close.
                try:
                    connection.close()
                except OSError:
                    pass
                return
            reader.start()

    def _read_loop(self, connection: socket.socket) -> None:
        buffer = bytearray()
        while True:
            try:
                chunk = connection.recv(65536)
            except OSError as exc:
                if self._running and not self._closing:
                    self._record_error(
                        TransportError(
                            f"{self.name}: reader failed: {exc!r}"
                        )
                    )
                return
            if not chunk:
                if buffer and self._running and not self._closing:
                    self._record_error(
                        TornFrame(
                            f"{self.name}: peer closed mid-frame, "
                            f"dropping {len(buffer)} bytes of a partial "
                            f"frame"
                        )
                    )
                return
            buffer.extend(chunk)
            self._recv_bytes.inc(len(chunk))
            try:
                for frame in read_frames(buffer):
                    self._inbox.put(frame)
            except WireError as exc:
                self._record_error(exc)
                return
            if self._tel.enabled:
                self._depth_gauge.set(self._inbox.qsize())

    def _worker_loop(self) -> None:
        while True:
            item = self._inbox.get()
            if item is _STOP:
                return
            if self._fault_plan is not None:
                action = self._fault_plan.on_node_frame(self.name)
                if action is not None:
                    if self._enact_crash(item, restart=action == RESTART):
                        continue
                    return
            try:
                destination, message = decode_message(item)
                if destination != self.name:
                    raise ValueError(
                        f"frame for {destination!r} delivered to {self.name!r}"
                    )
                for out_destination, out_message in self.handler(message):
                    self.router.send(out_destination, out_message)
                with self._lock:
                    self._handled += 1
                    self._last_seen = WALL_CLOCK.now()
            except BaseException as exc:  # surfaced by the driver
                self.errors.append(exc)

    def _enact_crash(self, pending_frame, restart: bool) -> bool:
        """Fault injection: die like a crashed machine.

        Closes the server and every accepted connection (peers see the
        node go away), drops the pending frame and the rest of the
        inbox, and either stays dead or — with ``restart`` — rebinds the
        same port with a fresh acceptor and an empty inbox.  Returns
        whether the node restarted.
        """
        with self._lock:
            self.crashed = True
            self._closing = True
            self._running = False
            connections = list(self._connections)
            self._connections.clear()
            readers = list(self._readers)
            self._readers.clear()
        self._shutdown_socket(self._server)
        for connection in connections:
            self._shutdown_socket(connection)
        for reader in readers:
            reader.join(timeout=2)
        dropped = [] if pending_frame is None else [pending_frame]
        while True:
            try:
                item = self._inbox.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                dropped.append(item)
        with self._lock:
            self.dropped_frames = self.dropped_frames + dropped
        if not restart:
            return False
        self._rebind()
        return True

    def crash(self) -> None:
        """Driver-side crash injection: same effect as a fault-plan
        crash, enacted from outside the worker thread.  The worker
        stays parked on the (now empty) inbox, ready for
        :meth:`restart`."""
        self._enact_crash(None, restart=False)

    def restart(self) -> None:
        """Bring a crashed node back up on the same port — the
        transport half of the rejoin handshake (docs/PROTOCOL.md).
        Respawns the worker thread if the crash terminated it."""
        with self._lock:
            if not self.crashed:
                return
        self._rebind()
        worker = self._worker
        if worker is None or not worker.is_alive():
            worker = threading.Thread(
                target=self._worker_loop, name=f"tcp-worker-{self.name}",
                daemon=True,
            )
            self._worker = worker
            worker.start()

    def _rebind(self) -> None:
        """Fresh server socket + acceptor on the node's original port."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", self.port))
        server.listen(32)
        acceptor = threading.Thread(
            target=self._accept_loop, args=(server,),
            name=f"tcp-accept-{self.name}", daemon=True,
        )
        with self._lock:
            self._server = server
            self._acceptor = acceptor
            self.restarts += 1
            self.crashed = False
            self._closing = False
            self._running = True
        acceptor.start()

    @staticmethod
    def _shutdown_socket(sock: socket.socket) -> None:
        try:
            # shutdown() wakes a thread blocked in accept()/recv();
            # close() alone can leave it hanging until traffic arrives.
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    @property
    def pending(self) -> int:
        """Frames queued but not yet handled."""
        return self._inbox.qsize()

    def dropped_messages(self) -> list:
        """Decoded messages lost to an injected crash (for accounting)."""
        with self._lock:
            frames = list(self.dropped_frames)
        return [decode_message(frame)[1] for frame in frames]

    def take_dropped_messages(self) -> list:
        """Decoded messages lost to a crash, clearing the ledger — the
        caller owns their recovery (crash_node redispatches batches)."""
        with self._lock:
            frames, self.dropped_frames = self.dropped_frames, []
        return [decode_message(frame)[1] for frame in frames]

    def health(self) -> dict:
        """Heartbeat snapshot for supervision and timeout reports."""
        with self._lock:
            handled = self._handled
            last_seen = self._last_seen
            dropped = len(self.dropped_frames)
        worker = self._worker
        return {
            "name": self.name,
            "alive": (
                worker is not None and worker.is_alive() and not self.crashed
            ),
            "crashed": self.crashed,
            "restarts": self.restarts,
            "handled": handled,
            "pending": self.pending,
            "dropped_frames": dropped,
            "errors": len(self.errors),
            "last_seen": last_seen,
        }

    def stop(self) -> None:
        """Shut the node down: close the server and every accepted
        connection, then join the acceptor, worker and reader threads."""
        with self._lock:
            self._closing = True
            self._running = False
            connections = list(self._connections)
            self._connections.clear()
            readers = list(self._readers)
            self._readers.clear()
        self._shutdown_socket(self._server)
        for connection in connections:
            self._shutdown_socket(connection)
        self._inbox.put(_STOP)
        for thread in (self._acceptor, self._worker, *readers):
            if thread is not None and thread.is_alive():
                thread.join(timeout=2)


class ClusterTimeout(TimeoutError):
    """A publication missed its deadline.

    Carries :attr:`health_report` (per-node heartbeat snapshots, router
    retry/reconnect totals and the degraded-mode dead set) and renders
    it in the message, so the failure is diagnosable instead of a bare
    ``TimeoutError``.
    """

    def __init__(self, publication: int, timeout: float, report: dict):
        self.publication = publication
        self.health_report = report
        lines = [
            f"publication {publication} never matched within {timeout:.1f}s"
        ]
        for entry in report.get("nodes", ()):
            lines.append(
                "  {name}: alive={alive} crashed={crashed} "
                "handled={handled} pending={pending} "
                "dropped={dropped_frames} errors={errors}".format(**entry)
            )
        router = report.get("router", {})
        if router:
            lines.append(
                "  router: retries={retries} "
                "reconnects={reconnects}".format(**router)
            )
        dead = report.get("dead_nodes")
        if dead:
            lines.append(f"  degraded around dead nodes: {sorted(dead)}")
        super().__init__("\n".join(lines))


class TcpFresqueCluster:
    """A FRESQUE deployment where every hop crosses a real TCP socket.

    The dispatcher runs on the driver thread (it is the cluster's entry
    point); computing nodes, the checking node, the merger and the cloud
    are :class:`TcpNode` servers reachable only through their sockets.

    Parameters
    ----------
    config, cipher, seed, telemetry:
        As for :class:`~repro.core.system.FresqueSystem`.
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` wired into the
        router and every node.
    retry_policy:
        Router reconnect budget (:class:`RetryPolicy` default).
    """

    def __init__(
        self,
        config: FresqueConfig,
        cipher: RecordCipher,
        seed: int | None = None,
        telemetry=None,
        fault_plan=None,
        retry_policy: RetryPolicy | None = None,
    ):
        self.config = config
        self.cipher = cipher
        self.telemetry = coalesce(telemetry)
        rng = random.Random(seed)
        self.dispatcher = Dispatcher(
            config, rng=random.Random(rng.random()), telemetry=telemetry
        )
        self.computing_nodes = [
            ComputingNode(i, config, cipher, telemetry=telemetry)
            for i in range(config.num_computing_nodes)
        ]
        self.checking = CheckingNode(
            config, rng=random.Random(rng.random()), telemetry=telemetry
        )
        self.merger = Merger(
            config, cipher, rng=random.Random(rng.random()), telemetry=telemetry
        )
        self.cloud = FresqueCloud(config.domain, telemetry=telemetry)
        self.cloud_adapter = CloudAdapter(self.cloud)
        self._address_book: dict[str, int] = {}
        self._fault_plan = fault_plan
        self.router = Router(
            self._address_book,
            telemetry=telemetry,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
        )
        self._nodes: list[TcpNode] = []
        self._node_map: dict[str, TcpNode] = {}
        self._dead: set[str] = set()
        # Under deterministic IVs the checking handler runs behind the
        # membership-aware ordering gate (byte-identical cloud state
        # even with crashes/rejoins interleaving frame arrivals).
        self._checking_gate: CheckingGate | None = None
        self._telemetry_arg = telemetry
        self._started = False
        # Serialises dispatcher access between the driver thread, the
        # flush poller and the credit-grant handler (a TcpNode worker).
        # Reentrant: _send_outbox → _mark_node_down → _send_outbox.
        self._dispatch_lock = threading.RLock()
        self._poller = FlushPoller(
            poll_interval(config.max_batch_delay), self._poll_flush
        )

    def _poll_flush(self) -> None:
        """Poller tick: fire the dispatcher's delay flush if due."""
        with self._dispatch_lock:
            self._send_outbox(self.dispatcher.flush_due())

    @property
    def dead_nodes(self) -> frozenset[str]:
        """Names of computing nodes the cluster degraded around."""
        return frozenset(self._dead)

    def _cn_handler(self, node: ComputingNode):
        def handle(message):
            if isinstance(message, RawBatch):
                return node.on_raw_batch(message)
            if isinstance(message, RawData):
                return node.on_raw(message)
            if isinstance(message, PublishingMsg):
                return node.on_publishing(message.publication)
            if isinstance(message, DoneMsg):
                return node.on_done(message)
            raise TypeError(type(message).__name__)

        return handle

    def _make_nodes(self) -> None:
        def checking_handler(message):
            if isinstance(message, NewPublication):
                return self.checking.on_new_publication(message)
            if isinstance(message, PairBatch):
                return self.checking.on_pair_batch(message)
            if isinstance(message, Pair):
                return self.checking.on_pair(message)
            if isinstance(message, PublishingMsg):
                return self.checking.on_publishing(message)
            if isinstance(message, CnPublishing):
                return self.checking.on_cn_publishing(message)
            if isinstance(message, NodeDown):
                return self.checking.on_node_down(message)
            if isinstance(message, MembershipMsg):
                return self.checking.on_membership(message)
            raise TypeError(type(message).__name__)

        def merger_handler(message):
            if isinstance(message, TemplateMsg):
                return self.merger.on_template(message)
            if isinstance(message, RemovedRecord):
                return self.merger.on_removed(message)
            if isinstance(message, AlSnapshot):
                return self.merger.on_al(message)
            raise TypeError(type(message).__name__)

        def dispatcher_handler(message):
            # Credit grants from the checking node; released batches go
            # back out through the dead-node-aware outbox path rather
            # than the node's own pump.
            if isinstance(message, CreditGrant):
                with self._dispatch_lock:
                    self._send_outbox(self.dispatcher.on_credit(message))
                return []
            raise TypeError(type(message).__name__)

        telemetry = self._telemetry_arg
        for node in self.computing_nodes:
            self._nodes.append(
                TcpNode(
                    f"cn-{node.node_id}",
                    self._cn_handler(node),
                    self.router,
                    telemetry=telemetry,
                    fault_plan=self._fault_plan,
                )
            )
        checking_entry = checking_handler
        if self.config.deterministic_ivs:
            self._checking_gate = CheckingGate(
                checking_handler, self.config.num_computing_nodes
            )
            checking_entry = self._checking_gate.feed
        self._nodes.append(
            TcpNode(
                "checking", checking_entry, self.router,
                telemetry=telemetry, fault_plan=self._fault_plan,
            )
        )
        self._nodes.append(
            TcpNode(
                "merger", merger_handler, self.router,
                telemetry=telemetry, fault_plan=self._fault_plan,
            )
        )
        self._nodes.append(
            TcpNode(
                "cloud", self.cloud_adapter.handle, self.router,
                telemetry=telemetry, fault_plan=self._fault_plan,
            )
        )
        self._nodes.append(
            TcpNode(
                "dispatcher", dispatcher_handler, self.router,
                telemetry=telemetry, fault_plan=self._fault_plan,
            )
        )
        for node in self._nodes:
            self._address_book[node.name] = node.port
            self._node_map[node.name] = node

    def start(self) -> None:
        """Boot every node server and open the first publication."""
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        self._make_nodes()
        for node in self._nodes:
            node.start()
        with self._dispatch_lock:
            self._send_outbox(self.dispatcher.start_publication())
        self._poller.start()

    def _send_outbox(self, outbox) -> None:
        with self._dispatch_lock:
            pending = deque(outbox)
            while pending:
                destination, message = pending.popleft()
                if destination in self._dead:
                    # Degraded mode: records shift to the survivors;
                    # control messages for the dead node are moot.
                    if isinstance(message, (RawData, RawBatch)):
                        pending.extend(self.dispatcher.redispatch(message))
                    continue
                try:
                    self.router.send(destination, message)
                except PeerUnavailable:
                    if not destination.startswith("cn-"):
                        raise
                    self._mark_node_down(destination)
                    if isinstance(message, (RawData, RawBatch)):
                        pending.extend(self.dispatcher.redispatch(message))

    def _mark_node_down(self, name: str) -> None:
        """Degrade around computing node ``name``: take it out of the
        rotation and tell the checking node to stop waiting for it."""
        with self._dispatch_lock:
            if name in self._dead:
                return
            self._dead.add(name)
            self._send_outbox(self.dispatcher.mark_node_down(int(name[3:])))

    # ------------------------------------------------------------------
    # Elastic membership (docs/PROTOCOL.md)
    # ------------------------------------------------------------------

    def admit_node(self, node_id: int | None = None) -> int:
        """Admit a new computing node at runtime: a fresh TCP server
        joins the address book under a new membership epoch."""
        if not self._started:
            raise RuntimeError("call start() first")
        with self._dispatch_lock:
            node_id, outbox = self.dispatcher.admit_node(node_id)
            node = ComputingNode(
                node_id, self.config, self.cipher,
                telemetry=self._telemetry_arg,
            )
            self.computing_nodes.append(node)
            tcp_node = TcpNode(
                f"cn-{node_id}",
                self._cn_handler(node),
                self.router,
                telemetry=self._telemetry_arg,
                fault_plan=self._fault_plan,
            )
            self._nodes.append(tcp_node)
            self._node_map[tcp_node.name] = tcp_node
            self._address_book[tcp_node.name] = tcp_node.port
            tcp_node.start()
            self._send_outbox(outbox)
        return node_id

    def retire_node(self, node_id: int) -> None:
        """Gracefully retire a node: its server stays up to flush and
        acknowledge in-flight work, but the dispatcher stops routing
        new batches to it."""
        with self._dispatch_lock:
            self._send_outbox(self.dispatcher.retire_node(node_id))

    def crash_node(self, node_id: int) -> None:
        """Crash a computing node's server (driver-side injection) and
        degrade around it: its outbound connection is evicted, trapped
        inbox frames are recovered (RawBatches redispatched with their
        credits refunded), and the checking node is told to stop
        waiting for it."""
        name = f"cn-{node_id}"
        tcp_node = self._node_map[name]
        # Enactment barrier: every frame transmitted to the victim must
        # be accounted for (inboxed or handled) before the cut — a frame
        # still in its kernel receive buffer would vanish *untracked*,
        # invisible to both the dropped-frame ledger and redispatch.
        deadline = WALL_CLOCK.now() + 5.0
        while WALL_CLOCK.now() < deadline:
            sent = self.router.sent_to.get(name, 0)
            if tcp_node.handled + tcp_node.pending >= sent:
                break
            time.sleep(0.001)
        tcp_node.crash()
        self.router.evict(name)
        self._mark_node_down(name)
        self._recover_dropped(tcp_node)

    def _recover_dropped(self, tcp_node: TcpNode) -> None:
        """Redispatch the RawBatches a crash trapped in a dead node's
        inbox; trapped control frames are covered by the NodeDown
        absolution."""
        with self._dispatch_lock:
            for message in tcp_node.take_dropped_messages():
                if isinstance(message, (RawData, RawBatch)):
                    self._send_outbox(self.dispatcher.redispatch(message))

    def rejoin_node(self, node_id: int) -> int:
        """Bring a crashed node back as a fresh incarnation on the same
        port.  The membership epoch rises, so any still-travelling pair
        stamped by the old incarnation is discarded as stale on the
        checking side (reconnect-as-rejoin, docs/PROTOCOL.md).

        Only call once the surrounding publication has completed — the
        cloud receipt guarantees the checking node has consumed every
        frame the old incarnation sent.
        """
        name = f"cn-{node_id}"
        tcp_node = self._node_map[name]
        if name not in self._dead:
            raise ValueError(f"node {node_id} is not down")
        self._recover_dropped(tcp_node)
        node = ComputingNode(
            node_id, self.config, self.cipher, telemetry=self._telemetry_arg
        )
        for index, existing in enumerate(self.computing_nodes):
            if existing.node_id == node_id:
                self.computing_nodes[index] = node
                break
        tcp_node.handler = self._cn_handler(node)
        tcp_node.restart()
        with self._dispatch_lock:
            self._dead.discard(name)
            self._send_outbox(self.dispatcher.rejoin_node(node_id))
        return node_id

    def ingest(self, line: str) -> None:
        """Feed one raw line into the current publication."""
        if not self._started:
            raise RuntimeError("call start() first")
        with self._dispatch_lock:
            self._send_outbox(self.dispatcher.on_raw(line))

    def pump_dummies(self, fraction: float) -> None:
        """Release every dummy scheduled before ``fraction`` of the
        interval (the chaos harness's dummy-pacing hook)."""
        with self._dispatch_lock:
            self._send_outbox(self.dispatcher.due_dummies(fraction))

    def close_publication(self) -> None:
        """Close the current publication and open the next one."""
        with self._dispatch_lock:
            self._send_outbox(self.dispatcher.end_publication())
            self._send_outbox(self.dispatcher.start_publication())

    def settle(self, publication: int, timeout: float = 120.0) -> None:
        """Block until the cloud's receipt for ``publication`` lands,
        supervising node health while waiting."""
        deadline = WALL_CLOCK.now() + timeout
        while True:
            self._supervise()
            remaining = deadline - WALL_CLOCK.now()
            if remaining <= 0:
                raise ClusterTimeout(
                    publication, timeout, self.health_report()
                )
            receipt = self.cloud_adapter.wait_for_receipt(
                publication, timeout=min(0.25, remaining)
            )
            if receipt is not None:
                self._supervise()
                self._await_announce(deadline)
                return

    def _await_announce(self, deadline: float) -> None:
        """Wait until the cloud has opened the dispatcher's *current*
        publication.

        The receipt for publication *N* says nothing about the trailing
        ``start_publication`` cascade (NewPublication → template →
        merger → cloud) that opened *N+1*: those frames may still be in
        flight when the receipt lands.  Post-settle state inspection
        (fingerprints) must not race that tail, so block until the
        cloud has announced every publication the dispatcher has
        opened — the same announce barrier the shm runtime applies
        before fingerprinting.
        """
        current = self.dispatcher.publication
        while not self.cloud.is_announced(current):
            if WALL_CLOCK.now() >= deadline:
                raise ClusterTimeout(current, 0.0, self.health_report())
            self._supervise()
            time.sleep(0.001)

    def run_publication(self, lines: list[str], timeout: float = 60.0) -> int:
        """Ingest ``lines``, close the publication, wait for the cloud to
        match it.  Returns the matched pair count.

        The wait blocks on the cloud adapter's receipt condition (woken
        by delivery, not polled), waking every 250 ms to supervise node
        health; a computing node found crashed mid-publication is
        absorbed in degraded mode.  A missed deadline raises
        :class:`ClusterTimeout` with the full health report.
        """
        if not self._started:
            self.start()
        publication = self.dispatcher.publication
        total = max(1, len(lines))
        for position, line in enumerate(lines):
            with self._dispatch_lock:
                self._send_outbox(
                    self.dispatcher.due_dummies((position + 1) / (total + 1))
                )
                self._send_outbox(self.dispatcher.on_raw(line))
        with self._dispatch_lock:
            self._send_outbox(self.dispatcher.end_publication())
            self._send_outbox(self.dispatcher.start_publication())
        deadline = WALL_CLOCK.now() + timeout
        while True:
            self._supervise()
            remaining = deadline - WALL_CLOCK.now()
            if remaining <= 0:
                raise ClusterTimeout(
                    publication, timeout, self.health_report()
                )
            receipt = self.cloud_adapter.wait_for_receipt(
                publication, timeout=min(0.25, remaining)
            )
            if receipt is not None:
                self._supervise()
                self._await_announce(deadline)
                return receipt.records_matched

    def _supervise(self) -> None:
        """Absorb computing-node crashes; raise anything else.

        A crashed computing node is marked down (degraded mode).  A
        crashed trusted node — checking, merger, cloud — cannot be
        degraded around and fails the publication, as does any recorded
        worker/reader error on a live node.
        """
        for node in self._nodes:
            if node.name in self._dead:
                continue
            if node.crashed:
                if node.name.startswith("cn-"):
                    self._mark_node_down(node.name)
                    continue
                raise RuntimeError(
                    f"trusted node {node.name} crashed — the cluster "
                    f"cannot degrade around the checking node, merger "
                    f"or cloud"
                )
            fatal = [
                error
                for error in node.errors
                if not isinstance(error, TornFrame)
            ]
            if fatal:
                node.errors = []
                raise RuntimeError(
                    f"node {node.name} failed"
                ) from fatal[0]

    def _raise_errors(self) -> None:
        """Backwards-compatible alias for :meth:`_supervise`."""
        self._supervise()

    def health_report(self) -> dict:
        """Diagnosable cluster snapshot: per-node heartbeats, router
        retry/reconnect totals, and the degraded-mode dead set."""
        return {
            "nodes": [node.health() for node in self._nodes],
            "router": {
                "retries": self.router.retries,
                "reconnects": self.router.reconnects,
            },
            "dead_nodes": sorted(self._dead),
        }

    def make_client(self) -> QueryClient:
        """Query client over the cluster's cloud (call between runs)."""
        return QueryClient(self.config.schema, self.cipher, self.cloud)

    def shutdown(self) -> None:
        """Stop the flush poller, every node, and all connections."""
        self._poller.stop()
        for node in self._nodes:
            node.stop()
        self.router.close()

    def __enter__(self) -> "TcpFresqueCluster":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
