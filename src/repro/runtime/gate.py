"""Order-restoring gate in front of the checking node.

Computing nodes run in parallel, so their :class:`PairBatch` streams
interleave arbitrarily on the way to the checking node.  The gate
re-serialises them by the dispatcher's global batch sequence number and
holds *publishing* / *CN-publishing* control messages until their gates
clear — after which the checking node observes exactly the synchronous
runtime's delivery order (the byte-identity property the equivalence
harness pins).  The threaded, TCP and shared-memory runtimes all wrap
their checking handler in one of these when deterministic IVs are on.

Under elastic membership (docs/PROTOCOL.md) the gate is also the
staleness authority: it tracks per-node join-epoch floors from
:class:`MembershipMsg` and discards batches stamped by a crashed
incarnation *before* the duplicate check, so a crash-redispatch twin is
never mistaken for a duplicate of its stale sibling.  Because the gate
guarantees exactly-once delivery per sequence number, it forwards
membership snapshots with the ``joined`` floors stripped — a batch the
gate has admitted must not be second-guessed by the checking node's own
floor after a later rejoin raises it.
"""

from __future__ import annotations

from collections import deque

from repro.core.membership import stale_for
from repro.core.messages import (
    CnPublishing,
    MembershipMsg,
    NewPublication,
    NodeDown,
    PairBatch,
    PublishingMsg,
)


class CheckingGate:
    """Order-restoring front of the checking node.

    Four rules, applied before any message reaches the wrapped
    handler:

    1. **PairBatch reorder**: batches are delivered strictly in the
       dispatcher's global ``seq`` order.  A batch stamped below its
       producer's join-epoch floor is a stale leftover of a crashed
       incarnation and is dropped (counted in :attr:`stale_discards`);
       a batch with ``seq`` below the next expected — or equal to one
       already buffered — is a crash-redispatch duplicate and is
       dropped (counted in :attr:`duplicates`).
    2. **Publishing gate**: a :class:`PublishingMsg` waits until every
       batch with ``seq <= last_seq`` has been delivered.
    3. **CnPublishing gate**: a node's publishing acknowledgement waits
       until its publication's :class:`PublishingMsg` has been
       delivered (the synchronous broadcast order).
    4. **NewPublication gate**: the next publication's announcement
       waits until the previous one has *finalised* — its publishing
       broadcast delivered and every expected node's acknowledgement
       in.  Finalisation shuffles the randomer buffer (an RNG draw), so
       the next interval's eviction draws must not overtake it.

    :class:`NodeDown` and :class:`MembershipMsg` pass through
    immediately (matching the dispatcher, which emits them out of band)
    and relax the ack gate — a dead node's acknowledgement stops being
    waited for, per publication: a node that later *rejoins* stays
    absolved for publications whose interval its new incarnation never
    saw.
    """

    def __init__(self, handler, num_nodes: int):
        self._handler = handler
        self._num_nodes = num_nodes
        self.next_seq = 0
        self.duplicates = 0
        self.stale_discards = 0
        self._buffered: dict[int, PairBatch] = {}
        self._pending_publishing: deque[PublishingMsg] = deque()
        self._pending_cn: deque[CnPublishing] = deque()
        self._pending_new: deque[NewPublication] = deque()
        self._publishing_delivered: set[int] = set()
        # publication → nodes that acknowledged; the entry exists while
        # finalisation is outstanding (created at PublishingMsg delivery).
        self._acked: dict[int, set[int]] = {}
        # publication → expected report set (PublishingMsg.nodes); None
        # falls back to counting against ``num_nodes``.
        self._expected: dict[int, set[int] | None] = {}
        # publication → nodes absolved from acking it (down at its
        # PublishingMsg delivery, or died while it waited).  Monotone per
        # publication, unlike ``_dead``, which rejoins shrink.
        self._absolved: dict[int, set[int]] = {}
        self._dead: set[int] = set()
        # Per-node join-epoch floors (MembershipMsg.joined): batches
        # stamped below their producer's floor are stale.
        self._node_epochs: dict[int, int] = {}

    @property
    def pending(self) -> int:
        """Messages held back waiting for a gate."""
        return (
            len(self._buffered)
            + len(self._pending_publishing)
            + len(self._pending_cn)
            + len(self._pending_new)
        )

    def _stale(self, batch: PairBatch) -> bool:
        return stale_for(self._node_epochs, batch)

    def feed(self, message) -> list[tuple[str, object]]:
        """Admit one message; returns the outbox of everything released."""
        out: list[tuple[str, object]] = []
        if isinstance(message, PairBatch) and message.seq >= 0:
            if self._stale(message):
                self.stale_discards += 1
                return out
            if message.seq < self.next_seq or message.seq in self._buffered:
                self.duplicates += 1
                return out
            self._buffered[message.seq] = message
            while self.next_seq in self._buffered:
                out.extend(
                    self._handler(self._buffered.pop(self.next_seq))
                )
                self.next_seq += 1
        elif isinstance(message, PublishingMsg):
            self._pending_publishing.append(message)
        elif isinstance(message, CnPublishing):
            if message.publication in self._publishing_delivered:
                out.extend(self._deliver_cn(message))
            else:
                self._pending_cn.append(message)
        elif isinstance(message, NewPublication):
            self._pending_new.append(message)
        elif isinstance(message, NodeDown):
            self._dead.add(message.node_id)
            for absolved in self._absolved.values():
                absolved.add(message.node_id)
            out.extend(self._handler(message))
        elif isinstance(message, MembershipMsg):
            out.extend(self._apply_membership(message))
        else:
            out.extend(self._handler(message))
        out.extend(self._drain_gates())
        return out

    def _apply_membership(
        self, message: MembershipMsg
    ) -> list[tuple[str, object]]:
        for node, epoch in message.joined:
            if epoch > self._node_epochs.get(node, 0):
                self._node_epochs[node] = epoch
        down = set(message.down)
        for absolved in self._absolved.values():
            absolved |= down
        self._dead = down
        # Forward with the join floors stripped: the gate's seq dedup
        # already guarantees exactly-once delivery, and a batch admitted
        # here must not be re-judged stale by the checking node after a
        # later rejoin raises its producer's floor.
        return self._handler(
            MembershipMsg(
                epoch=message.epoch,
                members=message.members,
                retired=message.retired,
                down=message.down,
                joined=(),
            )
        )

    def _deliver_cn(self, message: CnPublishing) -> list[tuple[str, object]]:
        acked = self._acked.get(message.publication)
        if acked is not None:
            acked.add(message.node_id)
        return self._handler(message)

    def _finalised(self, publication: int) -> bool:
        acked = self._acked[publication]
        absolved = self._absolved.get(publication, set())
        expected = self._expected.get(publication)
        if expected is None:
            expected = range(self._num_nodes)
        return all(
            node in acked or node in absolved or node in self._dead
            for node in expected
        )

    def _drain_gates(self) -> list[tuple[str, object]]:
        out: list[tuple[str, object]] = []
        progress = True
        while progress:
            progress = False
            while self._pending_publishing:
                head = self._pending_publishing[0]
                if head.last_seq >= 0 and self.next_seq <= head.last_seq:
                    break
                self._pending_publishing.popleft()
                out.extend(self._handler(head))
                self._publishing_delivered.add(head.publication)
                self._acked.setdefault(head.publication, set())
                self._expected[head.publication] = (
                    set(head.nodes) if head.nodes else None
                )
                self._absolved.setdefault(
                    head.publication, set()
                ).update(self._dead)
                released, still_waiting = [], deque()
                for waiting in self._pending_cn:
                    if waiting.publication in self._publishing_delivered:
                        released.append(waiting)
                    else:
                        still_waiting.append(waiting)
                self._pending_cn = still_waiting
                for message in released:
                    out.extend(self._deliver_cn(message))
                progress = True
            while self._pending_new:
                if self._pending_publishing or not all(
                    self._finalised(p) for p in self._acked
                ):
                    break
                done = [p for p in self._acked if self._finalised(p)]
                for publication in done:
                    del self._acked[publication]
                    self._expected.pop(publication, None)
                    self._absolved.pop(publication, None)
                out.extend(self._handler(self._pending_new.popleft()))
                progress = True
        return out
