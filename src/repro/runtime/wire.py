"""Wire encoding of the FRESQUE protocol messages.

Serialises every message of :mod:`repro.core.messages` to length-prefixed
JSON frames (ciphertexts base64-encoded, index trees as level-count
arrays) so components can run in separate processes connected by real TCP
sockets — the transport of the paper's 17-node cluster.

Frame layout: ``length (uint32, little endian) | utf-8 JSON``.
"""

from __future__ import annotations

import json
import struct

from repro.core.messages import (
    AlSnapshot,
    AnnouncePublication,
    BufferFlush,
    CnPublishing,
    CreditGrant,
    DoneMsg,
    MembershipMsg,
    MergedPublication,
    NewPublication,
    NodeDown,
    Pair,
    PairBatch,
    PublishingMsg,
    RawBatch,
    RawData,
    RemovedRecord,
    RingAttach,
    TemplateMsg,
    ToCloudBatch,
    ToCloudPair,
)
from repro.index.domain import AttributeDomain
from repro.index.overflow import OverflowArray
from repro.index.tree import IndexTree
from repro.records.codec import (  # noqa: F401  (re-exported API)
    decode_encrypted,
    decode_plan,
    decode_record,
    encode_encrypted,
    encode_plan,
    encode_record,
)

_FRAME_HEADER = struct.Struct("<I")

#: Upper bound on one frame, to stop a malicious peer exhausting memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class WireError(ValueError):
    """Raised for malformed frames or unknown message types."""


# ---------------------------------------------------------------------------
# Payload helpers (record/plan codecs live in repro.records.codec — a leaf
# module — so the core pipeline and the durability journal can use them
# without importing the transport; re-exported above for wire users)
# ---------------------------------------------------------------------------


def encode_tree(tree: IndexTree) -> dict:
    """Serialise an index tree as domain parameters plus level counts."""
    return {
        "dmin": tree.domain.dmin,
        "dmax": tree.domain.dmax,
        "bin": tree.domain.bin_interval,
        "fanout": tree.fanout,
        "levels": [[node.count for node in level] for level in tree.levels],
    }


def decode_tree(payload: dict) -> IndexTree:
    """Rebuild an index tree from :func:`encode_tree` output."""
    domain = AttributeDomain(payload["dmin"], payload["dmax"], payload["bin"])
    tree = IndexTree(domain, fanout=payload["fanout"])
    if [len(level) for level in tree.levels] != [
        len(level) for level in payload["levels"]
    ]:
        raise WireError("level shape does not match the encoded domain")
    for level_nodes, level_counts in zip(tree.levels, payload["levels"]):
        for node, count in zip(level_nodes, level_counts):
            node.count = count
    return tree


def _encode_overflow(overflow: dict[int, OverflowArray]) -> list:
    return [
        {
            "leaf": array.leaf_offset,
            "capacity": array.capacity,
            "entries": [encode_encrypted(entry) for entry in array.entries],
        }
        for array in overflow.values()
    ]


def _decode_overflow(payload: list) -> dict[int, OverflowArray]:
    overflow = {}
    for item in payload:
        array = OverflowArray(item["leaf"], capacity=item["capacity"])
        # Reconstruct the sealed array verbatim (contents already padded
        # and shuffled by the sender).
        array._entries = [decode_encrypted(e) for e in item["entries"]]
        array._sealed = True
        overflow[item["leaf"]] = array
    return overflow


# ---------------------------------------------------------------------------
# Message table
# ---------------------------------------------------------------------------

_ENCODERS = {
    NewPublication: lambda m: {"pub": m.publication, "plan": encode_plan(m.plan)},
    TemplateMsg: lambda m: {"pub": m.publication, "plan": encode_plan(m.plan)},
    AnnouncePublication: lambda m: {"pub": m.publication},
    RawData: lambda m: {
        "pub": m.publication,
        "line": m.line,
        "record": None if m.record is None else encode_record(m.record),
    },
    RawBatch: lambda m: {
        "pub": m.publication,
        # Ordered, type-tagged items: ["l", line] or ["r", record] —
        # order is the arrival order the randomer's mixing relies on.
        "items": [
            ["l", item] if isinstance(item, str) else ["r", encode_record(item)]
            for item in m.items
        ],
        "seq": m.seq,
        "ord": m.ordinal,
        "epoch": m.epoch,
    },
    Pair: lambda m: {
        "pub": m.publication,
        "leaf": m.leaf_offset,
        "enc": encode_encrypted(m.encrypted),
        "dummy": m.dummy,
    },
    PairBatch: lambda m: {
        "pub": m.publication,
        "seq": m.seq,
        "epoch": m.epoch,
        "node": m.node,
        "pairs": [
            {
                "leaf": pair.leaf_offset,
                "enc": encode_encrypted(pair.encrypted),
                "dummy": pair.dummy,
            }
            for pair in m.pairs
        ],
    },
    ToCloudBatch: lambda m: {
        "pub": m.publication,
        "pairs": [
            {"leaf": leaf, "enc": encode_encrypted(enc)}
            for leaf, enc in m.pairs
        ],
    },
    ToCloudPair: lambda m: {
        "pub": m.publication,
        "leaf": m.leaf_offset,
        "enc": encode_encrypted(m.encrypted),
    },
    RemovedRecord: lambda m: {
        "pub": m.publication,
        "leaf": m.leaf_offset,
        "enc": encode_encrypted(m.encrypted),
    },
    PublishingMsg: lambda m: {
        "pub": m.publication,
        "last": m.last_seq,
        "epoch": m.epoch,
        "nodes": list(m.nodes),
    },
    CreditGrant: lambda m: {"pub": m.publication, "records": m.records},
    CnPublishing: lambda m: {"pub": m.publication, "node": m.node_id},
    NodeDown: lambda m: {"pub": m.publication, "node": m.node_id},
    MembershipMsg: lambda m: {
        "epoch": m.epoch,
        "members": list(m.members),
        "retired": list(m.retired),
        "down": list(m.down),
        "joined": [list(pair) for pair in m.joined],
    },
    RingAttach: lambda m: {
        "node": m.node_id,
        "in": m.inbound,
        "out": m.outbound,
    },
    AlSnapshot: lambda m: {"pub": m.publication, "al": list(m.al)},
    BufferFlush: lambda m: {
        "pub": m.publication,
        "pairs": [
            {"leaf": leaf, "enc": encode_encrypted(enc)}
            for leaf, enc in m.pairs
        ],
    },
    DoneMsg: lambda m: {"pub": m.publication},
    MergedPublication: lambda m: {
        "pub": m.publication,
        "tree": encode_tree(m.tree),
        "overflow": _encode_overflow(m.overflow),
    },
}

_DECODERS = {
    "NewPublication": lambda p: NewPublication(p["pub"], decode_plan(p["plan"])),
    "TemplateMsg": lambda p: TemplateMsg(p["pub"], decode_plan(p["plan"])),
    "AnnouncePublication": lambda p: AnnouncePublication(p["pub"]),
    "RawData": lambda p: RawData(
        p["pub"],
        line=p["line"],
        record=None if p["record"] is None else decode_record(p["record"]),
    ),
    # Stamps decode with .get so frames from pre-stamp peers (no
    # seq/ord/last keys) still parse, as unstamped (-1) messages.
    "RawBatch": lambda p: RawBatch(
        p["pub"],
        tuple(
            item if kind == "l" else decode_record(item)
            for kind, item in p["items"]
        ),
        seq=p.get("seq", -1),
        ordinal=p.get("ord", -1),
        epoch=p.get("epoch", -1),
    ),
    "Pair": lambda p: Pair(
        p["pub"], p["leaf"], decode_encrypted(p["enc"]), dummy=p["dummy"]
    ),
    "PairBatch": lambda p: PairBatch(
        p["pub"],
        tuple(
            Pair(
                p["pub"],
                item["leaf"],
                decode_encrypted(item["enc"]),
                dummy=item["dummy"],
            )
            for item in p["pairs"]
        ),
        seq=p.get("seq", -1),
        epoch=p.get("epoch", -1),
        node=p.get("node", -1),
    ),
    "ToCloudBatch": lambda p: ToCloudBatch(
        p["pub"],
        tuple(
            (item["leaf"], decode_encrypted(item["enc"]))
            for item in p["pairs"]
        ),
    ),
    "ToCloudPair": lambda p: ToCloudPair(
        p["pub"], p["leaf"], decode_encrypted(p["enc"])
    ),
    "RemovedRecord": lambda p: RemovedRecord(
        p["pub"], p["leaf"], decode_encrypted(p["enc"])
    ),
    "PublishingMsg": lambda p: PublishingMsg(
        p["pub"],
        last_seq=p.get("last", -1),
        epoch=p.get("epoch", -1),
        nodes=tuple(p.get("nodes", ())),
    ),
    "CreditGrant": lambda p: CreditGrant(p["pub"], p["records"]),
    "CnPublishing": lambda p: CnPublishing(p["pub"], p["node"]),
    "NodeDown": lambda p: NodeDown(p["pub"], p["node"]),
    "MembershipMsg": lambda p: MembershipMsg(
        p["epoch"],
        members=tuple(p.get("members", ())),
        retired=tuple(p.get("retired", ())),
        down=tuple(p.get("down", ())),
        joined=tuple((n, e) for n, e in p.get("joined", ())),
    ),
    "RingAttach": lambda p: RingAttach(p["node"], p["in"], p["out"]),
    "AlSnapshot": lambda p: AlSnapshot(p["pub"], tuple(p["al"])),
    "BufferFlush": lambda p: BufferFlush(
        p["pub"],
        tuple(
            (item["leaf"], decode_encrypted(item["enc"]))
            for item in p["pairs"]
        ),
    ),
    "DoneMsg": lambda p: DoneMsg(p["pub"]),
    "MergedPublication": lambda p: MergedPublication(
        p["pub"], decode_tree(p["tree"]), _decode_overflow(p["overflow"])
    ),
}


def encode_message(destination: str, message) -> bytes:
    """Serialise one routed message into a framed byte string."""
    encoder = _ENCODERS.get(type(message))
    if encoder is None:
        raise WireError(f"cannot encode {type(message).__name__}")
    body = json.dumps(
        {
            "to": destination,
            "type": type(message).__name__,
            "payload": encoder(message),
        },
        separators=(",", ":"),
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds the maximum")
    return _FRAME_HEADER.pack(len(body)) + body


def decode_message(frame: bytes) -> tuple[str, object]:
    """Inverse of :func:`encode_message` for one complete frame body."""
    try:
        envelope = json.loads(frame.decode("utf-8"))
        decoder = _DECODERS[envelope["type"]]
        return envelope["to"], decoder(envelope["payload"])
    except (KeyError, ValueError, TypeError) as exc:
        raise WireError(f"malformed frame: {exc}") from exc


def read_frames(buffer: bytearray):
    """Yield complete frame bodies from ``buffer``, consuming them.

    Raises
    ------
    WireError
        If a frame announces more than :data:`MAX_FRAME_BYTES`.
    """
    while len(buffer) >= _FRAME_HEADER.size:
        (length,) = _FRAME_HEADER.unpack_from(buffer, 0)
        if length > MAX_FRAME_BYTES:
            raise WireError(f"frame of {length} bytes exceeds the maximum")
        if len(buffer) < _FRAME_HEADER.size + length:
            return
        body = bytes(buffer[_FRAME_HEADER.size : _FRAME_HEADER.size + length])
        del buffer[: _FRAME_HEADER.size + length]
        yield body
