"""Periodic flush polling shared by the runtime clusters.

The dispatcher's delay flush (:meth:`Dispatcher.flush_due`,
docs/BATCHING.md) only fires when *something* checks the clock.  Under
steady traffic the next arrival does; under a trickle below the batch
size nothing would — the stall this module exists to fix.  Each runtime
cluster starts one :class:`FlushPoller` whose ``tick`` callback takes
the cluster's dispatch lock, calls ``flush_due()`` and pumps whatever
flushed (plus any runtime-specific housekeeping, e.g. the shm parent's
credit pump).

The poller wakes at half the configured ``max_batch_delay`` (clamped),
so a waiting batch overshoots the delay bound by at most one tick.
Tick exceptions are captured — a poller must never take the runtime
down between publications — and surface through ``error``.
"""

from __future__ import annotations

import threading

#: Clamp bounds for the wake interval (seconds).
MIN_INTERVAL = 0.001
MAX_INTERVAL = 0.5


def poll_interval(max_batch_delay: float) -> float:
    """Wake interval for a given flush-delay bound."""
    return min(MAX_INTERVAL, max(MIN_INTERVAL, max_batch_delay / 2.0))


class FlushPoller:
    """Daemon thread invoking ``tick()`` every ``interval`` seconds."""

    def __init__(self, interval: float, tick, name: str = "fresque-flush-poller"):
        self._interval = interval
        self._tick = tick
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        #: First exception a tick raised, if any (polling stops on it).
        self.error: BaseException | None = None

    def start(self) -> None:
        """Start polling."""
        self._thread.start()

    def stop(self) -> None:
        """Stop polling and join the thread."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._tick()
            except BaseException as exc:  # noqa: BLE001 -- surfaced via .error
                # fresque-lint: disable=FRQ-C101 -- written once, then the thread exits; readers see it after stop()/join
                self.error = exc
                return
