"""Ring-frame encoding: binary batch fast paths + JSON fallback.

The ring transports the same routed ``(destination, message)`` pairs as
the TCP wire protocol, but the three hot batch messages —
:class:`RawBatch`, :class:`PairBatch`, :class:`ToCloudBatch` (and
:class:`BufferFlush`, which shares ``ToCloudBatch``'s shape) — get a
binary layout decoded straight off the ring's ``memoryview`` with
``struct.unpack_from``: no base64, no JSON parse, and exactly one copy
per ciphertext (see :mod:`repro.records.codec`).  Everything else rides
the existing JSON wire envelope, decoded from the view without an
intermediate ``bytes`` (``str(view, "utf-8")``).

Frame layout: ``kind (u8) | dest length (u8) | dest utf-8 | body``.
"""

from __future__ import annotations

import json
import struct

from repro.core.messages import (
    BufferFlush,
    CreditGrant,
    PairBatch,
    RawBatch,
    ToCloudBatch,
    Pair,
)
from repro.records.codec import (
    decode_encrypted_from,
    decode_record,
    encode_encrypted_into,
    encode_record,
)
from repro.runtime.wire import _DECODERS, _ENCODERS, WireError

_KIND_JSON = 0
_KIND_RAW_BATCH = 1
_KIND_PAIR_BATCH = 2
_KIND_TO_CLOUD = 3
_KIND_BUFFER_FLUSH = 4
#: Control frame: checking-node credit grant back to the dispatcher
#: (docs/BATCHING.md).  Fixed-size body, decoded without JSON, because
#: one grant rides the ring per processed PairBatch.
_KIND_CREDIT = 5

_RAW_HEAD = struct.Struct("<qqqqI")  # pub, seq, ordinal, epoch, item count
_PAIR_HEAD = struct.Struct("<qqqqI")  # pub, seq, epoch, node, pair count
_CLOUD_HEAD = struct.Struct("<qI")  # pub, pair count
_CREDIT_HEAD = struct.Struct("<qq")  # pub, granted record count
_U32 = struct.Struct("<I")
_PAIR_META = struct.Struct("<iB")  # leaf, dummy flag


def encode_frame(destination: str, message) -> bytearray:
    """Serialise one routed message into a ring-frame payload."""
    dest = destination.encode("utf-8")
    out = bytearray(2 + len(dest))
    out[1] = len(dest)
    out[2:] = dest
    if type(message) is RawBatch:
        out[0] = _KIND_RAW_BATCH
        out += _RAW_HEAD.pack(
            message.publication,
            message.seq,
            message.ordinal,
            message.epoch,
            len(message.items),
        )
        for item in message.items:
            if isinstance(item, str):
                encoded = item.encode("utf-8")
                out += b"\x00"
            else:
                encoded = json.dumps(
                    encode_record(item), separators=(",", ":")
                ).encode("utf-8")
                out += b"\x01"
            out += _U32.pack(len(encoded))
            out += encoded
        return out
    if type(message) is PairBatch:
        out[0] = _KIND_PAIR_BATCH
        out += _PAIR_HEAD.pack(
            message.publication,
            message.seq,
            message.epoch,
            message.node,
            len(message.pairs),
        )
        for pair in message.pairs:
            out += _PAIR_META.pack(pair.leaf_offset, int(pair.dummy))
            encode_encrypted_into(out, pair.encrypted)
        return out
    if type(message) is ToCloudBatch or type(message) is BufferFlush:
        out[0] = (
            _KIND_TO_CLOUD
            if type(message) is ToCloudBatch
            else _KIND_BUFFER_FLUSH
        )
        out += _CLOUD_HEAD.pack(message.publication, len(message.pairs))
        for leaf, encrypted in message.pairs:
            out += struct.pack("<i", leaf)
            encode_encrypted_into(out, encrypted)
        return out
    if type(message) is CreditGrant:
        out[0] = _KIND_CREDIT
        out += _CREDIT_HEAD.pack(message.publication, message.records)
        return out
    encoder = _ENCODERS.get(type(message))
    if encoder is None:
        raise WireError(f"cannot encode {type(message).__name__}")
    out[0] = _KIND_JSON
    out += json.dumps(
        {"type": type(message).__name__, "payload": encoder(message)},
        separators=(",", ":"),
    ).encode("utf-8")
    return out


def decode_frame(view) -> tuple[str, object]:
    """Decode one ring frame (a ``memoryview``) back into (dest, message)."""
    kind = view[0]
    dlen = view[1]
    destination = str(view[2 : 2 + dlen], "utf-8")
    offset = 2 + dlen
    if kind == _KIND_JSON:
        envelope = json.loads(str(view[offset:], "utf-8"))
        decoder = _DECODERS.get(envelope["type"])
        if decoder is None:
            raise WireError(f"cannot decode {envelope['type']!r}")
        return destination, decoder(envelope["payload"])
    if kind == _KIND_RAW_BATCH:
        publication, seq, ordinal, epoch, count = _RAW_HEAD.unpack_from(
            view, offset
        )
        offset += _RAW_HEAD.size
        items = []
        for _ in range(count):
            tag = view[offset]
            (length,) = _U32.unpack_from(view, offset + 1)
            start = offset + 1 + _U32.size
            text = str(view[start : start + length], "utf-8")
            items.append(
                text if tag == 0 else decode_record(json.loads(text))
            )
            offset = start + length
        return destination, RawBatch(
            publication, tuple(items), seq=seq, ordinal=ordinal, epoch=epoch
        )
    if kind == _KIND_PAIR_BATCH:
        publication, seq, epoch, node, count = _PAIR_HEAD.unpack_from(
            view, offset
        )
        offset += _PAIR_HEAD.size
        pairs = []
        for _ in range(count):
            leaf, dummy = _PAIR_META.unpack_from(view, offset)
            encrypted, offset = decode_encrypted_from(
                view, offset + _PAIR_META.size
            )
            pairs.append(
                Pair(publication, leaf, encrypted, dummy=bool(dummy))
            )
        return destination, PairBatch(
            publication, tuple(pairs), seq=seq, epoch=epoch, node=node
        )
    if kind in (_KIND_TO_CLOUD, _KIND_BUFFER_FLUSH):
        publication, count = _CLOUD_HEAD.unpack_from(view, offset)
        offset += _CLOUD_HEAD.size
        pairs = []
        for _ in range(count):
            (leaf,) = struct.unpack_from("<i", view, offset)
            encrypted, offset = decode_encrypted_from(view, offset + 4)
            pairs.append((leaf, encrypted))
        message_type = (
            ToCloudBatch if kind == _KIND_TO_CLOUD else BufferFlush
        )
        return destination, message_type(publication, tuple(pairs))
    if kind == _KIND_CREDIT:
        publication, records = _CREDIT_HEAD.unpack_from(view, offset)
        return destination, CreditGrant(publication, records)
    raise WireError(f"unknown ring-frame kind {kind}")
