"""Shared-memory multiprocess runtime (docs/RUNTIMES.md).

Computing nodes, the checking node, the merger and the cloud run as
separate OS *processes* — so parsing, encryption and checking escape the
GIL — connected by single-producer/single-consumer ring buffers over
``multiprocessing.shared_memory`` instead of sockets.  Batch frames are
encoded once on the producer and decoded straight out of the ring's
``memoryview`` on the consumer: no per-hop serialisation, no kernel
round trips, no intermediate copies.

Public surface:

* :class:`~repro.runtime.shm.ring.RingBuffer` — the SPSC ring.
* :class:`~repro.runtime.shm.channel.ShmChannel` — channel-interface
  adapter (encode → ring) for one producer's outbound destinations.
* :class:`~repro.runtime.shm.cluster.ShmFresqueCluster` — spawns the
  worker processes, drives the dispatcher from the parent, detects
  worker crashes (heartbeats) and redispatches a dead ring's backlog
  through the degraded-mode path.
"""

from repro.runtime.shm.channel import ShmChannel
from repro.runtime.shm.cluster import ShmFresqueCluster
from repro.runtime.shm.ring import (
    RingBuffer,
    RingClosed,
    RingError,
    StatsBlock,
)

__all__ = [
    "RingBuffer",
    "RingClosed",
    "RingError",
    "ShmChannel",
    "ShmFresqueCluster",
    "StatsBlock",
]
