"""Parent-side driver of the shared-memory multiprocess runtime.

:class:`ShmFresqueCluster` runs the dispatcher in the parent process and
every other FRESQUE component (computing nodes, checking node, merger,
cloud) in its own worker process, connected by single-producer
single-consumer ring buffers over ``multiprocessing.shared_memory``
(:mod:`repro.runtime.shm.ring`).  Batches are encoded once into a ring
frame on the producer and decoded straight out of the consumer's mapped
view — the zero-copy path that lets the pipeline scale past the GIL
without the TCP runtime's per-hop serialisation.

Ring topology for ``k`` computing nodes (label → producer → consumer)::

    p2c<i>   parent   → cn-<i>    raw batches, publishing
    k2c<i>   checking → cn-<i>    done notices
    c<i>2k   cn-<i>   → checking  pair batches, cn-publishing
    p2k      parent   → checking  new-publication, publishing
    k2m      checking → merger    templates, removed, AL snapshots
    k2cl     checking → cloud     announce, to-cloud batches, flushes
    k2p      checking → parent    credit grants (backpressure control)
    m2cl     merger   → cloud     merged publications
    p2cl     parent   → cloud     control requests (raw JSON)
    cl2p     cloud    → parent    receipts + control responses (raw JSON)

Determinism: with ``config.deterministic_ivs`` the cluster's final cloud
state is byte-identical to the in-memory :class:`FresqueSystem` driven
with the same seed — the parent replicates its seed-derivation chain,
the dispatcher stamps every batch with a global sequence number, and the
checking worker's :class:`~repro.runtime.shm.workers.CheckingGate`
restores dispatch order before the randomer draws (docs/RUNTIMES.md).

Fault tolerance: the parent supervises the workers.  A dead computing
node is taken out of the dispatcher's rotation (PR 3's degraded path),
its data ring's uncommitted backlog is drained and redispatched to the
survivors, and the checking worker deduplicates the overlap by batch
sequence number — no record lost, none double-counted.  With
``data_dir`` set, the parent mirrors the durable collector's
write-ahead/ledger discipline (journal *open* before dispatch, *close*
before the publishing broadcast, ε commit only after the cloud receipt).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import random
import threading
import time

from repro.core.config import FresqueConfig
from repro.core.dispatcher import Dispatcher
from repro.core.messages import RawBatch, RingAttach
from repro.index.perturb import draw_noise_plan
from repro.index.tree import IndexTree
from repro.runtime.backoff import await_condition
from repro.runtime.poller import FlushPoller, poll_interval
from repro.runtime.roles import spec_from_config
from repro.runtime.shm.channel import ShmChannel
from repro.runtime.shm.frames import decode_frame
from repro.runtime.shm.ring import RingBuffer, StatsBlock
from repro.runtime.shm.workers import run_worker, stats_fields
from repro.telemetry.clock import WALL_CLOCK
from repro.telemetry.context import coalesce
from repro.telemetry.exporters import mirror_shared_stats

#: Capacity of the JSON control/event rings (requests and receipts are
#: tiny; the data rings get the configurable capacity).
CONTROL_RING_CAPACITY = 1 << 16

#: Supervision cadence: worker liveness and telemetry are checked every
#: this many parent-side sends (liveness is a cheap ``waitpid`` poll,
#: but per-record would still dominate small batches).
SUPERVISE_EVERY = 64


def _fork_context():
    """Prefer ``fork`` (workers inherit nothing they need beyond the
    picklable args, and fork avoids re-importing the world); fall back
    to the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class WorkerDied(RuntimeError):
    """A non-recoverable worker (checking/merger/cloud) exited."""


class ShmFresqueCluster:
    """A multiprocess FRESQUE deployment over shared-memory rings.

    Parameters
    ----------
    config:
        Deployment configuration (``num_computing_nodes`` worker
        processes plus checking, merger and cloud).
    key:
        Master key bytes; each worker rebuilds the shared
        :class:`SimulatedCipher` from it (disjoint IV-counter ranges —
        see :data:`~repro.runtime.shm.workers.COUNTER_NAMESPACE_BITS`).
    seed:
        Seed for all randomness, derived exactly as the in-memory
        :class:`~repro.core.system.FresqueSystem` derives it
        (dispatcher, checking, merger — in that order).
    data_dir:
        When set, the parent runs the durable collector discipline:
        write-ahead journal, ε ledger and two-phase publication commit
        (mirroring :class:`~repro.durability.system.DurableFresqueSystem`).
    ring_capacity:
        Bytes per data ring (must exceed twice the largest frame; the
        merged-publication frame grows with the domain's leaf count, so
        wide domains like Gowalla need the default's headroom).
    """

    def __init__(
        self,
        config: FresqueConfig,
        key: bytes,
        seed: int | None = None,
        *,
        telemetry=None,
        data_dir=None,
        ring_capacity: int = 1 << 22,
        sync_every: int = 256,
        horizon: int = 52,
        total_epsilon: float | None = None,
        put_timeout: float = 30.0,
        fault_plan=None,
    ):
        self.config = config
        #: Optional :class:`~repro.runtime.faults.FaultPlan` consulted
        #: once per parent-side send: frames can be dropped, delayed or
        #: duplicated exactly as on the TCP/threaded transports.  Sever
        #: rules are no-ops here (rings have no connection to sever);
        #: node crashes use :meth:`kill_worker` / :meth:`crash_node`.
        self.fault_plan = fault_plan
        self.telemetry = coalesce(telemetry)
        rng = random.Random(seed)
        self.dispatcher = Dispatcher(
            config, rng=random.Random(rng.random()), telemetry=telemetry
        )
        spec = spec_from_config(config, key)
        # The float chain FresqueSystem hands its checking/merger RNGs.
        spec["seeds"] = {"checking": rng.random(), "merger": rng.random()}
        self._spec = spec
        self._ring_capacity = ring_capacity
        self._put_timeout = put_timeout
        self._rings: dict[str, RingBuffer] = {}
        self._stats: dict[str, StatsBlock] = {}
        self._retired_stats: list[StatsBlock] = []
        self._procs: dict[str, object] = {}
        self._dead: set[int] = set()
        # Elastic membership bookkeeping: node id → its current
        # incarnation's rings, node id → incarnation counter (ring and
        # stats segment names must be unique per incarnation), and the
        # next worker index (fresh IV-counter namespace per spawn).
        self._node_rings: dict[int, dict[str, RingBuffer]] = {}
        self._generations: dict[int, int] = {}
        self._next_worker_index = 0
        self._receipts: dict[int, int] = {}
        self._responses: dict[int, dict] = {}
        self._next_rid = 0
        self._sends = 0
        self._started = False
        self._closed = False
        # Serialises the feeder thread against the flush poller: both
        # touch the dispatcher and the parent-consumed rings (k2p and
        # cl2p are SPSC — one consumer at a time).  Reentrant because
        # _send's failure path re-enters via _on_cn_death/redispatch.
        self._flow_lock = threading.RLock()
        self._poller = FlushPoller(
            poll_interval(config.max_batch_delay), self._poll_flush
        )
        self.durable = data_dir is not None
        if self.durable:
            from repro.durability.journal import WriteAheadJournal
            from repro.durability.ledger import BudgetLedger
            from repro.privacy.accountant import PublicationAccountant

            self.data_dir = pathlib.Path(data_dir)
            self.data_dir.mkdir(parents=True, exist_ok=True)
            self.journal = WriteAheadJournal(
                self.data_dir / "journal.wal",
                sync_every=sync_every,
                telemetry=telemetry,
            )
            self._ledger = BudgetLedger(self.data_dir / "epsilon.ledger")
            self.accountant = PublicationAccountant(
                total_epsilon
                if total_epsilon is not None
                else config.epsilon * horizon,
                horizon,
                ledger=self._ledger,
            )
            self._tree_shape = IndexTree(config.domain, fanout=config.fanout)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def _make_ring(self, label: str, capacity: int) -> RingBuffer:
        ring = RingBuffer(
            name=f"frq{self._token}-{label}", capacity=capacity, create=True
        )
        self._rings[label] = ring
        return ring

    def start(self) -> None:
        """Create the rings, spawn the workers, open publication one."""
        if self._started:
            raise RuntimeError("cluster already started")
        self._token = os.urandom(4).hex()
        k = self.config.num_computing_nodes
        for i in range(k):
            self._make_ring(f"p2c{i}", self._ring_capacity)
            self._make_ring(f"c{i}2k", self._ring_capacity)
            self._make_ring(f"k2c{i}", CONTROL_RING_CAPACITY)
        self._make_ring("p2k", CONTROL_RING_CAPACITY)
        self._make_ring("k2p", CONTROL_RING_CAPACITY)
        self._make_ring("k2m", self._ring_capacity)
        self._make_ring("k2cl", self._ring_capacity)
        self._make_ring("m2cl", self._ring_capacity)
        self._make_ring("p2cl", CONTROL_RING_CAPACITY)
        self._make_ring("cl2p", CONTROL_RING_CAPACITY)
        self._node_rings = {
            i: {
                "data": self._rings[f"p2c{i}"],
                "pair": self._rings[f"c{i}2k"],
                "done": self._rings[f"k2c{i}"],
            }
            for i in range(k)
        }
        self._generations = {i: 0 for i in range(k)}
        self._next_worker_index = k + 3

        def name(label: str) -> str:
            return self._rings[label].name

        plans = [
            (
                f"cn-{i}",
                {"data": name(f"p2c{i}"), "done": name(f"k2c{i}")},
                {"checking": name(f"c{i}2k")},
                i,
            )
            for i in range(k)
        ]
        plans.append(
            (
                "checking",
                {
                    "parent": name("p2k"),
                    **{f"cn-{i}": name(f"c{i}2k") for i in range(k)},
                },
                {
                    **{f"cn-{i}": name(f"k2c{i}") for i in range(k)},
                    "merger": name("k2m"),
                    "cloud": name("k2cl"),
                    "dispatcher": name("k2p"),
                },
                k,
            )
        )
        plans.append(
            ("merger", {"checking": name("k2m")}, {"cloud": name("m2cl")}, k + 1)
        )
        plans.append(
            (
                "cloud",
                {
                    "checking": name("k2cl"),
                    "merger": name("m2cl"),
                    "control": name("p2cl"),
                },
                {"parent": name("cl2p")},
                k + 2,
            )
        )
        ctx = _fork_context()
        for role, inbound, outbound, index in plans:
            block = StatsBlock(
                stats_fields(role),
                name=f"frq{self._token}-st-{role}",
                create=True,
            )
            self._stats[role] = block
            proc = ctx.Process(
                target=run_worker,
                args=(role, self._spec, inbound, outbound, block.name, index),
                name=f"fresque-shm-{role}",
                daemon=True,
            )
            proc.start()
            self._procs[role] = proc
        self._channel = ShmChannel(
            {
                **{f"cn-{i}": self._rings[f"p2c{i}"] for i in range(k)},
                "checking": self._rings["p2k"],
            },
            abort_for=self._abort_probe,
            timeout=self._put_timeout,
        )
        self._started = True
        if self.durable:
            self._open_publication()
        else:
            self._send_all(self.dispatcher.start_publication())
        self._poller.start()

    def __enter__(self) -> "ShmFresqueCluster":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Sending + supervision
    # ------------------------------------------------------------------

    def _abort_probe(self, destination: str):
        proc = self._procs.get(destination)
        if proc is None:
            return None
        return lambda: not proc.is_alive()

    def _send(self, destination: str, message) -> None:
        if self.fault_plan is not None:
            decision = self.fault_plan.on_send(destination)
            if decision.faulted:
                if decision.delay:
                    time.sleep(decision.delay)
                if decision.drop:
                    self.telemetry.counter("shm_frames_dropped").inc()
                    return
                for _ in range(decision.duplicates):
                    # Extra at-least-once copies; a failed duplicate is
                    # absorbed by the primary send's death handling.
                    self._channel.send(destination, message)
        if self._channel.send(destination, message):
            self._sends += 1
            if self._sends % SUPERVISE_EVERY == 0:
                self._supervise()
            return
        # The destination's ring is closed or its consumer died mid-put.
        if destination.startswith("cn-"):
            self._on_cn_death(int(destination[3:]))
            if isinstance(message, RawBatch):
                self._send_all(self.dispatcher.redispatch(message))
            # A publishing notice to a dead node is dropped: the
            # NodeDown the death handler emitted replaces it.
            return
        raise WorkerDied(f"worker {destination!r} is gone")

    def _send_all(self, outbox) -> None:
        with self._flow_lock:
            for destination, message in outbox:
                self._send(destination, message)

    def _supervise(self) -> None:
        """Poll worker liveness, drain cloud events, refresh gauges."""
        with self._flow_lock:
            for role, proc in list(self._procs.items()):
                if proc.is_alive():
                    continue
                if role.startswith("cn-"):
                    self._on_cn_death(int(role[3:]))
                else:
                    raise WorkerDied(
                        f"worker {role!r} exited with code {proc.exitcode}"
                    )
            self._pump_credits()
            self._pump_events()
        self._flush_telemetry()

    def _pump_credits(self) -> None:
        """Drain the checking worker's credit grants (k2p control ring)
        into the dispatcher, sending whatever batches they release."""
        ring = self._rings.get("k2p")
        if ring is None:
            return
        with self._flow_lock:
            while True:
                payload = ring.pop()
                if payload is None:
                    return
                _, message = decode_frame(memoryview(payload))
                self._send_all(self.dispatcher.on_credit(message))

    def _poll_flush(self) -> None:
        """Poller tick: pump credits, fire the delay flush, and feed the
        dispatcher-side backlog to the adaptive controller."""
        with self._flow_lock:
            self._pump_credits()
            if (
                self.telemetry.enabled
                or not self.dispatcher.flow.controller.pinned
            ):
                self.dispatcher.observe_queue_depth(
                    self.dispatcher.backlog_records
                )
            self._send_all(self.dispatcher.flush_due())

    def _on_cn_death(self, index: int) -> None:
        """Degraded mode: absorb a dead computing node's work.

        Ordering matters: the node leaves the dispatcher's rotation
        *first* (so redispatch never routes back to it), the checking
        node hears :class:`NodeDown` *before* the redispatched batches,
        and only then is the dead node's uncommitted inbound backlog —
        everything at or past its last committed frame — re-routed to
        the survivors.  Batches the dead node had already forwarded but
        not committed are re-sent too; the checking gate drops them as
        sequence-number duplicates.
        """
        if index in self._dead:
            return
        self._dead.add(index)
        role = f"cn-{index}"
        proc = self._procs.pop(role, None)
        if proc is not None:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2.0)
        notice = self.dispatcher.mark_node_down(index)
        rings = self._node_rings[index]
        data_ring = rings["data"]
        backlog = data_ring.drain_backlog()
        data_ring.mark_closed()
        # Take over the dead producer's end-of-stream duty so the
        # checking worker can drain its ring and move on; close the
        # done ring so checking's future sends to it fail fast.
        rings["pair"].mark_closed()
        rings["done"].mark_closed()
        self._send_all(notice)
        redispatched = 0
        for payload in backlog:
            _, message = decode_frame(memoryview(payload))
            if isinstance(message, RawBatch):
                self._send_all(self.dispatcher.redispatch(message))
                redispatched += len(message.items)
        self.telemetry.counter("shm_cn_deaths").inc()
        self.telemetry.counter("shm_records_redispatched").inc(redispatched)

    def _pump_events(self) -> bool:
        ring = self._rings["cl2p"]
        progressed = False
        with self._flow_lock:
            while True:
                payload = ring.pop()
                if payload is None:
                    return progressed
                event = json.loads(payload.decode("utf-8"))
                if event.get("event") == "receipt":
                    self._receipts[event["pub"]] = event["records"]
                elif event.get("event") == "response":
                    self._responses[event["rid"]] = event
                progressed = True

    def _flush_telemetry(self) -> None:
        tel = self.telemetry
        if not getattr(tel, "enabled", True):
            return
        now = WALL_CLOCK.now()
        for label, ring in self._rings.items():
            tel.gauge("shm_ring_used", ring=label).set(ring.used)
            tel.gauge("shm_ring_producer_stalls", ring=label).set(
                ring.producer_stalls
            )
            tel.gauge("shm_ring_consumer_stalls", ring=label).set(
                ring.consumer_stalls
            )
            beat = ring.heartbeat
            if beat:
                tel.gauge("shm_ring_heartbeat_age", ring=label).set(
                    max(0.0, now - beat)
                )
        for role, block in self._stats.items():
            mirror_shared_stats(tel, role, block.read_all())

    # ------------------------------------------------------------------
    # Publications
    # ------------------------------------------------------------------

    def _open_publication(self) -> None:
        with self._flow_lock:
            grant = self.accountant.grant()
            plan = draw_noise_plan(
                self._tree_shape, grant.epsilon, rng=self.dispatcher._rng
            )
            self.journal.append_open(grant.publication, plan, grant.epsilon)
            self._send_all(self.dispatcher.start_publication(plan))
        if self.dispatcher.publication != grant.publication:
            raise RuntimeError(
                f"grant {grant.publication} does not match dispatcher "
                f"publication {self.dispatcher.publication}"
            )

    def ingest(self, line: str) -> None:
        """Feed one raw line into the current publication."""
        if not self._started:
            raise RuntimeError("call start() first")
        with self._flow_lock:
            if self.durable:
                self.journal.append_raw(self.dispatcher.publication, line)
            self._send_all(self.dispatcher.on_raw(line))

    def offer(self, line: str) -> bool:
        """Admission-controlled :meth:`ingest`; ``False`` means shed.

        With ``config.ingest_queue_limit`` set the dispatcher's
        :class:`~repro.core.flow.SheddingPolicy` may reject the line (or
        evict an older unflushed record) instead of growing the backlog.
        """
        if not self._started:
            raise RuntimeError("call start() first")
        with self._flow_lock:
            outbox = self.dispatcher.offer_raw(line)
            if outbox is None:
                return False
            if self.durable:
                self.journal.append_raw(self.dispatcher.publication, line)
            self._send_all(outbox)
        return True

    def flush_ingest(self) -> None:
        """Flush the dispatcher's in-flight batch through the rings."""
        with self._flow_lock:
            self._send_all(self.dispatcher.flush_batch())

    def pump_dummies(self, fraction: float) -> None:
        """Release every dummy scheduled before ``fraction`` of the
        interval (the chaos harness's dummy-pacing hook)."""
        with self._flow_lock:
            self._send_all(self.dispatcher.due_dummies(fraction))

    def close_publication(self) -> None:
        """Close the current publication and open the next one.

        The non-durable boundary only — the durable driver's close path
        (journal + ε commit) lives in :meth:`run_publication`.
        """
        with self._flow_lock:
            self._send_all(self.dispatcher.end_publication())
        with self._flow_lock:
            self._send_all(self.dispatcher.start_publication())

    def settle(self, publication: int, timeout: float = 120.0) -> None:
        """Block until the cloud's receipt for ``publication`` lands."""
        self._await_receipt(publication, timeout)

    def run_publication(self, lines, timeout: float = 120.0) -> int:
        """Ingest ``lines`` with interleaved dummies, close the interval,
        open the next one and return the publication's matched-record
        count (the cloud receipt)."""
        if not self._started:
            self.start()
        publication = self.dispatcher.publication
        lines = list(lines)
        total = max(1, len(lines))
        if self.durable and lines:
            size = max(1, self.config.batch_size)
            for start in range(0, len(lines), size):
                chunk = lines[start : start + size]
                self.journal.append_raw_batch(publication, chunk)
                for offset, line in enumerate(chunk):
                    position = start + offset
                    with self._flow_lock:
                        outbox = self.dispatcher.due_dummies(
                            (position + 1) / (total + 1)
                        )
                        outbox.extend(self.dispatcher.on_raw(line))
                        self._send_all(outbox)
        else:
            for position, line in enumerate(lines):
                with self._flow_lock:
                    outbox = self.dispatcher.due_dummies(
                        (position + 1) / (total + 1)
                    )
                    outbox.extend(self.dispatcher.on_raw(line))
                    self._send_all(outbox)
        if self.durable:
            self.journal.append_close(publication)
        with self._flow_lock:
            self._send_all(self.dispatcher.end_publication())
        if self.durable:
            records = self._await_receipt(publication, timeout)
            self.accountant.commit(publication)
            self.journal.append_commit(publication)
            self._open_publication()
        else:
            with self._flow_lock:
                self._send_all(self.dispatcher.start_publication())
            records = self._await_receipt(publication, timeout)
        return records

    def _await_receipt(self, publication: int, timeout: float) -> int:
        def ready():
            self._supervise()
            records = self._receipts.get(publication)
            # +1 keeps a zero-record receipt truthy for await_condition.
            return None if records is None else records + 1

        return (
            await_condition(
                ready, timeout, f"publication {publication} never published"
            )
            - 1
        )

    @property
    def receipts(self) -> dict[int, int]:
        """Publication → matched-record count, as received so far."""
        self._pump_events()
        return dict(self._receipts)

    # ------------------------------------------------------------------
    # Cloud control channel
    # ------------------------------------------------------------------

    def _control(self, op: str, timeout: float = 60.0, **kw) -> dict:
        rid = self._next_rid
        self._next_rid += 1
        self._rings["p2cl"].put(
            json.dumps({"op": op, "rid": rid, **kw}).encode("utf-8"),
            timeout=timeout,
        )

        def ready():
            self._supervise()
            return self._responses.pop(rid, None)

        response = await_condition(
            ready, timeout, f"cloud control op {op!r} never answered"
        )
        if "error" in response:
            raise RuntimeError(response["error"])
        return response

    def status(self) -> dict:
        """The cloud's publication → matched-record map."""
        response = self._control("status")
        return dict(zip(response["publications"], response["records"]))

    def query_fingerprint(self, low: float, high: float) -> tuple:
        """Canonical digest of a cloud-side range query's answer.

        Comparable against the same digest computed over a reference
        system's *cloud-only* query (the collector-resident extras of
        :meth:`FresqueSystem.query` live in other processes here).
        """
        response = self._control("query", low=low, high=high)
        return response["count"], response["sha"]

    def fingerprint(self) -> dict:
        """The equivalence fingerprint, shaped exactly like
        ``tests/conftest.py::cloud_state_fingerprint``.

        The cloud-resident half is computed in the cloud worker behind
        an announce barrier (every publication the dispatcher has opened
        must have reached the cloud); the checking counters ride the
        checking worker's stats block.
        """
        response = self._control(
            "fingerprint", min_pub=self.dispatcher.publication
        )
        state = response["fingerprint"]
        stats = self._stats["checking"].read_all()
        return {
            "files": {
                int(file_id): tuple(entry)
                for file_id, entry in state["files"].items()
            },
            "receipts": {
                int(publication): records
                for publication, records in state["receipts"].items()
            },
            "pairs_processed": int(stats["pairs_processed"]),
            "dummies_passed": int(stats["dummies_passed"]),
            "records_removed": int(stats["records_removed"]),
            "duplicate_pairs": state["duplicate_pairs"],
        }

    # ------------------------------------------------------------------
    # Elastic membership (docs/PROTOCOL.md)
    # ------------------------------------------------------------------

    def _spawn_cn(self, node_id: int) -> tuple[RingBuffer, RingBuffer]:
        """Create rings + stats + process for one cn incarnation.

        Returns the (pair, done) rings the checking worker must attach.
        Every incarnation gets fresh shared-memory segments (unique
        names) and a fresh worker index — a disjoint IV-counter
        namespace, so a rejoined worker can never reuse its dead
        predecessor's counter IVs.
        """
        gen = self._generations.get(node_id, -1) + 1
        self._generations[node_id] = gen
        suffix = f"g{gen}" if gen else ""
        data = self._make_ring(f"p2c{node_id}{suffix}", self._ring_capacity)
        pair = self._make_ring(f"c{node_id}2k{suffix}", self._ring_capacity)
        done = self._make_ring(
            f"k2c{node_id}{suffix}", CONTROL_RING_CAPACITY
        )
        self._node_rings[node_id] = {
            "data": data, "pair": pair, "done": done,
        }
        role = f"cn-{node_id}"
        old_stats = self._stats.pop(role, None)
        if old_stats is not None:
            self._retired_stats.append(old_stats)
        block = StatsBlock(
            stats_fields(role),
            name=f"frq{self._token}-st-{role}{suffix}",
            create=True,
        )
        self._stats[role] = block
        index = self._next_worker_index
        self._next_worker_index += 1
        proc = _fork_context().Process(
            target=run_worker,
            args=(
                role,
                self._spec,
                {"data": data.name, "done": done.name},
                {"checking": pair.name},
                block.name,
                index,
            ),
            name=f"fresque-shm-{role}",
            daemon=True,
        )
        proc.start()
        self._procs[role] = proc
        self._channel.rings[role] = data
        return pair, done

    def admit_node(self, node_id: int | None = None) -> int:
        """Admit a new computing node into the running fleet.

        The dispatcher flushes the in-flight batch under the old epoch,
        the worker process and its rings come up, the checking worker
        attaches them (the :class:`RingAttach` rides the parent ring,
        ahead of the membership broadcast), and the rotation rebuilds.
        Returns the admitted node's id.
        """
        with self._flow_lock:
            node_id, outbox = self.dispatcher.admit_node(node_id)
            pair, done = self._spawn_cn(node_id)
            self._send("checking", RingAttach(node_id, pair.name, done.name))
            self._send_all(outbox)
        return node_id

    def retire_node(self, node_id: int) -> None:
        """Drain a computing node out of the rotation (planned removal).

        The node receives no further batches but stays reachable until
        the interval closes (it reports *publishing* and receives its
        final *done*); its worker exits with the shutdown cascade.
        """
        with self._flow_lock:
            self._send_all(self.dispatcher.retire_node(node_id))

    def crash_node(self, node_id: int) -> None:
        """Hard-kill one computing node and absorb its work now.

        Deterministic variant of :meth:`kill_worker` + supervision: the
        death is handled synchronously, so callers can script
        crash/rejoin sequences without racing the supervision cadence.
        """
        role = f"cn-{node_id}"
        with self._flow_lock:
            proc = self._procs.get(role)
            if proc is not None:
                proc.kill()
                proc.join(timeout=5.0)
            self._on_cn_death(node_id)

    def rejoin_node(self, node_id: int) -> None:
        """Bring a crashed computing node back under a fresh epoch.

        A fresh worker process attaches fresh rings (the checking worker
        drains the dead incarnation's leftovers first, then swaps); the
        membership broadcast raises the node's join-epoch floor so any
        straggler output of the old incarnation is discarded downstream.
        """
        with self._flow_lock:
            self._supervise()
            if node_id not in self._dead:
                raise ValueError(f"computing node {node_id} is not down")
            outbox = self.dispatcher.rejoin_node(node_id)
            self._dead.discard(node_id)
            pair, done = self._spawn_cn(node_id)
            self._send("checking", RingAttach(node_id, pair.name, done.name))
            self._send_all(outbox)

    # ------------------------------------------------------------------
    # Fault injection + teardown
    # ------------------------------------------------------------------

    def kill_worker(self, role: str) -> None:
        """Hard-kill one worker (crash drills); detection is left to the
        normal supervision path, exactly as a real crash would be."""
        proc = self._procs[role]
        proc.kill()
        proc.join(timeout=5.0)

    def shutdown(self, timeout: float = 30.0) -> None:
        """Close the parent rings, cascade-drain the workers, reap the
        shared memory.  Idempotent."""
        if not self._started or self._closed:
            return
        self._closed = True
        self._poller.stop()
        try:
            self._channel.close()
            self._rings["p2cl"].mark_closed()
            deadline = WALL_CLOCK.now() + timeout
            for role, proc in self._procs.items():
                proc.join(timeout=max(0.1, deadline - WALL_CLOCK.now()))
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
            self._pump_events()
            self._flush_telemetry()
        finally:
            for ring in self._rings.values():
                ring.detach()
                try:
                    ring.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            for block in [*self._stats.values(), *self._retired_stats]:
                block.detach()
                try:
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            if self.durable:
                self.journal.close()
                self._ledger.close()
