"""Channel adapter: routed outboxes → ring-buffer frames.

One :class:`ShmChannel` per producer (the parent process or a worker),
holding that producer's outbound rings keyed by destination.  ``send``
encodes the message once (:func:`repro.runtime.shm.frames.encode_frame`)
and appends it to the destination's ring; the consumer decodes straight
out of the ring's memoryview — the encode-once/decode-in-place path that
replaces the TCP runtime's per-hop serialisation.
"""

from __future__ import annotations

from repro.core.channel import Channel
from repro.runtime.shm.frames import encode_frame
from repro.runtime.shm.ring import RingBuffer, RingClosed


class ShmChannel(Channel):
    """Sends routed messages into per-destination ring buffers.

    Parameters
    ----------
    rings:
        Destination name → outbound :class:`RingBuffer`.
    abort_for:
        Optional ``destination -> callable`` factory; the callable is
        polled while a full ring blocks the send, and a true result
        aborts it (``send`` returns ``False``).  The parent passes a
        worker-death probe so a crashed consumer cannot wedge the
        producer.
    timeout:
        Per-send cap in seconds (``None`` = wait indefinitely).
    """

    def __init__(
        self,
        rings: dict[str, RingBuffer],
        abort_for=None,
        timeout: float | None = None,
    ):
        self._rings = rings
        self._abort_for = abort_for
        self._timeout = timeout

    @property
    def rings(self) -> dict[str, RingBuffer]:
        """The destination → ring map (read-only use)."""
        return self._rings

    def send(self, destination: str, message) -> bool:
        ring = self._rings.get(destination)
        if ring is None:
            raise KeyError(f"no ring for destination {destination!r}")
        should_abort = (
            self._abort_for(destination) if self._abort_for else None
        )
        try:
            return ring.put(
                encode_frame(destination, message),
                timeout=self._timeout,
                should_abort=should_abort,
            )
        except RingClosed:
            return False

    def close(self) -> None:
        """Mark every outbound ring closed (end-of-stream downstream)."""
        for ring in self._rings.values():
            ring.mark_closed()
