"""Worker-process entry points of the shared-memory runtime.

Each worker attaches to its rings by name, rebuilds its component from
the cluster spec (:mod:`repro.runtime.roles`), and loops: read a frame
(zero-copy), decode, handle, forward the outbox into its outbound
rings, then — and only then — commit the frame.  That commit discipline
is the crash-safety contract: a frame's ring space is released only
after its effects are durable downstream, so the parent can redispatch
everything at or past a dead worker's committed head without losing or
duplicating records.

The checking worker additionally restores *dispatch order*: computing
nodes run in parallel, so their :class:`PairBatch` streams interleave
arbitrarily.  :class:`CheckingGate` re-serialises them by the
dispatcher's global batch sequence number and holds *publishing* /
*CN-publishing* control messages until their gates clear — after which
the checking node observes exactly the synchronous runtime's delivery
order (the byte-identity property the equivalence harness pins).

Shutdown cascades along the dataflow: the parent closes its outbound
rings; a worker exits when every inbound ring is closed and fully
consumed, closing its own outbound rings on the way out.
"""

from __future__ import annotations

import json
import time

from repro.core.messages import RingAttach
from repro.runtime.gate import CheckingGate
from repro.runtime.roles import (
    build_handler,
    cipher_from_spec,
    config_from_spec,
)
from repro.runtime.shm.channel import ShmChannel
from repro.runtime.shm.frames import decode_frame, encode_frame
from repro.runtime.shm.ring import RingBuffer, StatsBlock
from repro.telemetry.clock import WALL_CLOCK

#: Per-worker counter namespace width for SimulatedCipher IV counters —
#: disjoint 2**44 ranges per worker keep counter IVs collision-free
#: across processes that no longer share the counter lock.
COUNTER_NAMESPACE_BITS = 44

#: StatsBlock field layout per role (worker → parent, lock-free).
STATS_FIELDS = {
    "cn": ("heartbeat", "handled"),
    "checking": (
        "heartbeat",
        "handled",
        "pairs_processed",
        "dummies_passed",
        "records_removed",
        "duplicates",
        "stale_discards",
    ),
    "merger": ("heartbeat", "handled"),
    "cloud": ("heartbeat", "handled"),
}


def stats_fields(role: str) -> tuple[str, ...]:
    """The stats-block layout for ``role`` (cluster and worker agree)."""
    return STATS_FIELDS["cn" if role.startswith("cn-") else role]


class _IdleBackoff:
    """Consumer-side poll backoff with one stall count per episode."""

    def __init__(self, ring: RingBuffer):
        self._ring = ring
        self._delay = 0.0
        self._stalled = False

    def progressed(self) -> None:
        self._delay = 0.0
        self._stalled = False

    def idle(self) -> None:
        if not self._stalled:
            self._stalled = True
            self._ring.count_consumer_stall()
        time.sleep(self._delay or 0.00005)
        self._delay = min(0.002, (self._delay or 0.00005) * 2)


def run_worker(
    role: str,
    spec: dict,
    inbound: dict[str, str],
    outbound: dict[str, str],
    stats_name: str,
    worker_index: int,
) -> None:
    """Process entry point: serve ``role`` until the inbound rings drain.

    ``inbound``/``outbound`` map logical names to shared-memory segment
    names; ``worker_index`` namespaces the worker's IV counter range.
    """
    config = config_from_spec(spec)
    cipher = cipher_from_spec(
        spec, counter_start=(worker_index + 1) << COUNTER_NAMESPACE_BITS
    )
    stats = StatsBlock(stats_fields(role), name=stats_name)
    in_rings = {
        key: RingBuffer(name=name) for key, name in inbound.items()
    }
    out_rings = {
        dest: RingBuffer(name=name) for dest, name in outbound.items()
    }
    channel = ShmChannel(out_rings)
    try:
        if role.startswith("cn-"):
            _computing_node_loop(role, spec, config, cipher, in_rings, channel, stats)
        elif role == "checking":
            _checking_loop(role, spec, config, cipher, in_rings, channel, stats)
        elif role == "merger":
            _merger_loop(role, spec, config, cipher, in_rings, channel, stats)
        elif role == "cloud":
            _cloud_loop(role, spec, config, cipher, in_rings, channel, stats)
        else:
            raise ValueError(f"unknown role {role!r}")
    finally:
        channel.close()
        for ring in in_rings.values():
            ring.detach()
        for ring in out_rings.values():
            ring.detach()
        stats.detach()


def _computing_node_loop(
    role, spec, config, cipher, in_rings, channel, stats
) -> None:
    handler, node = build_handler(role, config, cipher, {})
    data = in_rings["data"]
    done = in_rings["done"]
    backoff = _IdleBackoff(data)
    # Frames whose outputs are *held in node memory* (between
    # *publishing* and *done*): committing them would tell a recovering
    # parent their records are safe downstream when they are not, so the
    # commit is deferred until the node drains its hold buffer.
    deferred = []
    handled = 0
    while True:
        progressed = False
        frame = done.read()
        if frame is not None:
            _, message = decode_frame(frame.view)
            channel.send_all(handler(message))
            done.commit(frame)
            progressed = True
        frame = data.read()
        if frame is not None:
            _, message = decode_frame(frame.view)
            channel.send_all(handler(message))
            if node.waiting_for_done:
                deferred.append(frame)
            else:
                data.commit(frame)
                deferred.clear()
            handled += 1
            progressed = True
        if not node.waiting_for_done and deferred:
            data.commit(deferred[-1])
            deferred.clear()
        now = WALL_CLOCK.now()
        data.beat(now)
        stats.write("heartbeat", now)
        stats.write("handled", handled)
        if progressed:
            backoff.progressed()
            continue
        # Exit on the *data* ring alone: the done ring stays open until
        # the checking worker exits, which itself waits for this node's
        # outbound to close — requiring done.drained() here would
        # deadlock the shutdown cascade.  data drained + not waiting
        # means no done notice can still matter.
        if data.drained() and not node.waiting_for_done and not deferred:
            return
        backoff.idle()


def _checking_loop(
    role, spec, config, cipher, in_rings, channel, stats
) -> None:
    handler, node = build_handler(
        role, config, cipher, spec.get("seeds", {})
    )
    gate = CheckingGate(handler, config.num_computing_nodes)
    parent = in_rings["parent"]
    cn_rings = {
        key: ring for key, ring in sorted(in_rings.items())
        if key.startswith("cn-")
    }
    backoff = _IdleBackoff(parent)
    handled = 0

    def flush_stats() -> None:
        # Written before the outbox is forwarded, so a downstream
        # receipt always implies these counters are at least as fresh.
        now = WALL_CLOCK.now()
        parent.beat(now)
        stats.write("heartbeat", now)
        stats.write("handled", handled)
        stats.write("pairs_processed", node.pairs_processed)
        stats.write("dummies_passed", node.dummies_passed)
        stats.write("records_removed", node.records_removed)
        stats.write("duplicates", gate.duplicates)
        stats.write("stale_discards", gate.stale_discards)

    def attach(message: RingAttach) -> None:
        # Runtime admission/rejoin (docs/PROTOCOL.md): swap in the new
        # incarnation's rings.  A rejoining node's old inbound ring is
        # drained through the gate first — forwards the dead incarnation
        # committed are the only copy of their batches; anything else is
        # deduplicated or discarded as stale.  The parent closed the old
        # ring at death time, so the drain terminates.
        key = f"cn-{message.node_id}"
        old = cn_rings.pop(key, None)
        if old is not None:
            while True:
                frame = old.read()
                if frame is None:
                    if old.drained():
                        break
                    time.sleep(0.0001)
                    continue
                _, leftover = decode_frame(frame.view)
                channel.send_all(gate.feed(leftover))
                old.commit(frame)
            in_rings.pop(key, None)
            old.detach()
        ring = RingBuffer(name=message.inbound)
        in_rings[key] = ring
        cn_rings[key] = ring
        stale_out = channel.rings.pop(key, None)
        if stale_out is not None:
            stale_out.detach()
        channel.rings[key] = RingBuffer(name=message.outbound)

    while True:
        progressed = False
        # Parent frames first: a RingAttach may rewire the cn ring set.
        frame = parent.read()
        if frame is not None:
            _, message = decode_frame(frame.view)
            if isinstance(message, RingAttach):
                attach(message)
            else:
                outbox = gate.feed(message)
                handled += 1
                flush_stats()
                channel.send_all(outbox)
            parent.commit(frame)
            progressed = True
        for ring in list(cn_rings.values()):
            frame = ring.read()
            if frame is None:
                continue
            _, message = decode_frame(frame.view)
            outbox = gate.feed(message)
            handled += 1
            flush_stats()
            channel.send_all(outbox)
            ring.commit(frame)
            progressed = True
        if progressed:
            backoff.progressed()
            continue
        if parent.drained() and all(
            ring.drained() for ring in cn_rings.values()
        ):
            flush_stats()
            return
        backoff.idle()


def _merger_loop(
    role, spec, config, cipher, in_rings, channel, stats
) -> None:
    handler, node = build_handler(
        role, config, cipher, spec.get("seeds", {})
    )
    inbound = in_rings["checking"]
    backoff = _IdleBackoff(inbound)
    handled = 0
    while True:
        frame = inbound.read()
        if frame is not None:
            _, message = decode_frame(frame.view)
            channel.send_all(handler(message))
            inbound.commit(frame)
            handled += 1
            now = WALL_CLOCK.now()
            inbound.beat(now)
            stats.write("heartbeat", now)
            stats.write("handled", handled)
            backoff.progressed()
            continue
        stats.write("heartbeat", WALL_CLOCK.now())
        if inbound.drained():
            return
        backoff.idle()


def _cloud_loop(role, spec, config, cipher, in_rings, channel, stats) -> None:
    from repro.core.messages import AnnouncePublication, BufferFlush

    handler, (cloud, adapter) = build_handler(role, config, cipher, {})
    checking = in_rings["checking"]
    merger = in_rings["merger"]
    control = in_rings["control"]
    events = channel.rings["parent"]
    backoff = _IdleBackoff(checking)
    announced: set[int] = set()
    flushed: set[int] = set()
    receipts_sent = 0
    handled = 0

    def consume_checking() -> bool:
        frame = checking.read()
        if frame is None:
            return False
        _, message = decode_frame(frame.view)
        if isinstance(message, AnnouncePublication):
            announced.add(message.publication)
        handler(message)
        if isinstance(message, BufferFlush):
            flushed.add(message.publication)
        checking.commit(frame)
        return True

    def emit_receipts() -> None:
        nonlocal receipts_sent
        while receipts_sent < len(adapter.receipts):
            receipt = adapter.receipts[receipts_sent]
            receipts_sent += 1
            events.put(
                json.dumps(
                    {
                        "event": "receipt",
                        "pub": receipt.publication,
                        "records": receipt.records_matched,
                    }
                ).encode("utf-8")
            )

    while True:
        progressed = False
        raw = control.pop()
        if raw is not None:
            response = _cloud_control(
                json.loads(bytes(raw).decode("utf-8")),
                spec,
                config,
                cipher,
                cloud,
                adapter,
                announced,
                consume_checking,
                checking,
            )
            events.put(json.dumps(response).encode("utf-8"))
            progressed = True
        if consume_checking():
            handled += 1
            progressed = True
        frame = merger.read()
        if frame is not None:
            _, message = decode_frame(frame.view)
            # The checking node sends BufferFlush to the cloud *before*
            # AlSnapshot to the merger, so by the time a merged
            # publication surfaces here its flush is already in the
            # checking ring — drain until it has been applied.
            while message.publication not in flushed:
                if not consume_checking():
                    time.sleep(0.0001)
            handler(message)
            merger.commit(frame)
            handled += 1
            progressed = True
        emit_receipts()
        now = WALL_CLOCK.now()
        checking.beat(now)
        stats.write("heartbeat", now)
        stats.write("handled", handled)
        if progressed:
            backoff.progressed()
            continue
        if checking.drained() and merger.drained() and control.drained():
            emit_receipts()
            return
        backoff.idle()


def _cloud_control(
    request,
    spec,
    config,
    cipher,
    cloud,
    adapter,
    announced,
    consume_checking,
    checking_ring,
):
    """Answer one parent control request inside the cloud worker."""
    rid = request.get("rid")
    op = request.get("op")
    if op == "status":
        return {
            "event": "response",
            "rid": rid,
            "publications": [r.publication for r in adapter.receipts],
            "records": [r.records_matched for r in adapter.receipts],
        }
    if op == "query":
        from repro.client.query_client import QueryClient

        client = QueryClient(config.schema, cipher, cloud)
        result = client.range_query(request["low"], request["high"])
        values = sorted(repr(record.values) for record in result.records)
        import hashlib

        return {
            "event": "response",
            "rid": rid,
            "count": len(values),
            "sha": hashlib.sha256("\n".join(values).encode()).hexdigest(),
            "values": [value for value in values[:100]],
        }
    if op == "fingerprint":
        # Barrier: wait until every publication the parent has opened is
        # announced here (the announce rides the checking ring), so the
        # fingerprint covers a quiescent pipeline.
        minimum = request.get("min_pub", -1)
        while minimum >= 0 and minimum not in announced:
            if not consume_checking():
                if checking_ring.drained():
                    break
                time.sleep(0.0001)
        return {
            "event": "response",
            "rid": rid,
            "fingerprint": _cloud_fingerprint(cloud),
        }
    return {"event": "response", "rid": rid, "error": f"unknown op {op!r}"}


def _cloud_fingerprint(cloud) -> dict:
    """The cloud-resident half of the equivalence fingerprint.

    Mirrors ``tests/conftest.py::cloud_state_fingerprint`` field for
    field (the checking-side counters ride the stats block instead).
    """
    import hashlib

    files = {}
    for file_id in sorted(cloud.store._files):
        handle = cloud.store.file(file_id)
        digest = hashlib.sha256()
        for record in handle._records:
            digest.update(record.leaf_offset.to_bytes(4, "little"))
            digest.update(len(record.ciphertext).to_bytes(4, "little"))
            digest.update(record.ciphertext)
        files[str(file_id)] = [handle.record_count, digest.hexdigest()]
    return {
        "files": files,
        "receipts": {
            str(publication): cloud.receipt_for(publication).records_matched
            for publication in sorted(cloud._done)
        },
        "duplicate_pairs": cloud.duplicate_pairs,
    }
