"""Single-producer/single-consumer ring buffers over shared memory.

The transport primitive of the shared-memory runtime: one
:class:`RingBuffer` per directed edge of the pipeline, living in a
``multiprocessing.shared_memory`` segment both endpoint processes map.

Layout::

    header (64 bytes) | data (capacity bytes)

    magic     u64   format marker + version
    capacity  u64   data-region size in bytes
    tail      u64   producer commit point (absolute byte count)
    head      u64   consumer commit point (absolute byte count)
    closed    u64   1 once the producer will write no more frames
    pstalls   u64   times the producer blocked on a full ring
    cstalls   u64   times the consumer found the ring empty
    beat      f64   consumer heartbeat (see :meth:`RingBuffer.beat`)

Frames are length-prefixed: ``length (u32) | payload``.  A length of
``0xFFFFFFFF`` is the wrap marker — the rest of the data region is
dead space and the frame starts at offset 0.  ``tail`` and ``head`` are
monotonically increasing absolute counts (never wrapped), so emptiness
is exactly ``head == tail`` and the used size is ``tail - head``; both
are 8-byte-aligned single-word writes, which x86-64 and ARM64 perform
atomically — the *commit point* discipline the crash-safety story
relies on (a frame is published by the tail write, consumed by the head
write, and both happen only when the other side may act on them).

Index caching: the producer re-reads ``head`` only when the cached
value implies insufficient space, the consumer re-reads ``tail`` only
when the cached value implies no data — steady-state operation touches
one shared word per frame.

Reading is zero-copy: :meth:`RingBuffer.read` hands out a
``memoryview`` directly into the ring; the consumer decodes from it and
publishes consumption afterwards with :meth:`RingBuffer.commit`.
Reads may run ahead of commits (the computing-node worker defers
commits while it holds pairs for an unfinished publication), so a crash
never strands records: everything at or past ``head`` is still in the
ring for the parent to redispatch (:meth:`RingBuffer.drain_backlog`).

This module is the **only** place that touches raw shared-memory bytes
(``shm.buf``) — everything else goes through :class:`RingBuffer` or
:class:`StatsBlock`.  The FRQ-M901 lint rule pins that invariant.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory

from repro.telemetry.clock import WALL_CLOCK

_MAGIC = 0x4652_5351_0001  # "FRSQ" + layout version 1
_HEADER = 64
_OFF_MAGIC = 0
_OFF_CAPACITY = 8
_OFF_TAIL = 16
_OFF_HEAD = 24
_OFF_CLOSED = 32
_OFF_PSTALLS = 40
_OFF_CSTALLS = 48
_OFF_BEAT = 56

_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")
_LEN = struct.Struct("<I")
_WRAP = 0xFFFFFFFF


class RingError(RuntimeError):
    """Malformed segment, oversized frame, or protocol misuse."""


class RingClosed(RingError):
    """Raised on :meth:`RingBuffer.put` after the producer closed."""


class Frame:
    """One readable frame: a zero-copy view plus its commit position."""

    __slots__ = ("view", "end")

    def __init__(self, view, end: int):
        self.view = view
        self.end = end

    def __len__(self) -> int:
        return len(self.view)


class RingBuffer:
    """One SPSC ring; create in the parent, attach from the worker.

    Parameters
    ----------
    name:
        Shared-memory segment name; ``None`` with ``create=True`` lets
        the OS pick one (read it back from :attr:`name`).
    capacity:
        Data-region bytes (creation only).  The largest admissible
        frame payload is ``capacity // 2 - 4`` — the bound that keeps a
        wrap (dead tail space + the frame at offset 0) always
        satisfiable.
    create:
        ``True`` in the owning process (which must eventually
        :meth:`unlink`), ``False`` to attach to an existing segment.
    """

    def __init__(
        self,
        name: str | None = None,
        capacity: int = 1 << 20,
        create: bool = False,
    ):
        if create:
            if capacity < 64:
                raise RingError("capacity must be at least 64 bytes")
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=_HEADER + capacity
            )
            buf = self._shm.buf
            buf[:_HEADER] = bytes(_HEADER)
            _U64.pack_into(buf, _OFF_MAGIC, _MAGIC)
            _U64.pack_into(buf, _OFF_CAPACITY, capacity)
        else:
            if name is None:
                raise RingError("attaching requires the segment name")
            self._shm = shared_memory.SharedMemory(name=name)
            buf = self._shm.buf
            if _U64.unpack_from(buf, _OFF_MAGIC)[0] != _MAGIC:
                self._shm.close()
                raise RingError(f"segment {name!r} is not a FRESQUE ring")
            capacity = _U64.unpack_from(buf, _OFF_CAPACITY)[0]
        self._buf = self._shm.buf
        self.capacity = capacity
        self.name = self._shm.name
        # Producer-side cache of head; consumer-side cache of tail.
        self._cached_head = 0
        self._cached_tail = 0
        # Consumer read cursor — runs ahead of the shared head between
        # read() and commit().
        self._read_pos = _U64.unpack_from(self._buf, _OFF_HEAD)[0]
        # Frames handed out but not yet committed (views to release).
        self._outstanding: list[Frame] = []
        self._detached = False

    # -- shared-word accessors ------------------------------------------

    def _load(self, offset: int) -> int:
        return _U64.unpack_from(self._buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value)

    @property
    def max_payload(self) -> int:
        """Largest frame payload :meth:`put` accepts."""
        return self.capacity // 2 - _LEN.size

    @property
    def used(self) -> int:
        """Bytes currently between head and tail."""
        return self._load(_OFF_TAIL) - self._load(_OFF_HEAD)

    @property
    def closed(self) -> bool:
        """Whether the producer declared end-of-stream."""
        return bool(self._load(_OFF_CLOSED))

    @property
    def producer_stalls(self) -> int:
        """Times :meth:`put` blocked on a full ring."""
        return self._load(_OFF_PSTALLS)

    @property
    def consumer_stalls(self) -> int:
        """Stall episodes reported via :meth:`count_consumer_stall`."""
        return self._load(_OFF_CSTALLS)

    # -- producer side ---------------------------------------------------

    def put(
        self,
        payload,
        timeout: float | None = None,
        should_abort=None,
    ) -> bool:
        """Append one frame; block (with backoff) while the ring is full.

        ``should_abort`` is polled while blocked — returning true makes
        ``put`` give up and return ``False`` (the parent passes a
        consumer-death check so a dead worker cannot wedge the
        dispatcher).  Raises :class:`RingClosed` if the producer already
        closed the ring, :class:`RingError` for oversized payloads, and
        :class:`TimeoutError` when ``timeout`` elapses.
        """
        size = len(payload)
        need = _LEN.size + size
        if size > self.max_payload:
            raise RingError(
                f"frame of {size} bytes exceeds max payload "
                f"{self.max_payload} of ring {self.name!r}"
            )
        if self._load(_OFF_CLOSED):
            raise RingClosed(f"ring {self.name!r} is closed")
        buf = self._buf
        capacity = self.capacity
        tail = self._load(_OFF_TAIL)
        pos = tail % capacity
        room = capacity - pos
        if room < _LEN.size:
            # Too little tail space even for a length word: the consumer
            # skips it implicitly (see read()); account for it here.
            total = room + need
            wrap_marker = False
        elif need <= room:
            total = need
            wrap_marker = False
        else:
            total = room + need
            wrap_marker = True
        stalled = False
        delay = 0.00005
        deadline = None if timeout is None else WALL_CLOCK.now() + timeout
        while self.capacity - (tail - self._cached_head) < total:
            self._cached_head = self._load(_OFF_HEAD)
            if capacity - (tail - self._cached_head) >= total:
                break
            if not stalled:
                stalled = True
                self._store(_OFF_PSTALLS, self._load(_OFF_PSTALLS) + 1)
            if should_abort is not None and should_abort():
                return False
            if deadline is not None and WALL_CLOCK.now() >= deadline:
                raise TimeoutError(f"ring {self.name!r} full")
            time.sleep(delay)
            delay = min(0.005, delay * 2)
        if wrap_marker:
            _LEN.pack_into(buf, _HEADER + pos, _WRAP)
        if total != need:
            pos = 0
        start = _HEADER + pos + _LEN.size
        _LEN.pack_into(buf, _HEADER + pos, size)
        buf[start : start + size] = payload
        # The commit point: a single aligned word write publishes the
        # frame (and any dead tail space before it) to the consumer.
        self._store(_OFF_TAIL, tail + total)
        return True

    def mark_closed(self) -> None:
        """Producer: declare end-of-stream (frames already in stay)."""
        self._store(_OFF_CLOSED, 1)

    def drain_backlog(self) -> list[bytes]:
        """Producer-side recovery read of every unconsumed frame.

        After the *consumer* process dies, the frames in ``[head,
        tail)`` were never acted on (the consumer only advances head
        after forwarding a frame's effects).  The parent copies them out
        for redispatch.  Only safe once the consumer is gone — two
        readers would race otherwise.
        """
        buf = self._buf
        capacity = self.capacity
        pos_abs = self._load(_OFF_HEAD)
        tail = self._load(_OFF_TAIL)
        frames = []
        while pos_abs < tail:
            pos = pos_abs % capacity
            room = capacity - pos
            if room < _LEN.size:
                pos_abs += room
                continue
            length = _LEN.unpack_from(buf, _HEADER + pos)[0]
            if length == _WRAP:
                pos_abs += room
                continue
            start = _HEADER + pos + _LEN.size
            frames.append(bytes(buf[start : start + length]))
            pos_abs += _LEN.size + length
        return frames

    # -- consumer side ---------------------------------------------------

    def read(self) -> Frame | None:
        """Next unread frame as a zero-copy view, or ``None`` if empty.

        Reading does **not** release ring space — call :meth:`commit`
        once the frame's effects are forwarded.  Reads may run ahead of
        commits; commits must then come in read order.
        """
        buf = self._buf
        capacity = self.capacity
        pos_abs = self._read_pos
        while True:
            if pos_abs >= self._cached_tail:
                self._cached_tail = self._load(_OFF_TAIL)
                if pos_abs >= self._cached_tail:
                    self._read_pos = pos_abs
                    return None
            pos = pos_abs % capacity
            room = capacity - pos
            if room < _LEN.size:
                pos_abs += room
                continue
            length = _LEN.unpack_from(buf, _HEADER + pos)[0]
            if length == _WRAP:
                pos_abs += room
                continue
            start = _HEADER + pos + _LEN.size
            frame = Frame(buf[start : start + length], pos_abs + _LEN.size + length)
            self._read_pos = frame.end
            self._outstanding.append(frame)
            return frame

    def commit(self, frame: Frame) -> None:
        """Publish consumption of ``frame`` and every frame read before it.

        Moving the shared head is what frees the space *and* tells a
        recovering parent the frame's effects are durable downstream —
        so a consumer calls this only after forwarding the outputs the
        frame produced.
        """
        while self._outstanding and self._outstanding[0].end <= frame.end:
            done = self._outstanding.pop(0)
            done.view.release()
        self._store(_OFF_HEAD, frame.end)

    def pop(self) -> bytes | None:
        """Copying convenience: read + commit one frame (control rings)."""
        frame = self.read()
        if frame is None:
            return None
        payload = bytes(frame.view)
        self.commit(frame)
        return payload

    def drained(self) -> bool:
        """Consumer: producer closed and every frame has been read."""
        if not self._load(_OFF_CLOSED):
            return False
        self._cached_tail = self._load(_OFF_TAIL)
        return self._read_pos >= self._cached_tail

    def count_consumer_stall(self) -> None:
        """Consumer: record one empty-poll stall episode."""
        self._store(_OFF_CSTALLS, self._load(_OFF_CSTALLS) + 1)

    def beat(self, timestamp: float) -> None:
        """Consumer heartbeat (monotonic seconds), for liveness gauges."""
        _F64.pack_into(self._buf, _OFF_BEAT, timestamp)

    @property
    def heartbeat(self) -> float:
        """Last consumer heartbeat written via :meth:`beat`."""
        return _F64.unpack_from(self._buf, _OFF_BEAT)[0]

    # -- lifecycle -------------------------------------------------------

    def detach(self) -> None:
        """Release every view and unmap the segment (both sides)."""
        if self._detached:
            return
        self._detached = True
        for frame in self._outstanding:
            frame.view.release()
        self._outstanding.clear()
        self._buf = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only, after :meth:`detach`)."""
        self._shm.unlink()

    def stats(self) -> dict:
        """Depth/stall snapshot for telemetry gauges."""
        return {
            "name": self.name,
            "capacity": self.capacity,
            "used": self.used,
            "producer_stalls": self.producer_stalls,
            "consumer_stalls": self.consumer_stalls,
            "closed": self.closed,
            "heartbeat": self.heartbeat,
        }


class StatsBlock:
    """A tiny shared block of named float64 cells (worker → parent).

    Carries per-worker heartbeats and checking counters across the
    process boundary without a ring: each field is one aligned 8-byte
    cell, written whole, so readers see either the old or the new value.
    Counter fields hold exact integers up to 2**53 — far beyond any
    run's record counts.
    """

    def __init__(
        self,
        fields: tuple[str, ...],
        name: str | None = None,
        create: bool = False,
    ):
        self._fields = {field: index for index, field in enumerate(fields)}
        size = max(8, 8 * len(fields))
        if create:
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
            self._shm.buf[:size] = bytes(size)
        else:
            if name is None:
                raise RingError("attaching requires the segment name")
            self._shm = shared_memory.SharedMemory(name=name)
        self.name = self._shm.name

    def write(self, field: str, value: float) -> None:
        _F64.pack_into(self._shm.buf, 8 * self._fields[field], value)

    def read(self, field: str) -> float:
        return _F64.unpack_from(self._shm.buf, 8 * self._fields[field])[0]

    def read_all(self) -> dict[str, float]:
        return {field: self.read(field) for field in self._fields}

    def detach(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        self._shm.unlink()
